//! Compare all six designs of the paper (SO, sdTM, ATOM, LogTM-ATOM, DHTM,
//! NP) on one micro-benchmark and print throughput normalised to SO — a
//! single-workload slice of Figure 5, expressed as a harness matrix and
//! sharded across a worker pool.
//!
//! ```text
//! cargo run --release --example design_comparison [workload]
//! ```

use dhtm_harness::matrix::{CommitSpec, ConfigVariant, Matrix};
use dhtm_harness::runner::{default_jobs, run_matrix, Row};
use dhtm_types::config::BaseConfig;
use dhtm_types::policy::DesignKind;

fn main() {
    let workload_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hash".to_string());

    let matrix = Matrix::new()
        .engines(DesignKind::ALL)
        .workloads([workload_name.clone()])
        .config(ConfigVariant::of_base("baseline", BaseConfig::Isca18))
        .commits(CommitSpec::Fixed(150))
        .seed(7);
    let rows = run_matrix(&matrix, default_jobs());

    let so = rows
        .iter()
        .find(|r| r.engine == "SO")
        .map(Row::throughput)
        .expect("SO present");

    println!("workload: {workload_name} (throughput normalised to SO)");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "design", "norm", "aborts (%)", "log bytes"
    );
    for row in &rows {
        println!(
            "{:<12} {:>10.2} {:>12.1} {:>12}",
            row.engine,
            row.throughput() / so,
            row.stats.abort_rate_percent(),
            row.stats.log_bytes_written
        );
    }
}
