//! Compare all six designs of the paper (SO, sdTM, ATOM, LogTM-ATOM, DHTM,
//! NP) on one micro-benchmark and print throughput normalised to SO — a
//! single-workload slice of Figure 5.
//!
//! ```text
//! cargo run --release --example design_comparison [workload]
//! ```

use dhtm_baselines::build_engine;
use dhtm_sim::driver::{RunLimits, Simulator};
use dhtm_sim::machine::Machine;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;
use dhtm_workloads::micro_by_name;

fn main() {
    let workload_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "hash".to_string());
    let cfg = SystemConfig::isca18_baseline();
    let limits = RunLimits::quick().with_target_commits(150);

    let mut rows = Vec::new();
    for design in DesignKind::ALL {
        let mut machine = Machine::new(cfg.clone());
        let mut engine = build_engine(design, &cfg);
        let mut workload = micro_by_name(&workload_name, 7)
            .unwrap_or_else(|| panic!("unknown workload {workload_name}"));
        let result =
            Simulator::new().run(&mut machine, engine.as_mut(), workload.as_mut(), &limits);
        rows.push((design, result));
    }

    let so = rows
        .iter()
        .find(|(d, _)| *d == DesignKind::SoftwareOnly)
        .map(|(_, r)| r.throughput())
        .expect("SO present");

    println!("workload: {workload_name} (throughput normalised to SO)");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "design", "norm", "aborts (%)", "log bytes"
    );
    for (design, result) in &rows {
        println!(
            "{:<12} {:>10.2} {:>12.1} {:>12}",
            design.label(),
            result.throughput() / so,
            result.stats.abort_rate_percent(),
            result.stats.log_bytes_written
        );
    }
}
