//! Run the TATP OLTP workload on SO, ATOM and DHTM (a slice of Table VI).
//!
//! ```text
//! cargo run --release --example oltp_tatp
//! ```

use dhtm_baselines::build_engine;
use dhtm_sim::driver::{RunLimits, Simulator};
use dhtm_sim::machine::Machine;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;
use dhtm_workloads::TatpWorkload;

fn main() {
    let cfg = SystemConfig::isca18_baseline();
    let limits = RunLimits::quick().with_target_commits(80);
    let designs = [DesignKind::SoftwareOnly, DesignKind::Atom, DesignKind::Dhtm];

    let mut results = Vec::new();
    for design in designs {
        let mut machine = Machine::new(cfg.clone());
        let mut engine = build_engine(design, &cfg);
        let mut workload = TatpWorkload::new(11);
        let res = Simulator::new().run(&mut machine, &mut engine, &mut workload, &limits);
        results.push((design, res));
    }
    let so = results[0].1.throughput();
    println!(
        "TATP, {} committed transactions per design",
        limits.target_commits
    );
    println!(
        "{:<8} {:>12} {:>14} {:>16}",
        "design", "norm vs SO", "abort rate %", "mean write set"
    );
    for (design, res) in &results {
        println!(
            "{:<8} {:>12.2} {:>14.1} {:>16.1}",
            design.label(),
            res.throughput() / so,
            res.stats.abort_rate_percent(),
            res.stats.mean_write_set_lines()
        );
    }
}
