//! Quick start: run the DHTM engine on the hash micro-benchmark for a few
//! hundred transactions, print the run statistics, then crash the machine and
//! recover it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dhtm::prelude::*;
use dhtm_sim::driver::{RunLimits, Simulator};
use dhtm_workloads::HashWorkload;

fn main() {
    // The paper's 8-core machine (Table III).
    let cfg = SystemConfig::isca18_baseline();
    let mut machine = Machine::new(cfg.clone());
    let mut engine = DhtmEngine::new(&cfg);
    let mut workload = HashWorkload::new(42);

    let limits = RunLimits::quick().with_target_commits(200);
    let result = Simulator::new().run(&mut machine, &mut engine, &mut workload, &limits);

    println!("design:   {}", result.design);
    println!("workload: {}", result.workload);
    println!("{}", result.stats);
    println!();

    // Everything a committed transaction wrote is durable: take a crash
    // snapshot of persistent memory and run the recovery manager.
    let mut crashed = machine.mem.domain().crash_snapshot();
    let report = RecoveryManager::new()
        .recover(&mut crashed)
        .expect("recovery succeeds");
    println!(
        "recovery: {} replayed, {} rolled back, {} already complete",
        report.replayed_transactions, report.rolled_back_transactions, report.skipped_complete
    );
}
