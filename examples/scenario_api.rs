//! Tour of the scenario API: build a typed `SimSpec`, round-trip it
//! through TOML, register an out-of-tree engine variant, and stream a run
//! through the `SimObserver` metrics sink.
//!
//! ```text
//! cargo run --release --example scenario_api
//! ```

use dhtm::DhtmEngine;
use dhtm_baselines::registry::{self, EngineFactory, EngineId, EngineInfo, LogDiscipline};
use dhtm_scenario::{MetricsSink, SimSpec};
use dhtm_types::config::{BaseConfig, ConfigOverlay};
use dhtm_types::policy::DesignKind;

fn main() {
    // 1. A typed, validated spec: DHTM on the hash benchmark, small
    //    machine with a 16-entry log buffer.
    let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
        .base(BaseConfig::Small)
        .overlay(ConfigOverlay::none().with_log_buffer_entries(16))
        .commits(40)
        .seed(42)
        .build()
        .expect("valid spec");
    println!("--- canonical TOML form ---\n{}", spec.to_toml());
    println!("content hash: {:016x}", spec.content_hash());
    println!("derived workload seed: {:016x}\n", spec.derived_seed());

    // 2. Run it with a streaming metrics sink attached.
    let mut sink = MetricsSink::new();
    let result = spec.run_with_observer(&mut sink).expect("spec runs");
    println!(
        "committed {} in {} cycles ({:.1} tx/Mcycle); streamed: {} begins, {} aborts, {} durable ticks",
        result.stats.committed,
        result.stats.total_cycles,
        result.throughput(),
        sink.begins,
        sink.total_aborts(),
        sink.durable_ticks,
    );

    // 3. Register an out-of-tree variant — DHTM with a pinned 4-entry log
    //    buffer — and run the same scenario on it by name only.
    registry::register_global(EngineFactory::new(
        EngineInfo {
            id: EngineId::new("dhtm-logbuf4-example"),
            label: "DHTM-lb4".to_string(),
            description: "DHTM with a hard-wired 4-entry log buffer".to_string(),
            design: DesignKind::Dhtm,
            durable: true,
            log: LogDiscipline::HardwareRedo,
            has_fallback: true,
        },
        |cfg| Box::new(DhtmEngine::new(&cfg.clone().with_log_buffer_entries(4))),
    ))
    .expect("fresh id");

    let variant_spec = SimSpec {
        engine: EngineId::new("dhtm-logbuf4-example"),
        ..spec.clone()
    };
    let variant = variant_spec.run().expect("variant runs");
    println!(
        "variant DHTM-lb4: {} commits in {} cycles (vs {} with 16 entries)",
        variant.stats.committed, variant.stats.total_cycles, result.stats.total_cycles,
    );

    // 4. Same stream, different engines: the derived seed ignores the
    //    engine, so the comparison above is apples-to-apples.
    assert_eq!(spec.derived_seed(), variant_spec.derived_seed());
    println!("\nregistered engines:");
    for factory in registry::global_snapshot().iter() {
        let info = factory.info();
        println!(
            "  {:<22} {:<14} durable={:<5} log={:<13} fallback={:<5} — {}",
            info.id.as_str(),
            info.label,
            info.durable,
            info.log.to_string(),
            info.has_fallback,
            info.description,
        );
    }
}
