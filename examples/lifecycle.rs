//! The Figure 4 walkthrough: a single DHTM transaction whose write set
//! overflows the L1, showing the log, the overflow list, the sticky LLC
//! directory state, and both the commit and the abort paths.
//!
//! ```text
//! cargo run --release --example lifecycle
//! ```

use dhtm::prelude::*;
use dhtm_types::ids::ThreadId;

fn run(commit: bool) {
    println!("==== {} path ====", if commit { "commit" } else { "abort" });
    // Requester-wins makes the abort demonstration simple: a conflicting
    // write from another core dooms the transaction under observation.
    let cfg = SystemConfig::small_test()
        .with_conflict_policy(dhtm_types::policy::ConflictPolicy::RequesterWins);
    let mut machine = Machine::new(cfg.clone());
    let mut engine = DhtmEngine::new(&cfg);
    engine.init(&mut machine);
    let core = CoreId::new(0);
    let thread = ThreadId::new(0);

    engine.begin(&mut machine, core, &[], 0);
    // Write three lines that map to the same L1 set (the small_test L1 is
    // 2-way), forcing one of them to overflow to the LLC.
    let stride = 16 * 64u64;
    let addrs: Vec<Address> = (0..3)
        .map(|i| Address::new(0x40_000 + i * stride))
        .collect();
    for (i, a) in addrs.iter().enumerate() {
        engine.write(&mut machine, core, *a, 100 + i as u64, 10 * (i as u64 + 1));
    }

    let state = engine.state(core);
    println!("write set:      {} lines", state.write_set.len());
    println!("overflowed:     {} line(s)", state.overflowed.len());
    let overflowed = state.overflowed.first().expect("one line overflowed");
    let dir = machine
        .mem
        .llc()
        .entry(overflowed)
        .expect("resident in LLC");
    println!(
        "LLC entry:      state {} sharers {} dirty {} (sticky: still owned by {core})",
        dir.state,
        dir.sharer_count(),
        dir.dirty
    );
    println!(
        "overflow list:  {:?}",
        machine
            .mem
            .domain()
            .overflow_list(thread)
            .lines_for(state.tx)
    );
    println!(
        "log records so far: {}",
        machine.mem.domain().log(thread).len()
    );

    if commit {
        engine.commit(&mut machine, core, 5_000);
        for (i, a) in addrs.iter().enumerate() {
            println!(
                "in-place value of {a}: {} (expected {})",
                machine.mem.domain().read_word(*a),
                100 + i
            );
        }
    } else {
        // Another core writes one of the transaction's lines; under
        // requester-wins the observed transaction is doomed and aborts at its
        // next step.
        let rival = CoreId::new(1);
        engine.begin(&mut machine, rival, &[], 4_000);
        engine.write(&mut machine, rival, addrs[1], 999, 4_100);
        let outcome = engine.read(&mut machine, core, Address::new(0x90_000), 5_000);
        println!("abort outcome: {outcome:?}");
        for a in &addrs {
            println!(
                "in-place value of {a}: {} (unchanged)",
                machine.mem.domain().read_word(*a)
            );
        }
        println!(
            "overflowed LLC line present after abort: {}",
            machine.mem.llc().entry(overflowed).is_some()
        );
    }
    println!();
}

fn main() {
    run(true);
    run(false);
}
