//! Crash consistency walkthrough: run durable transactions by hand, crash the
//! machine at interesting points and show what the recovery manager restores.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use dhtm::prelude::*;
use dhtm_nvm::record::LogRecord;
use dhtm_types::ids::{ThreadId, TxId};

fn main() {
    let cfg = SystemConfig::small_test();
    let mut machine = Machine::new(cfg.clone());
    let mut engine = DhtmEngine::new(&cfg);
    engine.init(&mut machine);
    let core = CoreId::new(0);

    let account_a = Address::new(0x10_000);
    let account_b = Address::new(0x20_000);
    machine.mem.domain_mut().write_word(account_a, 100);
    machine.mem.domain_mut().write_word(account_b, 0);

    // --- Transaction 1: transfer 40 from A to B, committed. -------------
    engine.begin(&mut machine, core, &[], 0);
    engine.write(&mut machine, core, account_a, 60, 10);
    engine.write(&mut machine, core, account_b, 40, 20);
    engine.commit(&mut machine, core, 1_000);
    println!(
        "after commit:  A = {}, B = {}",
        machine.mem.domain().read_word(account_a),
        machine.mem.domain().read_word(account_b)
    );

    // --- Transaction 2: starts a transfer but crashes before commit. ----
    engine.begin(&mut machine, core, &[], 10_000);
    engine.write(&mut machine, core, account_a, 0, 10_010);
    engine.write(&mut machine, core, account_b, 100, 10_020);
    // No commit: the crash happens here.
    let mut crashed = machine.mem.domain().crash_snapshot();
    let report = RecoveryManager::new().recover(&mut crashed).unwrap();
    println!(
        "after crash+recovery: A = {}, B = {} (uncommitted transfer discarded, {} tx replayed)",
        crashed.memory().read_word(account_a),
        crashed.memory().read_word(account_b),
        report.replayed_transactions
    );
    assert_eq!(crashed.memory().read_word(account_a), 60);
    assert_eq!(crashed.memory().read_word(account_b), 40);

    // --- Committed-but-incomplete: replay from the redo log. ------------
    // Build the durable state the hardware would leave if it crashed right
    // after writing the commit record but before writing the data in place.
    let mut domain = dhtm_nvm::PersistentDomain::new(1, 1024, 64);
    domain.write_word(account_a, 60);
    let t0 = ThreadId::new(0);
    let tx = TxId::new(99);
    domain
        .log_mut(t0)
        .append(LogRecord::redo(tx, account_a.line(), [7; 8]))
        .unwrap();
    domain.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
    let report = RecoveryManager::new().recover(&mut domain).unwrap();
    println!(
        "committed-but-incomplete transaction replayed from the redo log: {} tx, A line now {:?}",
        report.replayed_transactions,
        domain.read_line(account_a.line())[0]
    );
    assert_eq!(domain.read_line(account_a.line())[0], 7);
}
