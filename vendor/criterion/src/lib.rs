#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the
//! [`criterion`](https://crates.io/crates/criterion) API used by this
//! workspace. The build container has no access to a crates registry, so
//! this crate is vendored in-tree.
//!
//! It keeps the `criterion_group!`/`criterion_main!` macro surface,
//! `bench_function`, `benchmark_group`, `iter` and `iter_batched`, and
//! reports min/median/mean wall-clock time per iteration to stdout. It does
//! no statistical outlier analysis, warm-up tuning, or HTML reporting —
//! enough to keep `cargo bench` runnable and the benches compiling, not to
//! replace real criterion's rigour.

use std::time::Instant;

/// Opaque black box: prevents the optimiser from deleting a benchmark body.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost; the stand-in runs one routine
/// call per setup call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small input: setup per iteration is cheap.
    SmallInput,
    /// Large input: setup per iteration is expensive.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Measurement state handed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    /// Nanoseconds per sample, collected by `iter`/`iter_batched`.
    samples: Vec<u128>,
}

impl Bencher {
    /// Times `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed().as_nanos());
        }
    }

    /// Times `routine` on a fresh `setup()` input per sample; the setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos());
        }
    }
}

const WARMUP_ITERS: usize = 3;
const DEFAULT_SAMPLE_SIZE: usize = 20;

fn report(id: &str, samples: &mut [u128]) {
    if samples.is_empty() {
        println!("{id:<48} no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u128>() / samples.len() as u128;
    println!(
        "{id:<48} min {min:>12} ns   median {median:>12} ns   mean {mean:>12} ns   ({} samples)",
        samples.len()
    );
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(id, &mut b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A named group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            samples: Vec::new(),
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, target, ..)`
/// or the braced form with an explicit `config = ..` expression.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness CLI arguments (`--bench`, filters) that cargo
            // forwards; the stand-in always runs every benchmark.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(5);
        targets = target
    }

    criterion_group!(simple, target);

    #[test]
    fn groups_run() {
        benches();
        simple();
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.sample_size(2).bench_function("x", |b| b.iter(|| 0));
        g.finish();
    }
}
