//! Value-generation strategies: integer ranges, tuples, `prop_map`, vectors.
//!
//! Unlike real proptest there is no shrinking, so a strategy is just a
//! deterministic function from an RNG to a value.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Returns a strategy that applies `f` to every generated value.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize);

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Output of [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuple! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
}
