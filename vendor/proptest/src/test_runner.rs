//! The case runner: configuration, per-case seeding, regression-file replay.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for a `proptest!` block, mirroring the fields of real
/// proptest's `ProptestConfig` that this workspace uses, plus a mandatory
/// fixed `rng_seed` so runs reproduce across machines.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of fresh random cases to run per test.
    pub cases: u32,
    /// Base seed for case generation. Fixed by default; every case `i` of a
    /// test derives its own seed from `(rng_seed, test name, i)`.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            rng_seed: 0xD47A_D47A_2018_15CA,
        }
    }
}

impl ProptestConfig {
    /// Returns the default configuration with `cases` fresh cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Self::default()
        }
    }

    /// Returns this configuration with the base RNG seed replaced.
    pub fn with_rng_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// `proptest-regressions/<stem>.txt` for the test file at `source_file`.
fn regression_path(source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    PathBuf::from("proptest-regressions").join(format!("{stem}.txt"))
}

/// Parses persisted case seeds: lines of the form `cc <16 hex digits>`.
/// Comments (`#`) and blank lines are ignored.
fn parse_seeds(text: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let hex = line.trim().strip_prefix("cc ")?;
            u64::from_str_radix(hex.trim(), 16).ok()
        })
        .collect()
}

fn load_persisted_seeds(source_file: &str) -> Vec<u64> {
    match std::fs::read_to_string(regression_path(source_file)) {
        Ok(text) => parse_seeds(&text),
        Err(_) => Vec::new(),
    }
}

/// Runs one `proptest!`-declared test: first every persisted regression
/// seed, then `cfg.cases` fresh cases. On failure, reports the seed and the
/// `cc` line to commit to the regression file.
pub fn run_cases<F: Fn(&mut StdRng)>(
    cfg: &ProptestConfig,
    test_name: &str,
    source_file: &str,
    case: F,
) {
    let persisted = load_persisted_seeds(source_file);
    let fresh_base = splitmix64(cfg.rng_seed ^ fnv1a(test_name));
    let fresh = (0..cfg.cases as u64).map(|i| splitmix64(fresh_base.wrapping_add(i)));

    for (origin, seed) in persisted
        .iter()
        .map(|&s| ("persisted", s))
        .chain(fresh.map(|s| ("fresh", s)))
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        if let Err(payload) = outcome {
            let msg = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "proptest case failed ({origin} seed {seed:#018x}) in {test_name}: {msg}\n\
                 To pin this case, add the line `cc {seed:016x}` to {}",
                regression_path(source_file).display(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_per_test_name() {
        let a = splitmix64(7 ^ fnv1a("mod::t1"));
        let b = splitmix64(7 ^ fnv1a("mod::t1"));
        let c = splitmix64(7 ^ fnv1a("mod::t2"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn regression_lines_parse() {
        let seeds =
            parse_seeds("# comment\n\ncc 00000000000000ff\ncc 0000000000000001\nbogus line\n");
        assert_eq!(seeds, vec![0xff, 1]);
        assert_eq!(
            regression_path("tests/crash_recovery_property.rs"),
            PathBuf::from("proptest-regressions/crash_recovery_property.txt"),
        );
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_case_reports_seed() {
        run_cases(
            &ProptestConfig::with_cases(1),
            "stub::always_fails",
            "tests/nonexistent.rs",
            |_rng| panic!("boom"),
        );
    }
}
