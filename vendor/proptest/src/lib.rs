#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the
//! [`proptest`](https://crates.io/crates/proptest) API used by this
//! workspace. The build container has no access to a crates registry, so
//! this crate is vendored in-tree.
//!
//! What it keeps from real proptest:
//!
//! * the `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`
//!   macro surface, so test files read identically;
//! * strategies for integer ranges, tuples, `prop_map` and
//!   `collection::vec`;
//! * failure persistence: failing case seeds are replayed from
//!   `proptest-regressions/<file>.txt` (lines of `cc <16-hex-digit-seed>`)
//!   before fresh cases run, and a failing fresh case prints the exact `cc`
//!   line to commit.
//!
//! What it drops: shrinking. A failing case reports its seed instead of a
//! minimised input; determinism is guaranteed by the fixed `rng_seed` in
//! [`test_runner::ProptestConfig`], which this stand-in makes mandatory
//! (real proptest seeds from OS entropy by default).

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// `proptest::prelude` — everything a test file needs.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a proptest case (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case (stand-in: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case (stand-in: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property-based tests. See the crate docs for the supported
/// grammar; each `#[test] fn name(binding in strategy, ..) { body }` becomes
/// an ordinary `#[test]` that replays persisted regression seeds and then
/// runs `cases` fresh random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);
        $(#[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_cases(
                    &cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    file!(),
                    |__proptest_rng| {
                        $(let $arg = $crate::strategy::Strategy::new_value(
                            &($strat), __proptest_rng);)+
                        $body
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}
