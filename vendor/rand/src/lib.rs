#![forbid(unsafe_code)]
//! Offline stand-in for the subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API used by this workspace. The build container has no access to a
//! crates registry, so this crate is vendored in-tree.
//!
//! The generator behind [`rngs::StdRng`] is **xoshiro256++** seeded through
//! SplitMix64 — a well-studied, high-quality, deterministic PRNG. It is *not*
//! the cryptographic ChaCha generator the real `rand` uses for `StdRng`;
//! nothing in this workspace needs cryptographic randomness, only seedable
//! deterministic streams for workload generation.
//!
//! Implemented surface: `RngCore`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `gen`, `gen_range` (over half-open integer
//! ranges), `gen_ratio` and `gen_bool`.

/// Low-level source of randomness: 32/64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Half-open ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // 2^64 range of u64, where the raw output is already uniform.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let threshold = span.wrapping_neg() % span;
                loop {
                    let r = rng.next_u64();
                    let m = (r as u128) * (span as u128);
                    if (m as u64) >= threshold {
                        return self.start.wrapping_add((m >> 64) as u64 as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if end < <$t>::MAX {
                    (start..end + 1).sample_single(rng)
                } else if start > <$t>::MIN {
                    (start - 1..end).sample_single(rng).wrapping_add(1)
                } else {
                    <$t as Standard>::sample(rng)
                }
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a uniform value from a half-open or inclusive integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        self.gen_range(0..denominator) < numerator
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_within_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
        for _ in 0..100 {
            let v = rng.gen_range(5u64..6);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_ratio_roughly_matches() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 10)).count();
        assert!((700..1300).contains(&hits), "got {hits} hits for p=0.1");
    }

    #[test]
    fn full_u64_range_does_not_loop_forever() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.gen_range(0u64..u64::MAX);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }
}
