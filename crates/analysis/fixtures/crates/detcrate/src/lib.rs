#![forbid(unsafe_code)]
//! Fixture crate judged under the Deterministic tier: one violation per
//! determinism rule, each next to an accepted twin (allowlisted,
//! suppressed-with-reason, or simply legal). Never compiled — the lexer
//! and rules read it as text.

use std::collections::HashMap;

// float-in-det: violation (f64 in a deterministic-tier item).
pub fn average(samples: &[u64]) -> f64 {
    samples.iter().sum::<u64>() as f64 / samples.len() as f64
}

// float-in-det: accepted twin — `Report::ratio` is allowlisted by the
// fixture config.
pub struct Report;

impl Report {
    pub fn ratio(hits: u64, total: u64) -> f64 {
        hits as f64 / total.max(1) as f64
    }
}

// unordered-iter: violation (iteration order escapes).
pub fn sum_values(m: &HashMap<u32, u64>) -> u64 {
    let mut acc = 0;
    for v in m.values() {
        acc += v;
    }
    acc
}

// unordered-iter: accepted twin — membership lookup is legal.
pub fn contains(m: &HashMap<u32, u64>, k: u32) -> bool {
    m.contains_key(&k)
}

// unordered-iter: suppressed twin — reasoned inline allow.
pub fn clear_zeroes(m: &mut HashMap<u32, u64>) {
    // lint: allow(unordered-iter, reason = "pure predicate; iteration order cannot be observed")
    m.retain(|_, v| *v != 0);
}

// wall-clock: violation.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

// bad-suppression: a reason-less allow is itself a finding, and does NOT
// suppress the unordered-iter violation underneath it.
pub fn sneaky(m: &HashMap<u32, u64>) -> u64 {
    // lint: allow(unordered-iter)
    m.values().sum()
}

// bad-suppression: naming an unknown rule.
pub fn misspelled() {
    // lint: allow(float-everywhere, reason = "no such rule")
}

// Test code is exempt from every determinism rule.
#[cfg(test)]
mod tests {
    #[test]
    fn floats_are_fine_in_tests() {
        let x: f64 = 0.5;
        assert!(x < 1.0);
    }
}
