#![forbid(unsafe_code)]
//! Fixture crate with a declared lock hierarchy (`outer` → `inner`):
//! lock-order and lock-blocking violations next to accepted twins.
//! Never compiled — the lock checker reads it as text.

use std::sync::mpsc::Sender;
use std::sync::Mutex;

pub struct S {
    pub outer: Mutex<u32>,
    pub inner: Mutex<u32>,
    pub stray: Mutex<u32>,
}

impl S {
    // lock-order: accepted twin — nesting in declared order.
    pub fn in_order(&self) -> u32 {
        let a = self.outer.lock().unwrap();
        let b = self.inner.lock().unwrap();
        *a + *b
    }

    // lock-order: violation — `outer` acquired while `inner` is held.
    pub fn out_of_order(&self) -> u32 {
        let b = self.inner.lock().unwrap();
        let a = self.outer.lock().unwrap();
        *a + *b
    }

    // lock-order: violation — `stray` is not in the declared hierarchy, so
    // nesting it under anything flags.
    pub fn undeclared_nesting(&self) -> u32 {
        let a = self.outer.lock().unwrap();
        let s = self.stray.lock().unwrap();
        *a + *s
    }

    // lock-blocking: violation — channel send while `outer` is held.
    pub fn notify(&self, tx: &Sender<u32>) {
        let g = self.outer.lock().unwrap();
        let _ = tx.send(*g);
    }

    // lock-blocking: accepted twin — the guard dies with its inner block
    // before the send.
    pub fn notify_unlocked(&self, tx: &Sender<u32>) {
        let v = {
            let g = self.outer.lock().unwrap();
            *g
        };
        let _ = tx.send(v);
    }

    // lock-order via call summary: violation — `take_inner` acquires
    // `inner`; calling it while already holding `inner` self-deadlocks.
    pub fn reentrant(&self) -> u32 {
        let g = self.inner.lock().unwrap();
        *g + self.take_inner()
    }

    fn take_inner(&self) -> u32 {
        *self.inner.lock().unwrap()
    }
}
