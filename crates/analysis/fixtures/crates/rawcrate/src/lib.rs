//! Fixture crate root *missing* `#![forbid(unsafe_code)]` — the
//! forbid-unsafe rule flags exactly this. Never compiled.

pub fn noop() {}
