//! Workspace determinism & concurrency lint, CI-gated.
//!
//! ```text
//! dhtm_lint [--root DIR] [--json FILE] [--deny] [--list-rules]
//! ```
//!
//! Scans every configured crate's `src/` tree under the workspace root
//! (auto-discovered from the current directory when `--root` is absent),
//! prints findings as `file:line rule-id message`, optionally writes the
//! canonical `dhtm-lint-v1` JSON report, and with `--deny` exits nonzero
//! when any finding survives the allowlist and reasoned suppressions.

use std::path::PathBuf;
use std::process::ExitCode;

use dhtm_analysis::config::{rules, Config};
use dhtm_analysis::{analyze_workspace, find_workspace_root};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut deny = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a directory"),
            },
            "--json" => match args.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage("--json needs a file path"),
            },
            "--deny" => deny = true,
            "--list-rules" => {
                for rule in rules::ALL {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("dhtm_lint: no workspace root found (pass --root)");
            return ExitCode::FAILURE;
        }
    };

    let cfg = Config::workspace();
    let report = match analyze_workspace(&root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dhtm_lint: analysis failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", report.render_text());
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, report.render_json()) {
            eprintln!("dhtm_lint: could not write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("dhtm_lint: JSON report written to {}", path.display());
    }

    if deny && !report.findings.is_empty() {
        eprintln!(
            "dhtm_lint: --deny: {} finding(s) block this tree",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("dhtm_lint: {err}");
    }
    eprintln!("usage: dhtm_lint [--root DIR] [--json FILE] [--deny] [--list-rules]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
