//! Findings, the run report, and its text/JSON renderings.
//!
//! The JSON writer is hand-rolled (the crate is dependency-free by design)
//! and canonical: findings are sorted by (file, line, rule) before
//! rendering, so two runs over the same tree produce byte-identical
//! reports — the same discipline every other serialized artefact in this
//! workspace follows.

use std::fmt::Write as _;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id from [`crate::config::rules`].
    pub rule: &'static str,
    /// Enclosing item path ("" at file scope).
    pub item: String,
    /// Human-readable description.
    pub message: String,
}

/// One finding that an inline suppression (with a reason) accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the suppressed finding.
    pub line: u32,
    /// Rule id.
    pub rule: &'static str,
    /// The mandatory reason recorded in the comment.
    pub reason: String,
}

/// The result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations (deny-worthy).
    pub findings: Vec<Finding>,
    /// Findings accepted by reasoned inline suppressions.
    pub suppressed: Vec<Suppressed>,
    /// Findings accepted by the committed allowlist.
    pub allowed: u64,
    /// Number of `.rs` files scanned.
    pub files_scanned: u64,
    /// Number of crates scanned.
    pub crates_scanned: u64,
}

impl Report {
    /// Sorts findings/suppressions into the canonical report order.
    pub fn finalize(&mut self) {
        self.findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.suppressed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    /// The `file:line rule-id message` listing plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let _ = writeln!(out, "{}:{} {} {}", f.file, f.line, f.rule, f.message);
        }
        let _ = writeln!(
            out,
            "dhtm_lint: {} finding(s), {} suppressed, {} allowlisted; {} file(s) in {} crate(s)",
            self.findings.len(),
            self.suppressed.len(),
            self.allowed,
            self.files_scanned,
            self.crates_scanned,
        );
        out
    }

    /// The canonical JSON report (`dhtm-lint-v1`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":\"dhtm-lint-v1\"");
        let _ = write!(
            out,
            ",\"files_scanned\":{},\"crates_scanned\":{},\"allowed\":{}",
            self.files_scanned, self.crates_scanned, self.allowed
        );
        out.push_str(",\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"rule\":{},\"item\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.item),
                json_str(&f.message)
            );
        }
        out.push_str("],\"suppressed\":[");
        for (i, s) in self.suppressed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":{},\"line\":{},\"rule\":{},\"reason\":{}}}",
                json_str(&s.file),
                s.line,
                json_str(s.rule),
                json_str(&s.reason)
            );
        }
        out.push_str("]}\n");
        out
    }
}

/// Escapes a string into a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let mut r = Report {
            findings: vec![Finding {
                file: "a.rs".into(),
                line: 3,
                rule: "float-in-det",
                item: "T::f".into(),
                message: "a \"quoted\" message".into(),
            }],
            ..Report::default()
        };
        r.finalize();
        let json = r.render_json();
        assert!(json.starts_with("{\"version\":\"dhtm-lint-v1\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.ends_with("]}\n"));
    }
}
