//! The committed workspace configuration: crate tiers, float/item
//! allowlists, declared lock hierarchies and the blocking-call catalogue.
//!
//! This file *is* the policy. Changing what the lint permits means editing
//! these tables in a reviewable diff, not sprinkling ad-hoc escapes through
//! the tree — the only other pressure valve is an inline
//! `// lint: allow(<rule>, reason = "…")` with a mandatory reason.

/// Which rule set a crate is judged under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Simulation-state crates: one `SimSpec` + seed must yield one result,
    /// forever. Floats, unordered iteration and wall-clock/entropy sources
    /// are forbidden outside allowlisted reporting/config-boundary items.
    Deterministic,
    /// Crates that face the wall clock (benches, the service, the harness
    /// thread pool, observability): exempt from the determinism rules but
    /// subject to the concurrency rules where a lock hierarchy is declared.
    WallClock,
}

/// One workspace crate under analysis.
#[derive(Debug, Clone, Copy)]
pub struct CrateConfig {
    /// Crate directory relative to the workspace root (`crates/types`,
    /// `vendor/rand`, or `.` for the root umbrella crate).
    pub dir: &'static str,
    /// The tier its sources are judged under.
    pub tier: Tier,
    /// Whether `src/lib.rs` must carry `#![forbid(unsafe_code)]`.
    pub require_forbid_unsafe: bool,
}

/// One allowlisted item: `rule` findings inside `item` of any file whose
/// path ends with `path_suffix` are accepted, with a recorded reason.
///
/// `item` matches the enclosing item path exactly or as a prefix followed
/// by `::` — so `"BaseConfig"` covers both the struct's fields and every
/// method in its impl blocks, while `"MemoryChannel::new"` covers only
/// that constructor.
#[derive(Debug, Clone, Copy)]
pub struct Allow {
    /// Path suffix the allow applies to (e.g. `nvm/src/bandwidth.rs`).
    pub path_suffix: &'static str,
    /// Item path ("Type::method", "fn_name", "Type", or "*" for the file).
    pub item: &'static str,
    /// The rule id being allowed.
    pub rule: &'static str,
    /// Why this item is allowed to break the rule.
    pub reason: &'static str,
}

/// A declared lock hierarchy for one threaded crate: locks may only be
/// acquired in strictly increasing rank order (outermost first).
#[derive(Debug, Clone, Copy)]
pub struct LockHierarchy {
    /// Crate directory the hierarchy applies to.
    pub crate_dir: &'static str,
    /// Lock field/binding names, outermost-first. Rank = index.
    pub order: &'static [&'static str],
}

/// A call considered blocking for the lock-across-blocking rule.
#[derive(Debug, Clone, Copy)]
pub struct BlockingCall {
    /// Method or function name (`recv`, `send`, `read_frame`, …).
    pub name: &'static str,
    /// When set, only a call whose receiver's last path segment equals this
    /// name matches (distinguishes `store.load(…)` — disk IO — from an
    /// atomic's `counter.load(…)`).
    pub receiver: Option<&'static str>,
    /// Short description used in the finding message.
    pub what: &'static str,
}

/// The full analysis configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates to scan, with tiers.
    pub crates: Vec<CrateConfig>,
    /// Item allowlist.
    pub allows: Vec<Allow>,
    /// Declared lock hierarchies.
    pub hierarchies: Vec<LockHierarchy>,
    /// Calls treated as blocking while a lock is held.
    pub blocking: Vec<BlockingCall>,
}

impl Config {
    /// The committed configuration for this workspace.
    pub fn workspace() -> Config {
        Config {
            crates: vec![
                // Deterministic tier: everything a simulation result is
                // computed from.
                det("crates/types"),
                det("crates/cache"),
                det("crates/nvm"),
                det("crates/coherence"),
                det("crates/sim"),
                det("crates/htm"),
                det("crates/core"),
                det("crates/baselines"),
                det("crates/workloads"),
                det("crates/crash"),
                // Wall-clock tier: reporting, orchestration, IO.
                wall("crates/obs"),
                wall("crates/scenario"),
                wall("crates/service"),
                wall("crates/harness"),
                wall("crates/bench"),
                wall("crates/analysis"),
                // The umbrella crate and the vendored stand-ins only take
                // the `#![forbid(unsafe_code)]` check (the stand-ins are
                // support code — the seeded PRNG the workloads draw from is
                // deterministic by construction, not by this lint).
                wall("."),
                wall("vendor/rand"),
                wall("vendor/proptest"),
                wall("vendor/criterion"),
            ],
            allows: vec![
                // --- Reporting getters: floats computed *from* the exact
                // --- integer state, never stored back into it.
                allow(
                    "sim/src/driver.rs",
                    "SimulationResult::throughput",
                    rules::FLOAT_IN_DET,
                    "reporting getter over exact integer stats; never feeds back into simulation state",
                ),
                allow(
                    "cache/src/signature.rs",
                    "ReadSignature::occupancy",
                    rules::FLOAT_IN_DET,
                    "diagnostic false-positive-rate proxy; read by reports only",
                ),
                allow(
                    "types/src/stats.rs",
                    "RunStats",
                    rules::FLOAT_IN_DET,
                    "derived-rate getters (throughput, abort rate, hit rate) over the all-integer counters",
                ),
                // --- Config boundary: rates enter the system as f64 from
                // --- the CLI/spec surface and are decomposed to exact
                // --- rationals before any state is built from them.
                allow(
                    "types/src/config.rs",
                    "*",
                    rules::FLOAT_IN_DET,
                    "config boundary: bandwidth arrives as f64 (Table III units) and is converted to an exact rational before simulation",
                ),
                allow(
                    "nvm/src/bandwidth.rs",
                    "rational_from_f64",
                    rules::FLOAT_IN_DET,
                    "the one-way decomposition of the configured f64 rate into the exact decimal rational it denotes",
                ),
                allow(
                    "nvm/src/bandwidth.rs",
                    "MemoryChannel::new",
                    rules::FLOAT_IN_DET,
                    "constructor takes the config-boundary f64 and immediately decomposes it; no float is stored",
                ),
                allow(
                    "nvm/src/bandwidth.rs",
                    "MemoryChannel::isca18_baseline",
                    rules::FLOAT_IN_DET,
                    "the paper's Table III rate constant (5.3 GB/s at 2 GHz) handed to the config-boundary constructor",
                ),
                allow(
                    "nvm/src/bandwidth.rs",
                    "MemoryChannel::bytes_per_cycle",
                    rules::FLOAT_IN_DET,
                    "reporting getter recomposing the exact rational for display",
                ),
                allow(
                    "nvm/src/bandwidth.rs",
                    "MemoryChannel::utilisation",
                    rules::FLOAT_IN_DET,
                    "reporting getter; busy/horizon ratio for profiles only",
                ),
            ],
            hierarchies: vec![
                LockHierarchy {
                    crate_dir: "crates/service",
                    // Job table first, then the work-channel sender, then a
                    // worker's shared receiver, then the client loadgen's
                    // byte-identity check map. `ResultStore` does its IO
                    // internally without a lock and must never be consulted
                    // while `jobs` is held (that is the blocking rule's job).
                    order: &["jobs", "work_tx", "work_rx", "by_hash"],
                },
                LockHierarchy {
                    crate_dir: "crates/harness",
                    // One rank: per-cell result slots never nest.
                    order: &["slots"],
                },
            ],
            blocking: vec![
                BlockingCall {
                    name: "recv",
                    receiver: None,
                    what: "blocking channel receive",
                },
                BlockingCall {
                    name: "recv_timeout",
                    receiver: None,
                    what: "blocking channel receive",
                },
                BlockingCall {
                    name: "send",
                    receiver: None,
                    what: "channel send (blocking on bounded channels)",
                },
                BlockingCall {
                    name: "join",
                    receiver: None,
                    what: "thread join",
                },
                BlockingCall {
                    name: "flush",
                    receiver: None,
                    what: "socket/file flush",
                },
                BlockingCall {
                    name: "load",
                    receiver: Some("store"),
                    what: "result-store disk read",
                },
                BlockingCall {
                    name: "load_by_hash",
                    receiver: Some("store"),
                    what: "result-store disk read",
                },
                BlockingCall {
                    name: "save",
                    receiver: Some("store"),
                    what: "result-store disk write",
                },
                BlockingCall {
                    name: "read_frame",
                    receiver: None,
                    what: "socket frame read",
                },
                BlockingCall {
                    name: "write_frame",
                    receiver: None,
                    what: "socket frame write",
                },
                BlockingCall {
                    name: "send_event",
                    receiver: None,
                    what: "socket event write",
                },
            ],
        }
    }

    /// The hierarchy declared for `crate_dir`, if any.
    pub fn hierarchy_for(&self, crate_dir: &str) -> Option<&LockHierarchy> {
        self.hierarchies.iter().find(|h| h.crate_dir == crate_dir)
    }

    /// Looks up an allowlist entry matching (file, item, rule).
    pub fn allow_for(&self, file: &str, item_path: &str, rule: &str) -> Option<&Allow> {
        self.allows.iter().find(|a| {
            a.rule == rule
                && file.ends_with(a.path_suffix)
                && (a.item == "*"
                    || item_path == a.item
                    || item_path.starts_with(a.item) && item_path[a.item.len()..].starts_with("::"))
        })
    }
}

fn det(dir: &'static str) -> CrateConfig {
    CrateConfig {
        dir,
        tier: Tier::Deterministic,
        require_forbid_unsafe: true,
    }
}

fn wall(dir: &'static str) -> CrateConfig {
    CrateConfig {
        dir,
        tier: Tier::WallClock,
        require_forbid_unsafe: true,
    }
}

fn allow(
    path_suffix: &'static str,
    item: &'static str,
    rule: &'static str,
    reason: &'static str,
) -> Allow {
    Allow {
        path_suffix,
        item,
        rule,
        reason,
    }
}

/// The rule catalogue: stable ids used in findings, suppressions and the
/// JSON report.
pub mod rules {
    /// `f32`/`f64` types or float literals in a deterministic-tier crate.
    pub const FLOAT_IN_DET: &str = "float-in-det";
    /// Iteration over a `HashMap`/`HashSet` in a deterministic-tier crate.
    pub const UNORDERED_ITER: &str = "unordered-iter";
    /// Wall-clock or entropy source in a deterministic-tier crate.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// A crate root missing `#![forbid(unsafe_code)]`.
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// A lock acquired out of the declared hierarchy order.
    pub const LOCK_ORDER: &str = "lock-order";
    /// A lock held across a blocking send/receive/IO call.
    pub const LOCK_BLOCKING: &str = "lock-blocking";
    /// A `// lint: allow(…)` without a reason, or naming an unknown rule.
    pub const BAD_SUPPRESSION: &str = "bad-suppression";

    /// Every rule id, for validation and `--list-rules`.
    pub const ALL: &[&str] = &[
        FLOAT_IN_DET,
        UNORDERED_ITER,
        WALL_CLOCK,
        FORBID_UNSAFE,
        LOCK_ORDER,
        LOCK_BLOCKING,
        BAD_SUPPRESSION,
    ];
}
