//! Item-context annotation over the token stream: for every token, which
//! item (`Type::method`, free `fn`, `struct` body) encloses it, and whether
//! it sits inside `#[cfg(test)]`/`#[test]` code.
//!
//! This is what lets the allowlist speak in item paths
//! (`MemoryChannel::new`) instead of brittle line ranges, and what lets the
//! determinism rules skip test modules wholesale: tests may average floats
//! to their heart's content — shipped simulation state may not.

use crate::lexer::{Tok, TokKind};

/// One function found in a file (used by the lock checker to bound its
/// per-function walk).
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's bare name.
    pub name: String,
    /// Full item path (`Inner::broadcast`).
    pub item_path: String,
    /// Token index of the `{` opening the body.
    pub body_open: usize,
    /// Token index of the matching `}` (exclusive end is `body_close + 1`).
    pub body_close: usize,
    /// True when the function is test-only code.
    pub in_test: bool,
}

/// Per-token annotations plus the function table for one file.
#[derive(Debug, Default)]
pub struct Scopes {
    /// For each token index: index into `paths` of the enclosing item path
    /// ("" when at file scope).
    item_of: Vec<u32>,
    /// Interned item paths.
    paths: Vec<String>,
    /// For each token index: inside test-only code?
    test_of: Vec<bool>,
    /// Every function body in the file.
    pub fns: Vec<FnSpan>,
}

impl Scopes {
    /// The enclosing item path of token `i` ("" at file scope).
    pub fn item_path(&self, i: usize) -> &str {
        &self.paths[self.item_of[i] as usize]
    }

    /// Is token `i` inside `#[cfg(test)]` / `#[test]` code?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_of[i]
    }
}

struct Frame {
    /// Item path as of this frame (interned index).
    path_idx: u32,
    in_test: bool,
    /// Set when this frame is a `fn` body, to close its `FnSpan`.
    fn_idx: Option<usize>,
}

/// A parsed-but-not-yet-opened item header (`fn name (...)` before its
/// `{`). Its path is computed up front so that the header's own tokens —
/// parameter types, return type, where-clauses — already carry the item's
/// path (the allowlist must reach `fn new(rate: f64)` signatures too).
struct Pending {
    name: String,
    path_idx: u32,
    is_fn: bool,
    in_test: bool,
}

/// Annotates `tokens` with item paths, test-ness and function spans.
pub fn annotate(tokens: &[Tok]) -> Scopes {
    let mut scopes = Scopes {
        item_of: Vec::with_capacity(tokens.len()),
        paths: vec![String::new()],
        test_of: Vec::with_capacity(tokens.len()),
        fns: Vec::new(),
    };
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut pending_test = false;
    let mut i = 0usize;

    while i < tokens.len() {
        let t = &tokens[i];
        let cur_path = stack.last().map_or(0, |f| f.path_idx);
        let cur_test = stack.last().is_some_and(|f| f.in_test);
        // A pending item header claims its own signature tokens.
        let eff_path = pending.as_ref().map_or(cur_path, |p| p.path_idx);
        let eff_test = cur_test || pending.as_ref().is_some_and(|p| p.in_test);
        scopes.item_of.push(eff_path);
        scopes.test_of.push(eff_test);

        match t.kind {
            TokKind::Punct if t.is_punct('#') => {
                // An attribute: `#[...]` or `#![...]`. A `test` identifier
                // anywhere inside marks the next item as test-only
                // (`#[cfg(test)]`, `#[test]`, `#[cfg(all(test, …))]`).
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.is_punct('!')) {
                    j += 1;
                }
                if tokens.get(j).is_some_and(|t| t.is_punct('[')) {
                    let (end, has_test) = scan_attr(tokens, j);
                    if has_test {
                        pending_test = true;
                    }
                    // Annotate the attribute's tokens and skip past it.
                    while i < end.min(tokens.len()) {
                        i += 1;
                        if i < tokens.len() {
                            scopes.item_of.push(cur_path);
                            scopes.test_of.push(cur_test);
                        }
                    }
                    continue;
                }
            }
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        let name = name_tok.text.clone();
                        let path_idx = child_path(&mut scopes.paths, cur_path, &name);
                        pending = Some(Pending {
                            name,
                            path_idx,
                            is_fn: true,
                            in_test: cur_test || pending_test,
                        });
                        pending_test = false;
                    }
                }
                // `impl` opens an item only at item position — in a return
                // type (`-> impl Iterator`) a `fn` header is already
                // pending and must not be clobbered.
                "impl" if pending.is_none() => {
                    let name = impl_self_type(tokens, i + 1);
                    let path_idx = child_path(&mut scopes.paths, cur_path, &name);
                    pending = Some(Pending {
                        name,
                        path_idx,
                        is_fn: false,
                        in_test: cur_test || pending_test,
                    });
                    pending_test = false;
                }
                "struct" | "enum" | "trait" | "union" if pending.is_none() => {
                    if let Some(name_tok) = tokens.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                        let name = name_tok.text.clone();
                        let path_idx = child_path(&mut scopes.paths, cur_path, &name);
                        pending = Some(Pending {
                            name,
                            path_idx,
                            is_fn: false,
                            in_test: cur_test || pending_test,
                        });
                        pending_test = false;
                    }
                }
                "mod" if pending.is_none() => {
                    pending = Some(Pending {
                        name: String::new(),
                        path_idx: cur_path,
                        is_fn: false,
                        in_test: cur_test || pending_test,
                    });
                    pending_test = false;
                }
                _ => {}
            },
            TokKind::Punct if t.is_punct('{') => {
                let frame = match pending.take() {
                    Some(p) => {
                        let path_idx = p.path_idx;
                        let fn_idx = p.is_fn.then(|| {
                            scopes.fns.push(FnSpan {
                                name: p.name.clone(),
                                item_path: scopes.paths[path_idx as usize].clone(),
                                body_open: i,
                                body_close: i,
                                in_test: p.in_test,
                            });
                            scopes.fns.len() - 1
                        });
                        Frame {
                            path_idx,
                            in_test: p.in_test,
                            fn_idx,
                        }
                    }
                    None => Frame {
                        path_idx: cur_path,
                        in_test: cur_test,
                        fn_idx: None,
                    },
                };
                // Re-annotate the `{` itself under the frame it opens, so a
                // body's first line already carries the item path.
                *scopes.item_of.last_mut().expect("pushed above") = frame.path_idx;
                *scopes.test_of.last_mut().expect("pushed above") = frame.in_test;
                stack.push(frame);
            }
            TokKind::Punct if t.is_punct('}') => {
                if let Some(frame) = stack.pop() {
                    if let Some(fn_idx) = frame.fn_idx {
                        scopes.fns[fn_idx].body_close = i;
                    }
                }
            }
            TokKind::Punct if t.is_punct(';') => {
                // `struct Name;`, `struct Name(T);`, `mod name;`,
                // `#[cfg(test)] use …;` — the item never opens a body, so
                // any pending header or test marker dies with it.
                pending = None;
                pending_test = false;
            }
            _ => {}
        }
        i += 1;
    }
    scopes
}

/// Scans an attribute starting at its `[` token; returns (index just past
/// the matching `]`, whether the ident `test` appears inside).
fn scan_attr(tokens: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut i = open;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return (i + 1, has_test);
            }
        } else if t.is_ident("test") {
            has_test = true;
        }
        i += 1;
    }
    (i, has_test)
}

/// Extracts the `Self` type name from an `impl` header: the last identifier
/// at angle-depth 0 before the body (after `for`, when present), so
/// `impl<'a> SimObserver for ProgressObserver<'_>` yields `ProgressObserver`.
fn impl_self_type(tokens: &[Tok], mut i: usize) -> String {
    let mut angle = 0i32;
    let mut last = String::new();
    while i < tokens.len() {
        let t = &tokens[i];
        if angle == 0 && (t.is_punct('{') || t.is_ident("where")) {
            break;
        }
        match t.kind {
            TokKind::Punct if t.is_punct('<') => angle += 1,
            TokKind::Punct if t.is_punct('>') => angle = (angle - 1).max(0),
            TokKind::Ident if angle == 0 => {
                if t.text == "for" {
                    last.clear();
                } else if t.text != "dyn" && t.text != "mut" && t.text != "const" {
                    last = t.text.clone();
                }
            }
            _ => {}
        }
        i += 1;
    }
    last
}

/// Interns `base::name` (or just `name` at file scope); an empty name —
/// an `impl` header whose type could not be resolved — keeps the base.
fn child_path(paths: &mut Vec<String>, base: u32, name: &str) -> u32 {
    if name.is_empty() {
        return base;
    }
    let base_path = &paths[base as usize];
    let path = if base_path.is_empty() {
        name.to_string()
    } else {
        format!("{base_path}::{name}")
    };
    intern(paths, path)
}

fn intern(paths: &mut Vec<String>, path: String) -> u32 {
    match paths.iter().position(|p| *p == path) {
        Some(i) => i as u32,
        None => {
            paths.push(path);
            (paths.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn path_at_ident(src: &str, ident: &str) -> (String, bool) {
        let lexed = lex(src);
        let scopes = annotate(&lexed.tokens);
        let i = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident(ident))
            .expect("marker ident present");
        (scopes.item_path(i).to_string(), scopes.in_test(i))
    }

    #[test]
    fn impl_method_path() {
        let src = "impl<'a> Display for Channel<'a> { fn fmt(&self) { marker; } }";
        assert_eq!(path_at_ident(src, "marker").0, "Channel::fmt");
    }

    #[test]
    fn cfg_test_subtree_is_test() {
        let src = "fn live() { a; }\n#[cfg(test)]\nmod tests {\n fn t() { marker; }\n}";
        assert!(path_at_ident(src, "marker").1);
        assert!(!path_at_ident(src, "a").1);
    }

    #[test]
    fn struct_fields_carry_struct_path() {
        let src = "pub struct BaseConfig { pub rate: f64 }";
        assert_eq!(path_at_ident(src, "rate").0, "BaseConfig");
    }

    #[test]
    fn fn_spans_recorded() {
        let lexed = lex("fn a() { x; } impl T { fn b(&self) { y; } }");
        let scopes = annotate(&lexed.tokens);
        let names: Vec<_> = scopes.fns.iter().map(|f| f.item_path.clone()).collect();
        assert_eq!(names, vec!["a", "T::b"]);
        for f in &scopes.fns {
            assert!(f.body_close > f.body_open);
        }
    }
}
