//! The finding sink: every rule funnels candidate findings through
//! [`Sink::emit`], which applies the three acceptance layers in order —
//! test-code exemption, the committed allowlist, then reasoned inline
//! suppressions — before anything lands in the report.

use crate::config::{rules, Config};
use crate::lexer::Suppression;
use crate::report::{Finding, Report, Suppressed};
use crate::scope::Scopes;

/// Per-file emission context.
pub struct Sink<'a> {
    /// The committed configuration.
    pub cfg: &'a Config,
    /// Workspace-relative path of the file under analysis.
    pub rel_path: &'a str,
    /// Item/test annotations for the file's tokens.
    pub scopes: &'a Scopes,
    /// Inline suppressions found in the file.
    pub suppressions: &'a [Suppression],
    /// The report being accumulated.
    pub report: &'a mut Report,
}

impl Sink<'_> {
    /// Validates the file's suppressions up front: a reason-less
    /// suppression or one naming an unknown rule is itself a finding (and
    /// is never honoured).
    pub fn check_suppressions(&mut self) {
        for s in self.suppressions {
            if !rules::ALL.contains(&s.rule.as_str()) {
                self.report.findings.push(Finding {
                    file: self.rel_path.to_string(),
                    line: s.comment_line,
                    rule: rules::BAD_SUPPRESSION,
                    item: String::new(),
                    message: format!(
                        "suppression names unknown rule `{}` (known: {})",
                        s.rule,
                        rules::ALL.join(", ")
                    ),
                });
            } else if s.reason.is_none() {
                self.report.findings.push(Finding {
                    file: self.rel_path.to_string(),
                    line: s.comment_line,
                    rule: rules::BAD_SUPPRESSION,
                    item: String::new(),
                    message: format!(
                        "suppression of `{}` has no reason; write `// lint: allow({}, reason = \"…\")`",
                        s.rule, s.rule
                    ),
                });
            }
        }
    }

    /// Emits a candidate finding for `rule` at `line`, anchored at token
    /// index `tok_idx` (for item-path and test-code resolution).
    pub fn emit(&mut self, rule: &'static str, line: u32, tok_idx: usize, message: String) {
        if self.scopes.in_test(tok_idx) {
            return;
        }
        let item = self.scopes.item_path(tok_idx);
        if self.cfg.allow_for(self.rel_path, item, rule).is_some() {
            self.report.allowed += 1;
            return;
        }
        if let Some(s) = self
            .suppressions
            .iter()
            .find(|s| s.target_line == line && s.rule == rule && s.reason.is_some())
        {
            self.report.suppressed.push(Suppressed {
                file: self.rel_path.to_string(),
                line,
                rule,
                reason: s.reason.clone().expect("filtered on Some"),
            });
            return;
        }
        self.report.findings.push(Finding {
            file: self.rel_path.to_string(),
            line,
            rule,
            item: item.to_string(),
            message,
        });
    }
}
