//! A hand-rolled Rust lexer, complete enough to judge the workspace's own
//! sources at the token level.
//!
//! The rules downstream only need identifiers, literals and single-character
//! punctuation with accurate line numbers — but getting *those* right
//! requires handling everything that can hide them: line and (nested) block
//! comments, normal/raw/byte string literals with arbitrary `#` fences,
//! escape sequences, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//! Comments are not emitted as tokens; line comments are scanned for the
//! inline suppression syntax (`// lint: allow(<rule>, reason = "…")`) and
//! surfaced separately so rules can consult them by line.

/// The kind of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, `r#type`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A string literal of any flavour: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// An integer literal (any base, with suffix if present).
    Int,
    /// A floating-point literal (`1.0`, `2e8`, `1.5f64`).
    Float,
    /// A single punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One token with its kind, source text and 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// The token's source text (for `Str`, includes the quotes/fences).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    /// True when this is an identifier with exactly the text `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// An inline suppression parsed from a `// lint: allow(…)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id inside `allow(…)` (not yet validated against the
    /// catalogue — rules do that, so an unknown id is itself a finding).
    pub rule: String,
    /// The mandatory reason, when present.
    pub reason: Option<String>,
    /// The line the suppression applies to: the comment's own line when the
    /// comment trails code, the following line when it stands alone.
    pub target_line: u32,
    /// The line the comment itself sits on (for reporting).
    pub comment_line: u32,
}

/// The output of lexing one file: the token stream plus any inline
/// suppressions found in its comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All `// lint: allow(…)` suppressions, in source order.
    pub suppressions: Vec<Suppression>,
}

/// Lexes `source` into tokens and suppressions.
///
/// The lexer is total: unrecognised bytes are skipped rather than failing,
/// so a file that rustc rejects still produces a best-effort stream (the
/// lint runs on sources that are already compiling in CI, so in practice
/// this path never triggers).
pub fn lex(source: &str) -> Lexed {
    Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' if self.raw_string_ahead(1) => self.raw_string(1),
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_ahead(2) => {
                    self.raw_string(2);
                }
                b'b' if self.peek(1) == Some(b'"') => self.string(1),
                b'b' if self.peek(1) == Some(b'\'') => self.char_literal(1),
                b'"' => self.string(0),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                c if ident_start(c) => self.ident(),
                _ => {
                    self.push(TokKind::Punct, (c as char).to_string());
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokKind, text: String) {
        self.out.tokens.push(Tok {
            kind,
            text,
            line: self.line,
        });
    }

    /// Consumes a `//` comment to end of line, harvesting suppressions.
    fn line_comment(&mut self) {
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap_or("");
        // A comment that trails code suppresses its own line; a standalone
        // comment suppresses the line below it.
        let standalone = self.out.tokens.last().is_none_or(|t| t.line != self.line);
        if let Some(mut sup) = parse_suppression(text) {
            sup.comment_line = self.line;
            sup.target_line = if standalone { self.line + 1 } else { self.line };
            self.out.suppressions.push(sup);
        }
    }

    /// Consumes a `/* … */` comment, honouring nesting.
    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match self.src[self.pos] {
                b'\n' => self.line += 1,
                b'/' if self.peek(1) == Some(b'*') => {
                    depth += 1;
                    self.pos += 1;
                }
                b'*' if self.peek(1) == Some(b'/') => {
                    depth -= 1;
                    self.pos += 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Is `r#*"` (a raw-string opener) at offset `ahead` from `pos`?
    fn raw_string_ahead(&self, ahead: usize) -> bool {
        let mut i = self.pos + ahead;
        while self.src.get(i) == Some(&b'#') {
            i += 1;
        }
        self.src.get(i) == Some(&b'"')
    }

    /// Consumes `r##"…"##` (or byte-raw) with any fence width. `prefix` is
    /// the length of the `r`/`br` introducer.
    fn raw_string(&mut self, prefix: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += prefix;
        let mut fences = 0usize;
        while self.peek(0) == Some(b'#') {
            fences += 1;
            self.pos += 1;
        }
        self.pos += 1; // opening quote
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    // Close only when followed by the full fence.
                    let closes = (1..=fences).all(|i| self.peek(i) == Some(b'#'));
                    self.pos += 1;
                    if closes {
                        self.pos += fences;
                        break;
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            text,
            line: start_line,
        });
    }

    /// Consumes a normal (or byte) string literal with escapes.
    fn string(&mut self, prefix: usize) {
        let start = self.pos;
        let start_line = self.line;
        self.pos += prefix + 1; // introducer + opening quote
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            match c {
                b'\\' => self.pos += 1, // skip the escaped byte
                b'\n' => self.line += 1,
                b'"' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.out.tokens.push(Tok {
            kind: TokKind::Str,
            text,
            line: start_line,
        });
    }

    /// Consumes a `b'…'` byte literal (prefix already sighted).
    fn char_literal(&mut self, prefix: usize) {
        let start = self.pos;
        self.pos += prefix + 1;
        while let Some(c) = self.peek(0) {
            self.pos += 1;
            match c {
                b'\\' => self.pos += 1,
                b'\'' => break,
                _ => {}
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Char, text);
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'` (char).
    fn quote(&mut self) {
        // An escape or a non-identifier character after the quote means a
        // char literal; an identifier is a lifetime unless a closing quote
        // immediately follows it (`'a'`).
        match self.peek(1) {
            Some(c) if ident_start(c) => {
                let mut end = self.pos + 2;
                while self.src.get(end).copied().is_some_and(ident_continue) {
                    end += 1;
                }
                if self.src.get(end) == Some(&b'\'') {
                    let text = String::from_utf8_lossy(&self.src[self.pos..=end]).into_owned();
                    self.push(TokKind::Char, text);
                    self.pos = end + 1;
                } else {
                    let text = String::from_utf8_lossy(&self.src[self.pos..end]).into_owned();
                    self.push(TokKind::Lifetime, text);
                    self.pos = end;
                }
            }
            _ => self.char_literal(0),
        }
    }

    /// Consumes a numeric literal, classifying int vs float.
    fn number(&mut self) {
        let start = self.pos;
        let mut is_float = false;
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
        } else {
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_digit() || c == b'_')
            {
                self.pos += 1;
            }
            // A fractional part — but not `1..2` (range) or `1.method()`.
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                is_float = true;
                self.pos += 1;
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
            // An exponent.
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(self.peek(1), Some(b'+' | b'-'))
                        && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
            {
                is_float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self
                    .peek(0)
                    .is_some_and(|c| c.is_ascii_digit() || c == b'_')
                {
                    self.pos += 1;
                }
            }
            // A type suffix (`1.0f64`, `1u32`): floats keep their kind, an
            // `f32`/`f64` suffix promotes an integer literal to float.
            if self.peek(0).is_some_and(ident_start) {
                let suffix_start = self.pos;
                while self.peek(0).is_some_and(ident_continue) {
                    self.pos += 1;
                }
                let suffix = &self.src[suffix_start..self.pos];
                if suffix == b"f32" || suffix == b"f64" {
                    is_float = true;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(
            if is_float {
                TokKind::Float
            } else {
                TokKind::Int
            },
            text,
        );
    }

    /// Consumes an identifier or keyword (including `r#raw` identifiers).
    fn ident(&mut self) {
        let start = self.pos;
        if self.peek(0) == Some(b'r') && self.peek(1) == Some(b'#') {
            self.pos += 2;
        }
        while self.peek(0).is_some_and(ident_continue) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text);
    }
}

fn ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Parses `lint: allow(<rule>)` / `lint: allow(<rule>, reason = "…")` out
/// of a line comment's text. Returns `None` when the comment is not a
/// suppression at all; a suppression with `reason: None` is returned so the
/// rules can flag it as reason-less.
fn parse_suppression(comment: &str) -> Option<Suppression> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inside = &rest[..close];
    let (rule, reason) = match inside.split_once(',') {
        None => (inside.trim(), None),
        Some((rule, tail)) => {
            let tail = tail.trim();
            let reason = tail
                .strip_prefix("reason")
                .map(|t| t.trim_start())
                .and_then(|t| t.strip_prefix('='))
                .map(|t| t.trim())
                .and_then(|t| t.strip_prefix('"'))
                .and_then(|t| t.strip_suffix('"'))
                .filter(|t| !t.trim().is_empty())
                .map(str::to_string);
            (rule.trim(), reason)
        }
    };
    Some(Suppression {
        rule: rule.to_string(),
        reason,
        target_line: 0,
        comment_line: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn lifetime_vs_char() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokKind::Char, "'a'".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
    }

    #[test]
    fn raw_string_fences_hide_quotes() {
        let toks = kinds(r####"let s = r##"a "quote" and a # fence"##; let x = 1;"####);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Str).count(),
            1,
            "one raw string: {toks:?}"
        );
        assert!(toks.contains(&(TokKind::Int, "1".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("1.5 2e8 1.0e-3 7 0x1f 1..4 3f64 2u32");
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Float)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(floats, vec!["1.5", "2e8", "1.0e-3", "3f64"]);
        assert!(toks.contains(&(TokKind::Int, "0x1f".into())));
        assert!(toks.contains(&(TokKind::Int, "2u32".into())));
    }

    #[test]
    fn suppression_parsing() {
        let lexed = lex("let x = 1; // lint: allow(float-in-det, reason = \"why\")\n// lint: allow(wall-clock)\nlet y;");
        assert_eq!(lexed.suppressions.len(), 2);
        assert_eq!(lexed.suppressions[0].rule, "float-in-det");
        assert_eq!(lexed.suppressions[0].reason.as_deref(), Some("why"));
        assert_eq!(lexed.suppressions[0].target_line, 1, "trailing: own line");
        assert_eq!(lexed.suppressions[1].rule, "wall-clock");
        assert_eq!(lexed.suppressions[1].reason, None);
        assert_eq!(
            lexed.suppressions[1].target_line, 3,
            "standalone: next line"
        );
    }
}
