//! Token-level determinism rules for deterministic-tier crates:
//! float types/literals, iteration over unordered containers, and
//! wall-clock/entropy sources.
//!
//! All three rules skip `#[cfg(test)]`/`#[test]` code (tests may average,
//! time and randomise freely — shipped simulation state may not), honour
//! the committed item allowlist, and accept reasoned inline suppressions.

use crate::emit::Sink;
use crate::lexer::{Tok, TokKind};

/// Identifiers that name a wall-clock or entropy source. `Instant` and
/// `SystemTime` only ever come from `std::time`; `thread_rng` and
/// `RandomState` are the two entropy doors the standard library and the
/// vendored rand stand-in expose.
pub const WALL_CLOCK_IDENTS: &[(&str, &str)] = &[
    ("Instant", "wall-clock time source `Instant`"),
    ("SystemTime", "wall-clock time source `SystemTime`"),
    ("thread_rng", "entropy source `thread_rng`"),
    ("from_entropy", "entropy source `from_entropy`"),
    ("RandomState", "randomly-seeded hasher `RandomState`"),
];

/// Methods whose call on a `HashMap`/`HashSet` observes its (per-process
/// random) iteration order. Membership lookups (`get`, `contains_key`,
/// `insert`, `remove`) stay legal.
const UNORDERED_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// Runs the deterministic-tier token rules over one file.
pub fn check_deterministic(sink: &mut Sink<'_>, tokens: &[Tok]) {
    let unordered = collect_unordered_bindings(tokens);
    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokKind::Ident if t.text == "f32" || t.text == "f64" => {
                sink.emit(
                    crate::config::rules::FLOAT_IN_DET,
                    t.line,
                    i,
                    format!(
                        "`{}` in a deterministic-tier crate; keep simulation state integral (exact rationals/fixed point) or allowlist the reporting item",
                        t.text
                    ),
                );
            }
            TokKind::Float => {
                sink.emit(
                    crate::config::rules::FLOAT_IN_DET,
                    t.line,
                    i,
                    format!("float literal `{}` in a deterministic-tier crate", t.text),
                );
            }
            TokKind::Ident => {
                if let Some((_, what)) = WALL_CLOCK_IDENTS.iter().find(|(name, _)| t.text == *name)
                {
                    sink.emit(
                        crate::config::rules::WALL_CLOCK,
                        t.line,
                        i,
                        format!("{what} in a deterministic-tier crate"),
                    );
                }
                check_unordered_iter(sink, tokens, i, &unordered);
            }
            _ => {}
        }
    }
}

/// Collects names bound to `HashMap`/`HashSet` in this file: field or
/// binding type ascriptions (`held: HashMap<…>`, through `&`/`mut`) and
/// constructor initialisations (`let m = HashMap::new()`).
///
/// A deliberately local heuristic: a map declared in one file and iterated
/// from another is invisible to it — the workspace keeps its maps private
/// to the structure that owns them, and the fixture tests pin exactly this
/// contract.
fn collect_unordered_bindings(tokens: &[Tok]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk left over `&`, `mut`, `'a` to the ascription colon. A `::`
        // immediately left means a path (`collections::HashMap`) — walk
        // through it only for the `use`/qualified-path case by skipping
        // nothing: paths are rejected below.
        let mut j = i;
        while j > 0
            && (tokens[j - 1].is_punct('&')
                || tokens[j - 1].is_ident("mut")
                || tokens[j - 1].kind == TokKind::Lifetime)
        {
            j -= 1;
        }
        if j >= 2
            && tokens[j - 1].is_punct(':')
            && !tokens[j - 2].is_punct(':')
            && tokens[j - 2].kind == TokKind::Ident
        {
            names.push(tokens[j - 2].text.clone());
            continue;
        }
        // `name = HashMap::new()` / `with_capacity` / `default`.
        if i >= 2 && tokens[i - 1].is_punct('=') && tokens[i - 2].kind == TokKind::Ident {
            names.push(tokens[i - 2].text.clone());
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Flags `map.iter()`-family calls and `for _ in &map` loops on bindings
/// known to be unordered containers.
fn check_unordered_iter(sink: &mut Sink<'_>, tokens: &[Tok], i: usize, unordered: &[String]) {
    let t = &tokens[i];
    // `map.keys()` — an unordered method call: ident in the binding set,
    // preceded by `.`, followed by `(`.
    if UNORDERED_ITER_METHODS.contains(&t.text.as_str())
        && i >= 2
        && tokens[i - 1].is_punct('.')
        && tokens[i - 2].kind == TokKind::Ident
        && unordered.iter().any(|n| *n == tokens[i - 2].text)
        && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
    {
        sink.emit(
            crate::config::rules::UNORDERED_ITER,
            t.line,
            i,
            format!(
                "iteration over unordered container `{}` via `.{}()`; iterate a sorted/indexed structure instead",
                tokens[i - 2].text, t.text
            ),
        );
    }
    // `for _ in &map {` — direct loop over the container.
    if t.is_ident("in") {
        let mut j = i + 1;
        while tokens
            .get(j)
            .is_some_and(|n| n.is_punct('&') || n.is_ident("mut"))
        {
            j += 1;
        }
        if let Some(name_tok) = tokens.get(j) {
            if name_tok.kind == TokKind::Ident
                && unordered.contains(&name_tok.text)
                && tokens.get(j + 1).is_some_and(|n| n.is_punct('{'))
            {
                sink.emit(
                    crate::config::rules::UNORDERED_ITER,
                    name_tok.line,
                    j,
                    format!(
                        "`for … in` over unordered container `{}`; iterate a sorted/indexed structure instead",
                        name_tok.text
                    ),
                );
            }
        }
    }
}

/// Checks that a crate-root file carries `#![forbid(unsafe_code)]`.
pub fn check_forbid_unsafe(sink: &mut Sink<'_>, tokens: &[Tok]) {
    let has = tokens.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !has && !tokens.is_empty() {
        sink.emit(
            crate::config::rules::FORBID_UNSAFE,
            1,
            0,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}
