#![forbid(unsafe_code)]
//! # dhtm-analysis
//!
//! An offline, dependency-free static-analysis pass over this workspace's
//! own Rust sources, gated in CI through the `dhtm_lint` binary.
//!
//! The whole reproduction rests on bit-identical determinism: goldens,
//! crash oracles, parallel-equivalence proofs and the service's
//! content-addressed result cache all assume that one `SimSpec` + seed
//! yields exactly one result, forever. This crate turns that convention
//! into a checked invariant:
//!
//! * **Deterministic tier** (`types`, `cache`, `nvm`, `coherence`, `sim`,
//!   `htm`, `core`, `baselines`, `workloads`, `crash`): no `f32`/`f64`
//!   outside allowlisted reporting/config-boundary items, no iteration
//!   over `HashMap`/`HashSet` (membership lookups stay legal), no
//!   wall-clock or entropy sources (`Instant`, `SystemTime`, `thread_rng`,
//!   `RandomState`).
//! * **Wall-clock tier** (`obs`, `scenario`, `service`, `harness`,
//!   `bench`): exempt from the above, but the threaded crates gain a
//!   declared lock hierarchy — nested `.lock()`/`.read()`/`.write()`
//!   acquisitions must follow it, and no lock may be held across a
//!   blocking send/receive/IO call.
//! * Every crate root must carry `#![forbid(unsafe_code)]`.
//!
//! Escapes are deliberate and auditable: the committed item allowlist in
//! [`config`], or an inline `// lint: allow(<rule>, reason = "…")` whose
//! reason is mandatory (a bare suppression is itself a finding).
//!
//! See `DESIGN.md` § "Static analysis & determinism invariants".

pub mod config;
pub mod emit;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod scope;

use std::io;
use std::path::{Path, PathBuf};

use config::{Config, Tier};
use emit::Sink;
use report::Report;

/// Analyzes every configured crate under `root`, returning the finalized
/// report.
///
/// # Errors
///
/// Propagates IO failures reading source files; a configured crate whose
/// `src/` directory is missing is an error (the config names a crate that
/// no longer exists).
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let mut report = Report::default();
    for krate in &cfg.crates {
        let crate_root = root.join(krate.dir);
        let src = crate_root.join("src");
        if !src.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "configured crate `{}` has no src/ at {}",
                    krate.dir,
                    src.display()
                ),
            ));
        }
        report.crates_scanned += 1;
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let source = std::fs::read_to_string(&path)?;
            analyze_file(cfg, krate.dir, krate.tier, &rel, &source, &mut report);
            report.files_scanned += 1;
        }
        if krate.require_forbid_unsafe {
            let lib = src.join("lib.rs");
            if lib.is_file() {
                let rel = rel_path(root, &lib);
                let source = std::fs::read_to_string(&lib)?;
                check_crate_root(cfg, &rel, &source, &mut report);
            }
        }
    }
    report.finalize();
    Ok(report)
}

/// Runs every applicable rule over one file's source.
pub fn analyze_file(
    cfg: &Config,
    crate_dir: &str,
    tier: Tier,
    rel_path: &str,
    source: &str,
    report: &mut Report,
) {
    let lexed = lexer::lex(source);
    let scopes = scope::annotate(&lexed.tokens);
    let mut sink = Sink {
        cfg,
        rel_path,
        scopes: &scopes,
        suppressions: &lexed.suppressions,
        report,
    };
    sink.check_suppressions();
    if tier == Tier::Deterministic {
        rules::check_deterministic(&mut sink, &lexed.tokens);
    }
    if let Some(h) = cfg.hierarchy_for(crate_dir) {
        locks::check_locks(&mut sink, &lexed.tokens, &scopes, h);
    }
}

/// Checks a crate-root file for the mandatory `#![forbid(unsafe_code)]`.
fn check_crate_root(cfg: &Config, rel_path: &str, source: &str, report: &mut Report) {
    let lexed = lexer::lex(source);
    let scopes = scope::annotate(&lexed.tokens);
    let mut sink = Sink {
        cfg,
        rel_path,
        scopes: &scopes,
        suppressions: &lexed.suppressions,
        report,
    };
    rules::check_forbid_unsafe(&mut sink, &lexed.tokens);
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Walks up from `start` to find the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
        }
        dir = d.parent();
    }
    None
}
