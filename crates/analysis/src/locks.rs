//! The static lock-order and lock-across-blocking checker for crates with
//! a declared lock hierarchy.
//!
//! Acquisitions are `.lock()` / `.read()` / `.write()` calls with empty
//! argument lists whose receiver's field name is resolvable — declared
//! locks get their hierarchy rank, unknown receivers get a rank past the
//! end so that *any* nesting involving them is out of order. Guard
//! lifetimes are tracked structurally: a guard from a `let`-statement lives
//! to the end of its enclosing block, a temporary dies at the next `;` at
//! its own depth (so `for e in m.lock()… { … }` keeps the guard live across
//! the body, while `m.lock().take();` drops it before the next statement).
//!
//! The checker is lightly interprocedural: a first pass computes, to a
//! fixpoint over same-file calls, which declared locks each function may
//! acquire; a call made while a guard is held is then checked against the
//! callee's summary. Blocking calls (channel send/recv, thread join,
//! socket/store IO — the committed [`crate::config::BlockingCall`] list)
//! are flagged only at their direct site, so one suppression covers one
//! pattern instead of cascading up the call chain.

use std::collections::BTreeMap;

use crate::config::{rules, Config, LockHierarchy};
use crate::emit::Sink;
use crate::lexer::{Tok, TokKind};
use crate::scope::Scopes;

/// Rank assigned to `.lock()` receivers that are not in the declared
/// hierarchy: beyond every declared rank, so nesting them either way flags.
const UNDECLARED: usize = usize::MAX;

/// A lock guard currently held during the per-function walk.
struct Held {
    name: String,
    rank: usize,
    /// Brace depth the acquisition happened at.
    depth: usize,
    /// Temporaries die at the next `;` at `depth`; `let`-bound guards live
    /// until the block at `depth` closes.
    temp: bool,
    line: u32,
}

/// Runs the lock checker over one file of a crate with hierarchy `h`.
pub fn check_locks(sink: &mut Sink<'_>, tokens: &[Tok], scopes: &Scopes, h: &LockHierarchy) {
    let summaries = fn_summaries(tokens, scopes, h);
    for f in &scopes.fns {
        if f.in_test {
            continue;
        }
        walk_fn(sink, tokens, f.body_open, f.body_close, h, &summaries);
    }
}

/// Which declared locks each function in this file may acquire,
/// transitively over same-file calls (fixpoint).
fn fn_summaries(
    tokens: &[Tok],
    scopes: &Scopes,
    h: &LockHierarchy,
) -> BTreeMap<String, Vec<String>> {
    let mut acquires: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for f in &scopes.fns {
        let mut acq = Vec::new();
        let mut callees = Vec::new();
        let mut i = f.body_open;
        while i <= f.body_close {
            if let Some((name, _)) = acquisition_at(tokens, i) {
                if h.order.contains(&name.as_str()) {
                    acq.push(name);
                }
            } else if is_call_at(tokens, i) {
                callees.push(tokens[i].text.clone());
            }
            i += 1;
        }
        acquires.entry(f.name.clone()).or_default().extend(acq);
        calls.entry(f.name.clone()).or_default().extend(callees);
    }
    // Fixpoint: fold callee acquisitions into callers.
    loop {
        let mut changed = false;
        let names: Vec<String> = acquires.keys().cloned().collect();
        for name in &names {
            let callees = calls.get(name).cloned().unwrap_or_default();
            for callee in callees {
                let Some(extra) = acquires.get(&callee).cloned() else {
                    continue;
                };
                let own = acquires.get_mut(name).expect("key from names");
                for lock in extra {
                    if !own.contains(&lock) {
                        own.push(lock);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    for set in acquires.values_mut() {
        set.sort();
        set.dedup();
    }
    acquires
}

/// Walks one function body, tracking held guards and flagging
/// out-of-hierarchy nesting and blocking calls under a guard.
fn walk_fn(
    sink: &mut Sink<'_>,
    tokens: &[Tok],
    open: usize,
    close: usize,
    h: &LockHierarchy,
    summaries: &BTreeMap<String, Vec<String>>,
) {
    let rank_of = |name: &str| {
        h.order
            .iter()
            .position(|l| *l == name)
            .unwrap_or(UNDECLARED)
    };
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    // A guard is `let`-bound (lives to end of block) only when the
    // acquisition is the let-statement's direct initialiser chain; once a
    // control keyword intervenes (`let item = match rx.lock() { … }`) the
    // guard is a scrutinee temporary that dies at the statement's `;`.
    let mut stmt_is_let = false;
    let mut stmt_has_control = false;
    let mut i = open;
    while i <= close && i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('{') {
            depth += 1;
            (stmt_is_let, stmt_has_control) = (false, false);
        } else if t.is_punct('}') {
            held.retain(|g| g.depth < depth);
            depth = depth.saturating_sub(1);
            (stmt_is_let, stmt_has_control) = (false, false);
        } else if t.is_punct(';') {
            held.retain(|g| !(g.temp && g.depth == depth));
            (stmt_is_let, stmt_has_control) = (false, false);
        } else if t.is_ident("let") {
            stmt_is_let = true;
        } else if matches!(t.text.as_str(), "match" | "if" | "while" | "loop" | "for")
            && t.kind == TokKind::Ident
        {
            stmt_has_control = true;
        } else if let Some((name, line)) = acquisition_at(tokens, i) {
            let rank = rank_of(&name);
            for g in &held {
                // Out of order when the held lock ranks at or past the new
                // one — and *any* nesting involving an undeclared lock
                // (either side) is out of hierarchy by definition.
                if g.rank >= rank || rank == UNDECLARED {
                    let msg = if rank == UNDECLARED {
                        format!(
                            "`{name}.lock()` while holding `{}` (line {}): `{name}` is not in the declared hierarchy [{}]",
                            g.name,
                            g.line,
                            h.order.join(" → ")
                        )
                    } else {
                        format!(
                            "`{name}` acquired while holding `{}` (line {}): declared order is [{}]",
                            g.name,
                            g.line,
                            h.order.join(" → ")
                        )
                    };
                    sink.emit(rules::LOCK_ORDER, line, i, msg);
                }
            }
            held.push(Held {
                name,
                rank,
                depth,
                temp: !stmt_is_let || stmt_has_control,
                line,
            });
        } else if let Some(what) = blocking_at(sink.cfg, tokens, i) {
            if let Some(g) = held.last() {
                sink.emit(
                    rules::LOCK_BLOCKING,
                    t.line,
                    i,
                    format!(
                        "{what} `{}` while holding lock `{}` (line {}); release the guard first",
                        t.text, g.name, g.line
                    ),
                );
            }
        } else if is_call_at(tokens, i) {
            if let Some(extra) = summaries.get(&tokens[i].text) {
                for lock in extra {
                    let rank = rank_of(lock);
                    for g in &held {
                        if g.rank >= rank && g.name != *lock {
                            sink.emit(
                                rules::LOCK_ORDER,
                                t.line,
                                i,
                                format!(
                                    "call to `{}` (acquires `{lock}`) while holding `{}` (line {}): declared order is [{}]",
                                    t.text,
                                    g.name,
                                    g.line,
                                    h.order.join(" → ")
                                ),
                            );
                        } else if g.name == *lock {
                            sink.emit(
                                rules::LOCK_ORDER,
                                t.line,
                                i,
                                format!(
                                    "call to `{}` re-acquires `{lock}` already held (line {}): self-deadlock",
                                    t.text, g.line
                                ),
                            );
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

/// Is token `i` the method name of a guard acquisition
/// (`recv.lock()` / `.read()` / `.write()` with an empty argument list)?
/// Returns the receiver's resolved field name and the call's line.
fn acquisition_at(tokens: &[Tok], i: usize) -> Option<(String, u32)> {
    let t = tokens.get(i)?;
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return None;
    }
    if !(tokens.get(i + 1)?.is_punct('(') && tokens.get(i + 2)?.is_punct(')')) {
        return None;
    }
    if !tokens.get(i.checked_sub(1)?)?.is_punct('.') {
        return None;
    }
    // Receiver: the identifier before the dot, looking through one `[…]`
    // index (`slots[i].lock()`).
    let mut j = i - 1; // the `.`
    if j == 0 {
        return None;
    }
    j -= 1;
    if tokens[j].is_punct(']') {
        let mut brackets = 1usize;
        while j > 0 && brackets > 0 {
            j -= 1;
            if tokens[j].is_punct(']') {
                brackets += 1;
            } else if tokens[j].is_punct('[') {
                brackets -= 1;
            }
        }
        if j == 0 {
            return None;
        }
        j -= 1;
    }
    (tokens[j].kind == TokKind::Ident).then(|| (tokens[j].text.clone(), t.line))
}

/// Is token `i` a call head (`name(…)` or `.name(…)`) that the committed
/// blocking-call list matches? Returns the call's description.
fn blocking_at(cfg: &Config, tokens: &[Tok], i: usize) -> Option<&'static str> {
    let t = tokens.get(i)?;
    if t.kind != TokKind::Ident || !tokens.get(i + 1)?.is_punct('(') {
        return None;
    }
    let receiver = (i >= 2 && tokens[i - 1].is_punct('.'))
        .then(|| &tokens[i - 2])
        .filter(|r| r.kind == TokKind::Ident)
        .map(|r| r.text.as_str());
    cfg.blocking
        .iter()
        .find(|b| {
            b.name == t.text
                && match b.receiver {
                    None => true,
                    Some(want) => receiver == Some(want),
                }
        })
        .map(|b| b.what)
}

/// Is token `i` the head of a plain or method call (`f(…)` / `x.f(…)`),
/// excluding acquisition/blocking forms handled elsewhere?
fn is_call_at(tokens: &[Tok], i: usize) -> bool {
    let Some(t) = tokens.get(i) else {
        return false;
    };
    // `Type::method(…)` paths are included via their last segment; macro
    // heads (`format!`) never match because `!` precedes their `(`.
    t.kind == TokKind::Ident
        && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        && !matches!(
            t.text.as_str(),
            "if" | "while" | "for" | "match" | "return" | "loop"
        )
}
