//! End-to-end checks over the committed fixture tree — every rule fires on
//! its violation fixture, every accepted twin stays quiet — plus the
//! self-check: the real workspace is clean under the committed
//! configuration and every suppression in the tree carries a reason.

use std::path::Path;

use dhtm_analysis::analyze_workspace;
use dhtm_analysis::config::{rules, Allow, Config, CrateConfig, LockHierarchy, Tier};

/// The configuration the fixture tree is judged under: detcrate is
/// deterministic, lockcrate declares `outer` → `inner`, rawcrate exists to
/// miss `#![forbid(unsafe_code)]`.
fn fixture_config() -> Config {
    let base = Config::workspace();
    Config {
        crates: vec![
            CrateConfig {
                dir: "crates/detcrate",
                tier: Tier::Deterministic,
                require_forbid_unsafe: true,
            },
            CrateConfig {
                dir: "crates/lockcrate",
                tier: Tier::WallClock,
                require_forbid_unsafe: true,
            },
            CrateConfig {
                dir: "crates/rawcrate",
                tier: Tier::WallClock,
                require_forbid_unsafe: true,
            },
        ],
        allows: vec![Allow {
            path_suffix: "detcrate/src/lib.rs",
            item: "Report::ratio",
            rule: rules::FLOAT_IN_DET,
            reason: "fixture allowlist twin",
        }],
        hierarchies: vec![LockHierarchy {
            crate_dir: "crates/lockcrate",
            order: &["outer", "inner"],
        }],
        // The blocking-call catalogue is policy, not fixture-specific:
        // reuse the committed one.
        blocking: base.blocking,
    }
}

#[test]
fn fixture_findings_are_exactly_pinned() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let report = analyze_workspace(&root, &fixture_config()).expect("fixture tree scans");

    let got: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.rule))
        .collect();
    let expected = [
        "crates/detcrate/src/lib.rs:10 float-in-det",
        "crates/detcrate/src/lib.rs:11 float-in-det",
        "crates/detcrate/src/lib.rs:11 float-in-det",
        "crates/detcrate/src/lib.rs:27 unordered-iter",
        "crates/detcrate/src/lib.rs:45 wall-clock",
        "crates/detcrate/src/lib.rs:46 wall-clock",
        "crates/detcrate/src/lib.rs:52 bad-suppression",
        "crates/detcrate/src/lib.rs:53 unordered-iter",
        "crates/detcrate/src/lib.rs:58 bad-suppression",
        "crates/lockcrate/src/lib.rs:26 lock-order",
        "crates/lockcrate/src/lib.rs:34 lock-order",
        "crates/lockcrate/src/lib.rs:41 lock-blocking",
        "crates/lockcrate/src/lib.rs:58 lock-order",
        "crates/rawcrate/src/lib.rs:1 forbid-unsafe",
    ];
    assert_eq!(got, expected, "fixture finding set drifted");

    // The accepted twins: one allowlisted float getter, one reasoned
    // suppression.
    assert_eq!(report.allowed, 3, "Report::ratio has three f64 tokens");
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| format!("{}:{} {}", s.file, s.line, s.rule))
        .collect();
    assert_eq!(suppressed, ["crates/detcrate/src/lib.rs:41 unordered-iter"]);
}

#[test]
fn workspace_is_clean_under_committed_config() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = analyze_workspace(&root, &Config::workspace()).expect("workspace scans");

    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{} {} {}", f.file, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "dhtm_lint must be clean on the workspace:\n{}",
        findings.join("\n")
    );

    // Every inline suppression in the tree carries a reason (reason-less
    // ones surface as bad-suppression findings and fail above), and the
    // suppression set itself is pinned: a new suppression is a reviewable
    // policy change, not drive-by noise.
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| format!("{} {}", s.file, s.rule))
        .collect();
    let expected = [
        "crates/service/src/server.rs lock-blocking",
        "crates/service/src/server.rs lock-blocking",
        "crates/service/src/server.rs lock-blocking",
        "crates/service/src/server.rs lock-blocking",
        "crates/sim/src/locks.rs unordered-iter",
        "crates/workloads/src/micro.rs float-in-det",
    ];
    assert_eq!(suppressed, expected, "suppression set drifted");
    assert!(
        report.suppressed.iter().all(|s| !s.reason.is_empty()),
        "every suppression must carry a reason"
    );
}
