//! Profiling a cell: one fully observed run that records the commit
//! timeline against the durable-mutation clock.
//!
//! Every crash experiment runs its cell (deterministically) twice: the
//! *profile* run streams the [`dhtm_sim::driver::SimulationSession`]'s
//! events through a [`ProfileRecorder`] — an ordinary
//! [`dhtm_sim::observer::SimObserver`] — recording for every commit the
//! span of the durable-mutation clock its commit step occupied and the
//! word writes it made durable; the *capture* run (see [`crate::matrix`])
//! replays the identical execution with the same crash points armed
//! through the session. Because both runs are seeded identically, the
//! profile's timeline indexes the capture run's snapshots exactly. Engines
//! are built through the engine registry via the scenario exec layer
//! ([`CrashCell::resolved`]), the same construction path the experiment
//! harness uses.

use std::collections::BTreeSet;

use dhtm_nvm::domain::PersistentDomain;
use dhtm_sim::driver::{SimulationResult, Simulator};
use dhtm_sim::observer::{SimObserver, StepContext};
use dhtm_sim::workload::{Transaction, TxOp};
use dhtm_types::addr::Address;
use dhtm_types::policy::DesignKind;

use crate::matrix::CrashCell;

/// One commit observed by the profile run, positioned on the
/// durable-mutation clock.
#[derive(Debug, Clone)]
pub struct CommitEvent {
    /// Commit order (0-based).
    pub index: usize,
    /// The simulated cycle at which the commit step was processed (the
    /// event's pop time) — the basis for cycle-denominated crash points.
    pub step_time: u64,
    /// Mutation-clock value when the commit step started.
    pub step_start_mutations: u64,
    /// Mutation-clock value when the commit step finished.
    pub step_end_mutations: u64,
    /// The word writes the transaction made, in program order.
    pub writes: Vec<(Address, u64)>,
}

/// The observed timeline of one cell's run.
#[derive(Debug)]
pub struct RunProfile {
    /// The design that ran.
    pub design: DesignKind,
    /// The durable image right after workload setup (the state every crash
    /// image grows from).
    pub base: PersistentDomain,
    /// Every commit in commit order.
    pub commits: Vec<CommitEvent>,
    /// Every word address written by any transaction the driver ever
    /// started — the address universe the oracles check.
    pub tracked: BTreeSet<Address>,
    /// Final value of the durable-mutation clock.
    pub total_mutations: u64,
    /// The completed run's result (same numbers an unprofiled run yields).
    pub result: SimulationResult,
}

impl RunProfile {
    /// Number of commits whose commit step finished at or before crash
    /// point `point` — the committed prefix `k` the recovered state must
    /// reflect.
    pub fn committed_before(&self, point: u64) -> usize {
        self.commits
            .iter()
            .take_while(|c| c.step_end_mutations <= point)
            .count()
    }

    /// The commit whose commit step *contains* `point`, if any: the crash
    /// interrupted that commit mid-flight, so recovery may legitimately
    /// resolve it either way (the log decides).
    pub fn ambiguous_commit(&self, point: u64) -> Option<&CommitEvent> {
        self.commits
            .iter()
            .find(|c| c.step_start_mutations < point && point < c.step_end_mutations)
    }
}

/// The word writes of a transaction, in program order.
pub fn word_writes(tx: &Transaction) -> Vec<(Address, u64)> {
    tx.ops
        .iter()
        .filter_map(|op| match *op {
            TxOp::Write(addr, value) => Some((addr, value)),
            _ => None,
        })
        .collect()
}

/// The profile plus the per-step spans `(pop_time, start_mutations,
/// end_mutations)` of every step that advanced the mutation clock.
#[derive(Debug)]
pub struct ProfiledRun {
    /// The commit/tracking timeline.
    pub profile: RunProfile,
    /// `(pop_time, start, end)` for every mutation-advancing step.
    pub step_spans: Vec<(u64, u64, u64)>,
}

impl ProfiledRun {
    /// Translates a cycle-denominated crash point ("power fails at cycle
    /// `c`") to the mutation clock: the durable state at cycle `c` is the
    /// state after the last mutating step processed before `c`.
    pub fn cycle_to_mutation_point(&self, cycle: u64) -> u64 {
        self.step_spans
            .iter()
            .take_while(|&&(t, _, _)| t < cycle)
            .last()
            .map(|&(_, _, end)| end)
            .unwrap_or(0)
    }
}

/// The crash subsystem's streaming profiler: a [`SimObserver`] that
/// records the commit timeline (mutation-clock spans + word writes), the
/// tracked address universe and every mutation-advancing step span.
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    commits: Vec<CommitEvent>,
    tracked: BTreeSet<Address>,
    step_spans: Vec<(u64, u64, u64)>,
}

impl SimObserver for ProfileRecorder {
    fn on_begin(&mut self, _ctx: &StepContext<'_>, tx: &Transaction) {
        for (addr, _) in word_writes(tx) {
            self.tracked.insert(addr);
        }
    }

    fn on_durable_tick(&mut self, ctx: &StepContext<'_>) {
        self.step_spans
            .push((ctx.now, ctx.mutations_before, ctx.mutations_after));
    }

    fn on_commit(&mut self, ctx: &StepContext<'_>, tx: &Transaction) {
        self.commits.push(CommitEvent {
            index: self.commits.len(),
            step_time: ctx.now,
            step_start_mutations: ctx.mutations_before,
            step_end_mutations: ctx.mutations_after,
            writes: word_writes(tx),
        });
    }
}

/// Runs `cell` once with full observation, producing its timeline.
pub fn profile_cell(cell: &CrashCell) -> ProfiledRun {
    let resolved = cell.resolved();
    let (mut machine, mut engine, mut workload, limits) = resolved.components();
    let sim = Simulator::new();
    let mut session = sim.start(&mut machine, &mut engine, workload.as_mut(), &limits);

    let base = session.domain().crash_snapshot();
    let mut recorder = ProfileRecorder::default();
    session.run_to_completion_with(&mut recorder);

    let total_mutations = session.domain().mutation_count();
    let result = session.into_result();
    ProfiledRun {
        profile: RunProfile {
            design: cell.design,
            base,
            commits: recorder.commits,
            tracked: recorder.tracked,
            total_mutations,
            result,
        },
        step_spans: recorder.step_spans,
    }
}

/// Re-runs `cell` identically with the crash points armed through the
/// session, returning the captured crash images as `(point, image)` pairs
/// in ascending order.
pub fn capture_cell(cell: &CrashCell, points: &[u64]) -> Vec<(u64, PersistentDomain)> {
    let resolved = cell.resolved();
    let (mut machine, mut engine, mut workload, limits) = resolved.components();
    let sim = Simulator::new();
    let mut session = sim.start(&mut machine, &mut engine, workload.as_mut(), &limits);
    session.arm_crash_points(points);
    session.run_to_completion();
    drop(session);
    machine.mem.domain_mut().take_crash_captures()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::config::SystemConfig;

    fn cell(design: DesignKind) -> CrashCell {
        CrashCell {
            design,
            workload: "hash".to_string(),
            config: SystemConfig::small_test(),
            config_name: "small".to_string(),
            commits: 8,
            seed: 0x15CA_2018,
        }
    }

    #[test]
    fn profile_records_every_commit_with_monotone_spans() {
        let run = profile_cell(&cell(DesignKind::Dhtm));
        let p = &run.profile;
        assert_eq!(p.commits.len(), 8);
        assert!(p.total_mutations > 0);
        for pair in p.commits.windows(2) {
            assert!(pair[0].step_end_mutations <= pair[1].step_start_mutations);
        }
        for c in &p.commits {
            assert!(c.step_start_mutations < c.step_end_mutations);
            assert!(!c.writes.is_empty(), "hash transactions write");
        }
        assert!(!p.tracked.is_empty());
        assert_eq!(p.result.stats.committed, 8);
    }

    #[test]
    fn profile_is_deterministic() {
        let a = profile_cell(&cell(DesignKind::Dhtm));
        let b = profile_cell(&cell(DesignKind::Dhtm));
        assert_eq!(a.profile.total_mutations, b.profile.total_mutations);
        assert_eq!(a.profile.commits.len(), b.profile.commits.len());
        assert_eq!(a.step_spans, b.step_spans);
    }

    #[test]
    fn captures_align_with_the_profiled_timeline() {
        let run = profile_cell(&cell(DesignKind::Dhtm));
        let p = &run.profile;
        // Capture right before the 3rd commit's step and right after it.
        let c = &p.commits[2];
        let points = [c.step_start_mutations, c.step_end_mutations];
        let captures = capture_cell(&cell(DesignKind::Dhtm), &points);
        assert_eq!(captures.len(), 2);
        assert_eq!(captures[0].1.mutation_count(), c.step_start_mutations);
        assert_eq!(captures[1].1.mutation_count(), c.step_end_mutations);
        assert_eq!(p.committed_before(c.step_start_mutations), 2);
        assert_eq!(p.committed_before(c.step_end_mutations), 3);
    }

    #[test]
    fn committed_before_and_ambiguity() {
        let run = profile_cell(&cell(DesignKind::SoftwareOnly));
        let p = &run.profile;
        let c = &p.commits[0];
        let mid = (c.step_start_mutations + c.step_end_mutations) / 2;
        if mid > c.step_start_mutations {
            assert!(p.ambiguous_commit(mid).is_some());
        }
        assert!(p.ambiguous_commit(c.step_end_mutations).is_none());
        assert_eq!(p.committed_before(0), 0);
        assert_eq!(p.committed_before(p.total_mutations), p.commits.len());
    }
}
