//! Fault injection into crash images: the negative controls that prove the
//! oracles can actually detect broken recovery.
//!
//! A validation harness that never fails is indistinguishable from one that
//! checks nothing. These faults deliberately corrupt a captured crash image
//! in ways a buggy logging implementation (or physical bit-rot) could, and
//! the acceptance tests assert that the recovery auditor *rejects* the
//! corrupted image.

use dhtm_nvm::domain::PersistentDomain;
use dhtm_nvm::record::RecordKind;
use dhtm_types::ids::{ThreadId, TxId};

/// A deliberate corruption of the durable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip bits in the payload of a redo record belonging to a
    /// committed-but-incomplete transaction (models a torn/corrupted log
    /// write): replay then installs a wrong after-image.
    FlipRedoPayload,
    /// Drop the commit marker of a committed-but-incomplete transaction
    /// (models a commit record that never became durable): replay then
    /// silently skips the transaction and its updates are lost.
    DropCommitMarker,
}

/// Transactions in `thread`'s log that recovery would replay: committed,
/// not complete, with at least one redo record.
fn replayable_txs(domain: &PersistentDomain, thread: ThreadId) -> Vec<TxId> {
    let log = domain.log(thread);
    log.transactions()
        .into_iter()
        .filter(|&tx| {
            log.is_committed(tx)
                && !log.is_complete(tx)
                && log
                    .records_for(tx)
                    .iter()
                    .any(|r| matches!(r.kind, RecordKind::Redo { .. }))
        })
        .collect()
}

/// Whether `domain` contains a transaction the given fault can target.
pub fn has_target(domain: &PersistentDomain) -> bool {
    (0..domain.threads()).any(|t| !replayable_txs(domain, ThreadId::new(t)).is_empty())
}

/// Injects `fault` into `domain`, returning `true` if a target was found
/// and corrupted. The domain is mutated in place.
pub fn inject(domain: &mut PersistentDomain, fault: Fault) -> bool {
    for t in 0..domain.threads() {
        let thread = ThreadId::new(t);
        let Some(&tx) = replayable_txs(domain, thread).first() else {
            continue;
        };
        match fault {
            Fault::FlipRedoPayload => {
                // Flip the *last* redo record of the transaction: replay
                // applies records in log order, so corrupting an early
                // record that a later re-log of the same line supersedes
                // would be masked.
                let target = domain
                    .log(thread)
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.tx == tx && matches!(r.kind, RecordKind::Redo { .. }))
                    .map(|(i, _)| i)
                    .last();
                if let Some(idx) = target {
                    for (i, rec) in domain.log_mut(thread).records_mut().enumerate() {
                        if i == idx {
                            if let RecordKind::Redo { line, mut data } = rec.kind {
                                data[0] ^= 0xDEAD_BEEF_0BAD_F00D;
                                rec.kind = RecordKind::Redo { line, data };
                                return true;
                            }
                        }
                    }
                }
            }
            Fault::DropCommitMarker => {
                let dropped = domain
                    .log_mut(thread)
                    .retain_records(|r| !(r.tx == tx && matches!(r.kind, RecordKind::Commit)));
                return dropped > 0;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::record::LogRecord;
    use dhtm_types::addr::LineAddr;

    fn domain_with_replayable_tx() -> PersistentDomain {
        let mut d = PersistentDomain::new(1, 64, 16);
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, LineAddr::new(5), [7; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
        d
    }

    #[test]
    fn flip_redo_payload_changes_replayed_value() {
        let mut d = domain_with_replayable_tx();
        assert!(has_target(&d));
        assert!(inject(&mut d, Fault::FlipRedoPayload));
        let mut recovered = d.crash_snapshot();
        dhtm_nvm::recovery::RecoveryManager::new()
            .recover(&mut recovered)
            .unwrap();
        assert_ne!(recovered.read_line(LineAddr::new(5)), [7; 8]);
    }

    #[test]
    fn drop_commit_marker_loses_the_transaction() {
        let mut d = domain_with_replayable_tx();
        assert!(inject(&mut d, Fault::DropCommitMarker));
        let mut recovered = d.crash_snapshot();
        let report = dhtm_nvm::recovery::RecoveryManager::new()
            .recover(&mut recovered)
            .unwrap();
        assert_eq!(report.replayed_transactions, 0);
        assert_eq!(recovered.read_line(LineAddr::new(5)), [0; 8]);
    }

    #[test]
    fn injection_without_target_reports_false() {
        let mut d = PersistentDomain::new(1, 16, 16);
        assert!(!has_target(&d));
        assert!(!inject(&mut d, Fault::FlipRedoPayload));
        assert!(!inject(&mut d, Fault::DropCommitMarker));
    }

    #[test]
    fn complete_transactions_are_not_targets() {
        let mut d = domain_with_replayable_tx();
        d.log_mut(ThreadId::new(0))
            .append(LogRecord::complete(TxId::new(1)))
            .unwrap();
        assert!(!has_target(&d));
    }
}
