#![forbid(unsafe_code)]
//! # dhtm-crash
//!
//! The crash-injection and recovery-validation subsystem: the end-to-end
//! proof of the paper's central claim that redo logs streaming to NVM leave
//! memory recoverable to a transaction-atomic state after a crash at *any*
//! point.
//!
//! The subsystem turns every design × workload cell into a crash-recovery
//! experiment:
//!
//! 1. **Crash-point scheduling** ([`plan`]) — points are denominated on the
//!    persistent domain's *durable-mutation clock* (every log append,
//!    overflow append, reclaim and in-place line write ticks it), which
//!    gives sub-step resolution: crashes land *inside* commit sequences
//!    (between the commit record and the data write-backs), mid-log-drain
//!    and mid-overflow — exactly the windows recovery exists for.
//!    Stratified samples cover the rest of the run.
//! 2. **Profiling** ([`probe`]) — a fully observed run over the resumable
//!    [`dhtm_sim::driver::SimulationSession`] records each commit's span on
//!    the mutation clock and its word writes.
//! 3. **Persistence snapshotting** ([`probe::capture_cell`]) — an identical
//!    re-run with the domain armed captures the exact durable image at each
//!    crash point; volatile state (caches, log buffers, registers) is
//!    implicitly discarded because it is not part of the domain.
//! 4. **Recovery auditing** ([`oracle`]) — `RecoveryManager::recover` runs
//!    on each image and the result is compared word-exactly against the
//!    committed-prefix expected image (durability + atomicity + mid-commit
//!    resolution + sentinel ordering).
//! 5. **Fault-injected negative controls** ([`fault`],
//!    [`matrix::negative_control`]) — deliberately corrupted logs must be
//!    *rejected*, proving the oracles have teeth.
//!
//! [`matrix::CrashMatrix`] sweeps all of it across designs and workloads on
//! a worker pool; `dhtm_harness` exposes it as the `recovery` experiment
//! (`dhtm_experiments --experiment recovery`, with `--crash-points` /
//! `--crash-at`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod matrix;
pub mod oracle;
pub mod plan;
pub mod probe;
pub mod report;

pub use fault::Fault;
pub use matrix::{negative_control, CrashCell, CrashCellReport, CrashMatrix, NegativeControl};
pub use oracle::{OracleOutcome, RecoveryAuditor};
pub use plan::{CrashPoint, PointKind};
pub use probe::{capture_cell, profile_cell, ProfileRecorder, ProfiledRun, RunProfile};
