//! The recovery auditor: runs the recovery manager on a crash image and
//! checks the atomicity/durability oracles against the profiled timeline.
//!
//! # Oracle definitions
//!
//! Let `k` be the number of transactions whose commit step finished at or
//! before the crash point. The *expected image* `E_k` is the post-setup
//! durable image overlaid with the writes of the first `k` committed
//! transactions in commit order. For a durable design the recovered state
//! must match an expected image **exactly** over every tracked word (every
//! word any transaction ever wrote):
//!
//! * **durability** — every transaction the workload observed as committed
//!   before the crash is fully visible (its words hold `E_k` values);
//! * **atomicity** — no partial write-set survives: an in-flight or aborted
//!   transaction's words also hold `E_k` values (undo designs must have
//!   rolled them back, redo designs must never have written them in place);
//! * **mid-commit resolution** — when the crash lands *inside* commit
//!   `k+1`'s commit step the durable log decides: the recovered state must
//!   equal `E_k` or `E_{k+1}` in full, never a mixture;
//! * **sentinel ordering** — conflicting replays must resolve to the
//!   commit-order value (subsumed by the exact-image comparison).
//!
//! The non-persistent design (NP) makes no durability claim; its oracle is
//! only that recovery finds nothing to do (no logs ⇒ no replay/rollback).

use std::collections::BTreeMap;

use dhtm_nvm::domain::PersistentDomain;
use dhtm_nvm::recovery::{RecoveryManager, RecoveryReport};
use dhtm_types::addr::Address;
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::RecoveryCounters;

use crate::probe::RunProfile;

/// Cap on recorded violation strings per audit (the counters still reflect
/// the full tally).
const MAX_VIOLATIONS: usize = 8;

/// The verdict for one crash point.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// The crash point on the mutation clock.
    pub point: u64,
    /// Commits fully durable before the crash (`k`).
    pub committed_before: u64,
    /// Whether the crash landed inside a commit step (recovery may resolve
    /// to `k` or `k+1`).
    pub ambiguous: bool,
    /// Whether the crash-interrupted commit was recovered as committed
    /// (only meaningful when `ambiguous`).
    pub resolved_forward: bool,
    /// Whether every oracle held.
    pub passed: bool,
    /// Human-readable descriptions of the first few violations.
    pub violations: Vec<String>,
    /// The recovery manager's own report for the crash image.
    pub report: RecoveryReport,
}

impl OracleOutcome {
    /// Folds this outcome into the aggregate counters used by `RunStats`.
    pub fn accumulate(&self, counters: &mut RecoveryCounters) {
        counters.crash_points += 1;
        if !self.passed {
            counters.oracle_failures += 1;
        }
        counters.replayed_transactions += self.report.replayed_transactions as u64;
        counters.rolled_back_transactions += self.report.rolled_back_transactions as u64;
        counters.skipped_complete += self.report.skipped_complete as u64;
        counters.skipped_uncommitted += self.report.skipped_uncommitted as u64;
        counters.lines_written += self.report.lines_written as u64;
        counters.words_written += self.report.words_written as u64;
        counters.redo_lines_applied += self.report.redo_lines_applied as u64;
        counters.undo_lines_applied += self.report.undo_lines_applied as u64;
        counters.sentinel_edges += self.report.sentinel_edges as u64;
    }
}

/// Incremental expected-image state for auditing a cell's crash points in
/// ascending order: commits are folded in as the points move past them, so
/// auditing `P` points over `C` commits costs `O(P + C)` image updates
/// rather than `O(P × C)`.
#[derive(Debug)]
pub struct RecoveryAuditor<'a> {
    profile: &'a RunProfile,
    design: DesignKind,
    /// Expected value per tracked word after the first `applied` commits.
    image: BTreeMap<Address, u64>,
    applied: usize,
    last_point: Option<u64>,
}

impl<'a> RecoveryAuditor<'a> {
    /// Creates an auditor for one cell's profile.
    ///
    /// The expected image covers *every word of every line* any transaction
    /// wrote — not just the written words — so collateral damage (a
    /// corrupted log payload clobbering a neighbouring word during replay,
    /// a partial-line write-back) is caught as well.
    pub fn new(profile: &'a RunProfile, design: DesignKind) -> Self {
        let mut image = BTreeMap::new();
        for addr in &profile.tracked {
            let line = addr.line();
            for w in 0..dhtm_types::addr::WORDS_PER_LINE {
                let word = line.word_address(dhtm_types::addr::WordIndex::new(w));
                image
                    .entry(word)
                    .or_insert_with(|| profile.base.read_word(word));
            }
        }
        RecoveryAuditor {
            profile,
            design,
            image,
            applied: 0,
            last_point: None,
        }
    }

    fn apply_commit(image: &mut BTreeMap<Address, u64>, writes: &[(Address, u64)]) {
        for &(addr, value) in writes {
            image.insert(addr, value);
        }
    }

    fn mismatches(
        &self,
        recovered: &PersistentDomain,
        overlay: Option<&[(Address, u64)]>,
    ) -> Vec<String> {
        let extra: BTreeMap<Address, u64> = overlay
            .map(|w| w.iter().copied().collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        for (&addr, &expected) in &self.image {
            let want = extra.get(&addr).copied().unwrap_or(expected);
            let got = recovered.read_word(addr);
            if got != want {
                if out.len() < MAX_VIOLATIONS {
                    out.push(format!(
                        "word {:#x}: recovered {got:#x}, expected {want:#x}",
                        addr.raw()
                    ));
                } else {
                    out.push("... further mismatches elided".to_string());
                    break;
                }
            }
        }
        out
    }

    /// Audits one crash image. Points must be presented in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `point` is below a previously audited point.
    pub fn audit(&mut self, point: u64, snapshot: &PersistentDomain) -> OracleOutcome {
        if let Some(prev) = self.last_point {
            assert!(point >= prev, "audit points must be ascending");
        }
        self.last_point = Some(point);

        // Fold in every commit that became fully durable before this point.
        let k = self.profile.committed_before(point);
        while self.applied < k {
            let writes = &self.profile.commits[self.applied].writes;
            Self::apply_commit(&mut self.image, writes);
            self.applied += 1;
        }

        let mut recovered = snapshot.crash_snapshot();
        let recovery = RecoveryManager::new().recover(&mut recovered);
        let (report, mut violations) = match recovery {
            Ok(report) => (report, Vec::new()),
            Err(e) => (
                RecoveryReport::default(),
                vec![format!("recovery failed: {e}")],
            ),
        };

        let ambiguous_commit = self.profile.ambiguous_commit(point);
        let mut resolved_forward = false;

        if violations.is_empty() {
            if self.design.is_durable() {
                let base_mismatches = self.mismatches(&recovered, None);
                if base_mismatches.is_empty() {
                    // Consistent with E_k.
                } else if let Some(c) = ambiguous_commit {
                    // The crash interrupted commit k+1: the recovered state
                    // may instead equal E_{k+1} in full.
                    let forward = self.mismatches(&recovered, Some(&c.writes));
                    if forward.is_empty() {
                        resolved_forward = true;
                    } else {
                        violations = base_mismatches;
                        violations.extend(forward.into_iter().map(|m| format!("(fwd) {m}")));
                        violations.truncate(MAX_VIOLATIONS);
                    }
                } else {
                    violations = base_mismatches;
                }
            } else {
                // NP: volatile HTM, no durable logs — recovery must find
                // nothing to replay or roll back.
                if report.replayed_transactions != 0 || report.rolled_back_transactions != 0 {
                    violations.push(format!(
                        "non-persistent design recovered state: {} replayed, {} rolled back",
                        report.replayed_transactions, report.rolled_back_transactions
                    ));
                }
            }
        }

        OracleOutcome {
            point,
            committed_before: k as u64,
            ambiguous: ambiguous_commit.is_some(),
            resolved_forward,
            passed: violations.is_empty(),
            violations,
            report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CrashCell;
    use crate::plan::plan_points;
    use crate::probe::{capture_cell, profile_cell};
    use dhtm_types::config::SystemConfig;

    fn cell(design: DesignKind, workload: &str) -> CrashCell {
        CrashCell {
            design,
            workload: workload.to_string(),
            config: SystemConfig::small_test(),
            config_name: "small".to_string(),
            commits: 6,
            seed: 0x15CA_2018,
        }
    }

    fn audit_cell(design: DesignKind, workload: &str) -> Vec<OracleOutcome> {
        let c = cell(design, workload);
        let run = profile_cell(&c);
        let plan = plan_points(&run, 6, 6, &[], &[]);
        let points: Vec<u64> = plan.iter().map(|p| p.point).collect();
        let captures = capture_cell(&c, &points);
        let mut auditor = RecoveryAuditor::new(&run.profile, design);
        captures
            .iter()
            .map(|(point, snap)| auditor.audit(*point, snap))
            .collect()
    }

    #[test]
    fn dhtm_hash_passes_all_oracles() {
        let outcomes = audit_cell(DesignKind::Dhtm, "hash");
        for o in &outcomes {
            assert!(o.passed, "point {}: {:?}", o.point, o.violations);
        }
    }

    #[test]
    fn undo_design_rolls_back_in_flight_transactions() {
        let outcomes = audit_cell(DesignKind::LogTmAtom, "hash");
        for o in &outcomes {
            assert!(o.passed, "point {}: {:?}", o.point, o.violations);
        }
    }

    #[test]
    fn np_oracle_is_vacuous_but_runs() {
        let outcomes = audit_cell(DesignKind::NonPersistent, "hash");
        for o in &outcomes {
            assert!(o.passed, "point {}: {:?}", o.point, o.violations);
            assert_eq!(o.report.replayed_transactions, 0);
        }
    }

    #[test]
    fn mid_commit_points_resolve_consistently() {
        let outcomes = audit_cell(DesignKind::Dhtm, "queue");
        assert!(
            outcomes.iter().any(|o| o.ambiguous),
            "plan should include mid-commit points"
        );
        for o in &outcomes {
            assert!(o.passed, "point {}: {:?}", o.point, o.violations);
        }
    }

    #[test]
    fn tampered_image_fails_the_oracles() {
        let c = cell(DesignKind::Dhtm, "hash");
        let run = profile_cell(&c);
        // Crash at the very end: everything committed.
        let point = run.profile.total_mutations;
        let captures = capture_cell(&c, &[point]);
        let (p, snap) = &captures[0];
        let mut tampered = snap.crash_snapshot();
        // Corrupt one committed word in place.
        let &addr = run.profile.tracked.iter().next().unwrap();
        let v = tampered.read_word(addr);
        tampered.memory_mut().write_word(addr, v ^ 0xFFFF);
        let mut auditor = RecoveryAuditor::new(&run.profile, DesignKind::Dhtm);
        let outcome = auditor.audit(*p, &tampered);
        assert!(!outcome.passed);
        assert!(outcome.violations[0].contains("recovered"));
    }
}
