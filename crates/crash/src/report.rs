//! Rendering crash-matrix verdicts: a self-contained JSON document for CI
//! artifacts plus human-readable summary lines.

use std::fmt::Write as _;

use crate::matrix::{CrashCellReport, NegativeControl};

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises every per-point verdict as one JSON array (the CI artifact).
pub fn verdicts_to_json(reports: &[CrashCellReport]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for report in reports {
        for v in &report.verdicts {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let o = &v.outcome;
            let _ = write!(
                out,
                "  {{\"design\": \"{}\", \"workload\": \"{}\", \"config\": \"{}\", \"seed\": {}, \
                 \"total_mutations\": {}, \"point\": {}, \"kind\": \"{}\", \
                 \"committed_before\": {}, \"ambiguous\": {}, \"resolved_forward\": {}, \
                 \"passed\": {}, \"replayed\": {}, \"rolled_back\": {}, \
                 \"redo_lines\": {}, \"undo_lines\": {}, \"sentinel_edges\": {}, \
                 \"violations\": [{}]}}",
                json_escape(report.cell.design.label()),
                json_escape(&report.cell.workload),
                json_escape(&report.cell.config_name),
                report.cell.seed,
                report.total_mutations,
                o.point,
                v.kind,
                o.committed_before,
                o.ambiguous,
                o.resolved_forward,
                o.passed,
                o.report.replayed_transactions,
                o.report.rolled_back_transactions,
                o.report.redo_lines_applied,
                o.report.undo_lines_applied,
                o.report.sentinel_edges,
                o.violations
                    .iter()
                    .map(|m| format!("\"{}\"", json_escape(m)))
                    .collect::<Vec<_>>()
                    .join(", "),
            );
        }
    }
    out.push_str("\n]\n");
    out
}

/// One human-readable summary line per cell.
pub fn summary_lines(reports: &[CrashCellReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            let c = r.counters();
            format!(
                "| {:<10} | {:<7} | {:>3} points | {:>2} replayed | {:>2} rolled back | {} |",
                r.cell.design.label(),
                r.cell.workload,
                c.crash_points,
                c.replayed_transactions,
                c.rolled_back_transactions,
                if r.all_passed() { "PASS" } else { "FAIL" },
            )
        })
        .collect()
}

/// Summary line for the negative control.
pub fn control_line(control: Option<&NegativeControl>) -> String {
    match control {
        Some(c) => format!(
            "negative control @m{}: clean {}, corrupted-payload {}, dropped-marker {}",
            c.point,
            if c.clean_passed { "PASS" } else { "FAIL" },
            if c.flip_detected {
                "DETECTED"
            } else {
                "MISSED"
            },
            if c.drop_detected {
                "DETECTED"
            } else {
                "MISSED"
            },
        ),
        None => "negative control: no replayable window found".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CrashMatrix;
    use dhtm_types::config::SystemConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn json_and_summary_render_every_cell() {
        let mut m = CrashMatrix::new(&[DesignKind::Dhtm], ["hash"], SystemConfig::small_test());
        m.commits = 4;
        m.stratified = 3;
        m.adversarial = 2;
        let reports = m.run(1);
        let json = verdicts_to_json(&reports);
        assert!(json.contains("\"design\": \"DHTM\""));
        assert!(json.contains("\"passed\": true"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        let lines = summary_lines(&reports);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("PASS"));
        assert!(control_line(None).contains("no replayable window"));
    }
}
