//! The crash-point scheduler: which points on the durable-mutation clock to
//! crash at.
//!
//! Two families of points are combined:
//!
//! * **stratified** — evenly spaced samples across the whole run, so every
//!   phase of execution gets coverage;
//! * **adversarial** — points aimed at the windows where recovery actually
//!   has work to do: inside commit steps (between the commit record and the
//!   data write-backs — mid-commit and mid-log-drain) and inside the other
//!   multi-mutation steps (mid-overflow, mid-abort-rollback).

use crate::probe::ProfiledRun;

/// How a crash point was chosen (carried through to the verdicts so reports
/// can distinguish coverage kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// Evenly spaced across the run.
    Stratified,
    /// Aimed inside a commit step or another multi-mutation window.
    Adversarial,
    /// Requested explicitly (CLI `--crash-at` or a test), already
    /// denominated in mutations.
    Explicit,
    /// Requested explicitly as a cycle and translated via the profile.
    Cycle(u64),
}

impl std::fmt::Display for PointKind {
    /// The report label of the kind ("stratified", "adversarial",
    /// "explicit", "cycle@N") — the single source every renderer uses.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointKind::Stratified => f.write_str("stratified"),
            PointKind::Adversarial => f.write_str("adversarial"),
            PointKind::Explicit => f.write_str("explicit"),
            PointKind::Cycle(c) => write!(f, "cycle@{c}"),
        }
    }
}

/// A planned crash point on the mutation clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Mutation-clock value: the crash preserves exactly this many durable
    /// mutations.
    pub point: u64,
    /// How the point was chosen.
    pub kind: PointKind,
}

/// Evenly spaced points over `[0, total]`, endpoints included when they fit.
pub fn stratified_points(total: u64, n: usize) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 || total == 0 {
        return vec![total / 2];
    }
    (0..n)
        .map(|i| (total as u128 * i as u128 / (n as u128 - 1)) as u64)
        .collect()
}

/// Adversarial points from the profiled timeline: for up to `budget` commit
/// steps (spread across the run) the first intra-step point, the midpoint
/// and the last intra-step point — bracketing the commit record — plus
/// midpoints of the largest non-commit mutating steps (evictions, overflow
/// handling, abort rollbacks) with any remaining budget.
pub fn adversarial_points(run: &ProfiledRun, budget: usize) -> Vec<u64> {
    let mut points = Vec::new();
    if budget == 0 {
        return points;
    }
    // Commit steps that actually mutated the domain (NP's commits do not —
    // nothing durable happens, so there is no window to aim at).
    let commits: Vec<&crate::probe::CommitEvent> = run
        .profile
        .commits
        .iter()
        .filter(|c| c.step_end_mutations > c.step_start_mutations)
        .collect();
    if !commits.is_empty() {
        // Spread the commit-step picks across the run rather than
        // clustering on the first commits.
        let picks = budget.div_ceil(3).min(commits.len());
        for i in 0..picks {
            let idx = i * commits.len() / picks;
            let c = commits[idx];
            let (s, e) = (c.step_start_mutations, c.step_end_mutations);
            points.push(s + 1);
            points.push(s + (e - s) / 2);
            points.push((e - 1).max(s + 1));
        }
    }
    // Largest non-commit mutating steps (by span width).
    let commit_spans: Vec<(u64, u64)> = commits
        .iter()
        .map(|c| (c.step_start_mutations, c.step_end_mutations))
        .collect();
    let mut other: Vec<(u64, u64)> = run
        .step_spans
        .iter()
        .map(|&(_, s, e)| (s, e))
        .filter(|&(s, e)| e - s >= 2 && !commit_spans.contains(&(s, e)))
        .collect();
    other.sort_by_key(|&(s, e)| (std::cmp::Reverse(e - s), s));
    for &(s, e) in other.iter().take(budget.saturating_sub(points.len())) {
        points.push(s + (e - s) / 2);
    }
    points.truncate(budget.max(3));
    points
}

/// Builds the full plan for one profiled cell: stratified + adversarial +
/// explicit points, deduplicated and sorted ascending (as the capture run
/// requires).
pub fn plan_points(
    run: &ProfiledRun,
    stratified: usize,
    adversarial: usize,
    explicit: &[u64],
    at_cycles: &[u64],
) -> Vec<CrashPoint> {
    let total = run.profile.total_mutations;
    let mut points: Vec<CrashPoint> = Vec::new();
    for p in stratified_points(total, stratified) {
        points.push(CrashPoint {
            point: p,
            kind: PointKind::Stratified,
        });
    }
    for p in adversarial_points(run, adversarial) {
        points.push(CrashPoint {
            point: p.min(total),
            kind: PointKind::Adversarial,
        });
    }
    for &p in explicit {
        points.push(CrashPoint {
            point: p.min(total),
            kind: PointKind::Explicit,
        });
    }
    for &c in at_cycles {
        points.push(CrashPoint {
            point: run.cycle_to_mutation_point(c),
            kind: PointKind::Cycle(c),
        });
    }
    points.sort_by_key(|p| p.point);
    points.dedup_by_key(|p| p.point);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CrashCell;
    use crate::probe::profile_cell;
    use dhtm_types::config::SystemConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn stratified_spacing_covers_both_endpoints() {
        let pts = stratified_points(100, 5);
        assert_eq!(pts, vec![0, 25, 50, 75, 100]);
        assert_eq!(stratified_points(100, 1), vec![50]);
        assert!(stratified_points(100, 0).is_empty());
        assert_eq!(stratified_points(0, 3), vec![0]);
    }

    #[test]
    fn plan_is_sorted_deduped_and_mixes_kinds() {
        let cell = CrashCell {
            design: DesignKind::Dhtm,
            workload: "hash".to_string(),
            config: SystemConfig::small_test(),
            config_name: "small".to_string(),
            commits: 6,
            seed: 1,
        };
        let run = profile_cell(&cell);
        let plan = plan_points(&run, 8, 6, &[3], &[]);
        assert!(plan.len() >= 8);
        for pair in plan.windows(2) {
            assert!(pair[0].point < pair[1].point);
        }
        assert!(plan.iter().any(|p| p.kind == PointKind::Adversarial));
        assert!(plan.iter().any(|p| p.kind == PointKind::Stratified));
        // Adversarial points land strictly inside commit steps.
        let inside = plan
            .iter()
            .filter(|p| p.kind == PointKind::Adversarial)
            .filter(|p| run.profile.ambiguous_commit(p.point).is_some())
            .count();
        assert!(inside > 0, "at least one mid-commit crash point");
    }

    #[test]
    fn cycle_points_translate_through_the_profile() {
        let cell = CrashCell {
            design: DesignKind::SoftwareOnly,
            workload: "queue".to_string(),
            config: SystemConfig::small_test(),
            config_name: "small".to_string(),
            commits: 4,
            seed: 1,
        };
        let run = profile_cell(&cell);
        assert_eq!(run.cycle_to_mutation_point(0), 0);
        let end = run.step_spans.last().unwrap().2;
        assert_eq!(run.cycle_to_mutation_point(u64::MAX), end);
        let plan = plan_points(&run, 0, 0, &[], &[1_000_000_000]);
        assert_eq!(plan.len(), 1);
        assert!(matches!(plan[0].kind, PointKind::Cycle(_)));
    }
}
