//! The crash matrix: every design × workload cell becomes a
//! crash-recovery experiment swept over a plan of crash points.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;
use dhtm_types::seed::stable_cell_seed;
use dhtm_types::stats::{RecoveryCounters, RunStats};

use crate::fault::{self, Fault};
use crate::oracle::{OracleOutcome, RecoveryAuditor};
use crate::plan::{plan_points, PointKind};
use crate::probe::{capture_cell, profile_cell};

/// One design × workload crash-experiment cell.
#[derive(Debug, Clone)]
pub struct CrashCell {
    /// The design under test.
    pub design: DesignKind,
    /// Workload name ("hash", "queue", ...).
    pub workload: String,
    /// The machine configuration.
    pub config: SystemConfig,
    /// Name of the configuration (for reports).
    pub config_name: String,
    /// Commit target of the underlying run.
    pub commits: u64,
    /// Workload seed (shared by all designs of a workload group).
    pub seed: u64,
}

impl CrashCell {
    /// The cell's runnable form: its engine resolved through the engine
    /// registry, with the cell's exact configuration and workload seed —
    /// the single construction path the profile and capture runs share
    /// with the experiment harness.
    pub fn resolved(&self) -> dhtm_scenario::ResolvedSpec {
        dhtm_scenario::ResolvedSpec::from_parts(
            &self.design.into(),
            self.workload.clone(),
            self.config.clone(),
            dhtm_scenario::SpecLimits {
                // Crash cells have always run under `RunLimits::evaluation`
                // (the `SpecLimits` default) with their own commit target.
                target_commits: self.commits,
                ..dhtm_scenario::SpecLimits::default()
            },
            self.seed,
        )
    }
}

/// The verdict for one crash point of one cell.
#[derive(Debug, Clone)]
pub struct PointVerdict {
    /// How the point was chosen.
    pub kind: PointKind,
    /// The auditor's verdict.
    pub outcome: OracleOutcome,
}

/// All verdicts of one cell.
#[derive(Debug)]
pub struct CrashCellReport {
    /// The cell that ran.
    pub cell: CrashCell,
    /// Final value of the durable-mutation clock for the run.
    pub total_mutations: u64,
    /// Run statistics of the profiled run, with the aggregated recovery
    /// counters folded in (rounds through the standard JSON/CSV emitters).
    pub stats: RunStats,
    /// One verdict per planned crash point, ascending.
    pub verdicts: Vec<PointVerdict>,
}

impl CrashCellReport {
    /// Whether every crash point passed every oracle.
    pub fn all_passed(&self) -> bool {
        self.verdicts.iter().all(|v| v.outcome.passed)
    }

    /// Aggregated recovery counters over all points.
    pub fn counters(&self) -> RecoveryCounters {
        self.stats.recovery
    }
}

/// The declarative crash matrix.
#[derive(Debug, Clone)]
pub struct CrashMatrix {
    /// Designs to sweep (typically all six).
    pub designs: Vec<DesignKind>,
    /// Workload names to sweep.
    pub workloads: Vec<String>,
    /// Machine configuration for every cell.
    pub config: SystemConfig,
    /// Its report name.
    pub config_name: String,
    /// Commit target per cell.
    pub commits: u64,
    /// Base seed (mixed per workload exactly like the experiment harness).
    pub seed: u64,
    /// Number of stratified crash points per cell.
    pub stratified: usize,
    /// Adversarial-point budget per cell.
    pub adversarial: usize,
    /// Extra cycle-denominated crash points (CLI `--crash-at`).
    pub at_cycles: Vec<u64>,
}

impl CrashMatrix {
    /// A matrix over `designs × workloads` with the default point plan
    /// (8 stratified + 6 adversarial points per cell).
    pub fn new<I, S>(designs: &[DesignKind], workloads: I, config: SystemConfig) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        CrashMatrix {
            designs: designs.to_vec(),
            workloads: workloads.into_iter().map(Into::into).collect(),
            config,
            config_name: "default".to_string(),
            commits: 12,
            seed: 0x15CA_2018,
            stratified: 8,
            adversarial: 6,
            at_cycles: Vec::new(),
        }
    }

    /// Expands the matrix into cells, workload-major / design-minor (every
    /// design of a workload group shares its seed and transaction stream).
    pub fn cells(&self) -> Vec<CrashCell> {
        let cores = self.config.num_cores;
        let mut cells = Vec::new();
        for workload in &self.workloads {
            let seed = stable_cell_seed(self.seed, workload, cores);
            for &design in &self.designs {
                cells.push(CrashCell {
                    design,
                    workload: workload.clone(),
                    config: self.config.clone(),
                    config_name: self.config_name.clone(),
                    commits: self.commits,
                    seed,
                });
            }
        }
        cells
    }

    /// Runs every cell on `jobs` worker threads (1 = serial), returning
    /// reports in cell-enumeration order regardless of scheduling.
    pub fn run(&self, jobs: usize) -> Vec<CrashCellReport> {
        let cells = self.cells();
        let jobs = jobs.clamp(1, cells.len().max(1));
        if jobs == 1 {
            return cells.iter().map(|c| self.run_cell(c)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CrashCellReport>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else {
                        break;
                    };
                    let report = self.run_cell(cell);
                    *slots[i].lock().expect("slot poisoned") = Some(report);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("slot poisoned").expect("cell ran"))
            .collect()
    }

    /// Runs one cell: profile, plan, capture, audit.
    pub fn run_cell(&self, cell: &CrashCell) -> CrashCellReport {
        let run = profile_cell(cell);
        let plan = plan_points(
            &run,
            self.stratified,
            self.adversarial,
            &[],
            &self.at_cycles,
        );
        let points: Vec<u64> = plan.iter().map(|p| p.point).collect();
        let captures = capture_cell(cell, &points);
        debug_assert_eq!(captures.len(), plan.len());

        let mut auditor = RecoveryAuditor::new(&run.profile, cell.design);
        let mut counters = RecoveryCounters::default();
        let verdicts: Vec<PointVerdict> = plan
            .iter()
            .zip(captures.iter())
            .map(|(p, (point, snapshot))| {
                let outcome = auditor.audit(*point, snapshot);
                outcome.accumulate(&mut counters);
                PointVerdict {
                    kind: p.kind,
                    outcome,
                }
            })
            .collect();

        let mut stats = run.profile.result.stats.clone();
        stats.recovery = counters;
        CrashCellReport {
            cell: cell.clone(),
            total_mutations: run.profile.total_mutations,
            stats,
            verdicts,
        }
    }
}

/// The outcome of the fault-injected negative control.
#[derive(Debug, Clone, Copy)]
pub struct NegativeControl {
    /// The crash point the control ran at.
    pub point: u64,
    /// The uncorrupted image passed (sanity: the control isolates the
    /// fault, not a pre-existing failure).
    pub clean_passed: bool,
    /// Flipping a committed redo payload was detected as an oracle failure.
    pub flip_detected: bool,
    /// Dropping a commit marker was detected at at least one candidate
    /// point (requires forward evidence — partially written-back data — so
    /// it is scanned over all candidates).
    pub drop_detected: bool,
}

impl NegativeControl {
    /// Whether the control demonstrates the oracles can fail.
    pub fn detected(&self) -> bool {
        self.clean_passed && self.flip_detected && self.drop_detected
    }
}

/// Runs the fault-injected negative control on `cell`: finds crash points
/// inside commit steps whose image holds a committed-but-incomplete
/// transaction, corrupts the log there, and checks the auditor rejects the
/// corrupted images. Returns `None` if the run never exposes a replayable
/// window (e.g. a design without redo records).
pub fn negative_control(cell: &CrashCell) -> Option<NegativeControl> {
    let run = profile_cell(cell);
    // Candidate points: every intra-step point of the first few commit
    // steps (the commit record sits somewhere inside each).
    let mut candidates: Vec<u64> = Vec::new();
    for c in &run.profile.commits {
        candidates.extend((c.step_start_mutations + 1)..c.step_end_mutations);
        if candidates.len() >= 64 {
            break;
        }
    }
    candidates.truncate(64);
    if candidates.is_empty() {
        return None;
    }
    let captures = capture_cell(cell, &candidates);

    let mut primary: Option<(u64, bool, bool)> = None;
    let mut drop_detected = false;
    for (point, snapshot) in &captures {
        if !fault::has_target(snapshot) {
            continue;
        }
        if primary.is_none() {
            let clean = RecoveryAuditor::new(&run.profile, cell.design)
                .audit(*point, snapshot)
                .passed;
            let mut flipped = snapshot.crash_snapshot();
            fault::inject(&mut flipped, Fault::FlipRedoPayload);
            let flip_failed = !RecoveryAuditor::new(&run.profile, cell.design)
                .audit(*point, &flipped)
                .passed;
            primary = Some((*point, clean, flip_failed));
        }
        if !drop_detected {
            let mut dropped = snapshot.crash_snapshot();
            if fault::inject(&mut dropped, Fault::DropCommitMarker) {
                drop_detected = !RecoveryAuditor::new(&run.profile, cell.design)
                    .audit(*point, &dropped)
                    .passed;
            }
        }
        if drop_detected && primary.is_some_and(|(_, c, f)| c && f) {
            break;
        }
    }
    let (point, clean_passed, flip_detected) = primary?;
    Some(NegativeControl {
        point,
        clean_passed,
        flip_detected,
        drop_detected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_matrix() -> CrashMatrix {
        let mut m = CrashMatrix::new(
            &[DesignKind::SoftwareOnly, DesignKind::Dhtm],
            ["hash"],
            SystemConfig::small_test(),
        );
        m.config_name = "small".to_string();
        m.commits = 6;
        m.stratified = 4;
        m.adversarial = 3;
        m
    }

    #[test]
    fn matrix_cells_share_seed_within_a_workload_group() {
        let m = quick_matrix();
        let cells = m.cells();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].seed, cells[1].seed);
        assert_ne!(cells[0].design, cells[1].design);
    }

    #[test]
    fn parallel_run_matches_serial() {
        let m = quick_matrix();
        let serial = m.run(1);
        let parallel = m.run(2);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.total_mutations, b.total_mutations);
            assert_eq!(a.verdicts.len(), b.verdicts.len());
            assert_eq!(a.all_passed(), b.all_passed());
            assert_eq!(a.counters(), b.counters());
        }
    }

    #[test]
    fn quick_matrix_passes_and_counts_points() {
        let m = quick_matrix();
        for report in m.run(1) {
            assert!(
                report.all_passed(),
                "{} / {}: {:?}",
                report.cell.design,
                report.cell.workload,
                report
                    .verdicts
                    .iter()
                    .filter(|v| !v.outcome.passed)
                    .map(|v| (v.outcome.point, v.outcome.violations.clone()))
                    .collect::<Vec<_>>()
            );
            assert!(report.counters().crash_points >= 4);
            assert_eq!(report.counters().oracle_failures, 0);
        }
    }

    #[test]
    fn negative_control_detects_log_corruption() {
        let m = quick_matrix();
        let cells = m.cells();
        let dhtm_cell = cells.iter().find(|c| c.design == DesignKind::Dhtm).unwrap();
        let control = negative_control(dhtm_cell).expect("DHTM exposes a replayable window");
        assert!(control.clean_passed, "control baseline must pass");
        assert!(control.flip_detected, "corrupted payload must be detected");
    }
}
