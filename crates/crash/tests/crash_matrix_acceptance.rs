//! Acceptance test for the crash-injection subsystem: the full crash matrix
//! — all six designs × two workloads × (8 stratified + adversarial) crash
//! points — passes every recovery oracle deterministically for a fixed
//! seed, and a deliberately corrupted log is detected as an oracle failure
//! (negative control).

use dhtm_crash::{negative_control, CrashMatrix};
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

fn acceptance_matrix() -> CrashMatrix {
    let mut m = CrashMatrix::new(
        &DesignKind::ALL,
        ["hash", "queue"],
        SystemConfig::small_test(),
    );
    m.config_name = "small".to_string();
    m.commits = 12;
    m.seed = 0x15CA_2018;
    m.stratified = 8;
    m.adversarial = 6;
    m
}

#[test]
fn full_matrix_passes_all_recovery_oracles() {
    let matrix = acceptance_matrix();
    let reports = matrix.run(4);
    assert_eq!(reports.len(), 6 * 2);
    for report in &reports {
        let failures: Vec<_> = report
            .verdicts
            .iter()
            .filter(|v| !v.outcome.passed)
            .map(|v| (v.outcome.point, v.outcome.violations.clone()))
            .collect();
        assert!(
            failures.is_empty(),
            "{} / {} failed oracles at {:?}",
            report.cell.design,
            report.cell.workload,
            failures
        );
        assert!(
            report.counters().crash_points >= 8,
            "{} / {}: expected >= 8 crash points, got {}",
            report.cell.design,
            report.cell.workload,
            report.counters().crash_points
        );
    }
    // The matrix exercises both recovery mechanisms: redo replay (SO, sdTM,
    // DHTM) and undo rollback (ATOM, LogTM-ATOM).
    let replayed: u64 = reports
        .iter()
        .map(|r| r.counters().replayed_transactions)
        .sum();
    let rolled_back: u64 = reports
        .iter()
        .map(|r| r.counters().rolled_back_transactions)
        .sum();
    assert!(replayed > 0, "no crash point exercised redo replay");
    assert!(rolled_back > 0, "no crash point exercised undo rollback");
    // Mid-commit crashes were injected and resolved.
    let ambiguous = reports
        .iter()
        .flat_map(|r| &r.verdicts)
        .filter(|v| v.outcome.ambiguous)
        .count();
    assert!(ambiguous > 0, "no mid-commit crash point was injected");
}

#[test]
fn matrix_is_deterministic_for_a_fixed_seed() {
    let matrix = acceptance_matrix();
    let a = matrix.run(2);
    let b = matrix.run(4);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.total_mutations, y.total_mutations);
        assert_eq!(x.counters(), y.counters());
        assert_eq!(x.verdicts.len(), y.verdicts.len());
        for (vx, vy) in x.verdicts.iter().zip(y.verdicts.iter()) {
            assert_eq!(vx.outcome.point, vy.outcome.point);
            assert_eq!(vx.outcome.passed, vy.outcome.passed);
            assert_eq!(vx.outcome.committed_before, vy.outcome.committed_before);
        }
    }
}

#[test]
fn corrupted_log_negative_control_is_detected() {
    let matrix = acceptance_matrix();
    let cell = matrix
        .cells()
        .into_iter()
        .find(|c| c.design == DesignKind::Dhtm && c.workload == "hash")
        .expect("DHTM/hash cell exists");
    let control = negative_control(&cell).expect("DHTM exposes a replayable crash window");
    assert!(control.clean_passed, "uncorrupted image must pass");
    assert!(
        control.flip_detected,
        "flipped redo payload must fail the oracles"
    );
    assert!(
        control.drop_detected,
        "dropped commit marker must fail the oracles at some candidate point"
    );
    assert!(control.detected());
}
