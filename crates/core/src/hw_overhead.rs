//! The hardware DHTM adds on top of an RTM-like HTM (Table II of the paper).
//!
//! This module exists so that the Table II "experiment" can be regenerated
//! programmatically (`table2_hw_overhead` in the bench crate) and so that the
//! storage overhead can be asserted in tests.

use dhtm_types::config::SystemConfig;

/// One architectural register or structure added by DHTM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HardwareRegister {
    /// Name as given in Table II.
    pub name: &'static str,
    /// Description from Table II.
    pub description: &'static str,
    /// Storage cost in bits for the given configuration.
    pub bits: usize,
}

/// Enumerates the DHTM hardware overhead for a configuration (Table II).
///
/// The log buffer dominates: each entry holds a cache-line address
/// (modelled as 48 bits of physical line address). The remaining additions
/// are a transaction-state register and two sets of
/// start/next/size registers for the log area and the overflow list.
pub fn hardware_overhead(cfg: &SystemConfig) -> Vec<HardwareRegister> {
    const ADDR_BITS: usize = 48;
    vec![
        HardwareRegister {
            name: "Log Buffer",
            description: "Tracks cache lines pending log writes",
            bits: cfg.log_buffer_entries * ADDR_BITS,
        },
        HardwareRegister {
            name: "Transaction State",
            description: "Identify the state of a transaction",
            bits: 3,
        },
        HardwareRegister {
            name: "Log Area Start Pointer",
            description: "The start address of the log space",
            bits: 64,
        },
        HardwareRegister {
            name: "Log Area Next Pointer",
            description: "Address to write the next log entry",
            bits: 64,
        },
        HardwareRegister {
            name: "Log Area Size",
            description: "Size of the log space",
            bits: 64,
        },
        HardwareRegister {
            name: "Overflow List Start Pointer",
            description: "The start address of the overflow list",
            bits: 64,
        },
        HardwareRegister {
            name: "Overflow List Next Pointer",
            description: "Address to write the next entry",
            bits: 64,
        },
        HardwareRegister {
            name: "Overflow List Size",
            description: "Size of the overflow list",
            bits: 64,
        },
    ]
}

/// Total per-core storage overhead in bytes.
pub fn total_overhead_bytes(cfg: &SystemConfig) -> usize {
    hardware_overhead(cfg).iter().map(|r| r.bits).sum::<usize>() / 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_lists_eight_structures() {
        let regs = hardware_overhead(&SystemConfig::isca18_baseline());
        assert_eq!(regs.len(), 8);
        let names: Vec<_> = regs.iter().map(|r| r.name).collect();
        assert!(names.contains(&"Log Buffer"));
        assert!(names.contains(&"Transaction State"));
    }

    #[test]
    fn overhead_is_dominated_by_the_log_buffer_and_stays_small() {
        let cfg = SystemConfig::isca18_baseline();
        let regs = hardware_overhead(&cfg);
        let log_buffer = regs.iter().find(|r| r.name == "Log Buffer").unwrap();
        let total: usize = regs.iter().map(|r| r.bits).sum();
        assert!(log_buffer.bits * 2 > total, "log buffer dominates");
        // The whole addition is a few hundred bytes per core.
        assert!(total_overhead_bytes(&cfg) < 1024);
    }

    #[test]
    fn overhead_scales_with_log_buffer_size() {
        let small =
            total_overhead_bytes(&SystemConfig::isca18_baseline().with_log_buffer_entries(4));
        let large =
            total_overhead_bytes(&SystemConfig::isca18_baseline().with_log_buffer_entries(128));
        assert!(large > small);
    }
}
