//! The per-core hardware redo-logging front end (Section III-A).
//!
//! [`RedoLogger`] combines the log buffer (coalescing + last-store
//! prediction) with the bookkeeping of issued log writes: which lines still
//! need a record, how many records/bytes have been written for the current
//! transaction, and the cycle at which all issued log writes become durable
//! (the commit point cannot be earlier than this).

use dhtm_cache::log_buffer::LogBuffer;
use dhtm_types::addr::LineAddr;

/// Per-core redo-logging state of the DHTM L1 controller.
#[derive(Debug, Clone)]
pub struct RedoLogger {
    buffer: LogBuffer,
    word_granular: bool,
    /// Cycle by which every log write issued so far is durable.
    persist_horizon: u64,
    records_this_tx: u64,
    bytes_this_tx: u64,
}

impl RedoLogger {
    /// Creates a logger with a log buffer of `buffer_entries` entries.
    /// With `word_granular` set, the buffer is bypassed and every store
    /// produces its own record (the naive design of Figure 2b).
    pub fn new(buffer_entries: usize, word_granular: bool) -> Self {
        RedoLogger {
            buffer: LogBuffer::new(buffer_entries),
            word_granular,
            persist_horizon: 0,
            records_this_tx: 0,
            bytes_this_tx: 0,
        }
    }

    /// Whether word-granular (non-coalescing) logging is in effect.
    pub fn word_granular(&self) -> bool {
        self.word_granular
    }

    /// Registers a store to `line`. Returns a line whose redo record must be
    /// written *now* (evicted from the log buffer to make room), if any.
    ///
    /// In word-granular mode the buffer is bypassed and the caller must log
    /// the stored word immediately; `None` is returned.
    pub fn on_store(&mut self, line: LineAddr) -> Option<LineAddr> {
        if self.word_granular {
            None
        } else {
            self.buffer.record_store(line)
        }
    }

    /// Notifies the logger that the L1 is evicting `line`. Returns `true` if
    /// the line was tracked in the buffer, in which case the caller must
    /// write its redo record before the line leaves the L1.
    pub fn on_l1_eviction(&mut self, line: LineAddr) -> bool {
        self.buffer.remove(line)
    }

    /// Drains the buffer at transaction end into `out` (cleared first);
    /// every drained line still needs a redo record. Allocation-free: the
    /// engine threads a reusable scratch buffer through here.
    pub fn drain_into(&mut self, out: &mut Vec<LineAddr>) {
        self.buffer.drain_into(out);
    }

    /// Whether `line` currently has a pending (unlogged) record in the
    /// buffer.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.buffer.contains(line)
    }

    /// Records that a log write of `bytes` bytes was issued and becomes
    /// durable at `durable_at`.
    pub fn note_log_write(&mut self, durable_at: u64, bytes: u64) {
        self.persist_horizon = self.persist_horizon.max(durable_at);
        self.records_this_tx += 1;
        self.bytes_this_tx += bytes;
    }

    /// The cycle by which every issued log write is durable.
    pub fn persist_horizon(&self) -> u64 {
        self.persist_horizon
    }

    /// Number of log records written for the current transaction.
    pub fn records_this_tx(&self) -> u64 {
        self.records_this_tx
    }

    /// Bytes of log traffic written for the current transaction.
    pub fn bytes_this_tx(&self) -> u64 {
        self.bytes_this_tx
    }

    /// Resets per-transaction state (called at begin and after abort).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.persist_horizon = 0;
        self.records_this_tx = 0;
        self.bytes_this_tx = 0;
    }

    /// Lifetime count of stores coalesced into an existing buffer entry.
    pub fn coalesced_stores(&self) -> u64 {
        self.buffer.coalesced_hits()
    }

    /// Registers the underlying log buffer's lifetime probes under `scope`
    /// (e.g. `core3/log_buffer`).
    pub fn probes_into(&self, scope: &str, reg: &mut dhtm_obs::ProbeRegistry) {
        self.buffer.probes_into(scope, reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2c_coalescing_two_log_writes_for_five_stores() {
        // Single-entry buffer, stores A0,A1,A0,B0,B1: one eviction (A when B
        // arrives) plus one drained entry (B) = 2 log writes.
        let mut l = RedoLogger::new(1, false);
        let a = LineAddr::new(0xA);
        let b = LineAddr::new(0xB);
        let mut writes = 0;
        for line in [a, a, a, b, b] {
            if l.on_store(line).is_some() {
                writes += 1;
            }
        }
        let mut drained = Vec::new();
        l.drain_into(&mut drained);
        writes += drained.len();
        assert_eq!(writes, 2);
        assert_eq!(l.coalesced_stores(), 3);
    }

    #[test]
    fn word_granular_mode_bypasses_buffer() {
        let mut l = RedoLogger::new(8, true);
        assert!(l.word_granular());
        assert_eq!(l.on_store(LineAddr::new(1)), None);
        let mut drained = vec![LineAddr::new(1)];
        l.drain_into(&mut drained);
        assert!(drained.is_empty(), "nothing is buffered");
    }

    #[test]
    fn l1_eviction_forces_log_of_tracked_line() {
        let mut l = RedoLogger::new(8, false);
        l.on_store(LineAddr::new(5));
        assert!(l.is_pending(LineAddr::new(5)));
        assert!(l.on_l1_eviction(LineAddr::new(5)));
        assert!(!l.is_pending(LineAddr::new(5)));
        assert!(!l.on_l1_eviction(LineAddr::new(5)));
    }

    #[test]
    fn persist_horizon_tracks_latest_write() {
        let mut l = RedoLogger::new(8, false);
        l.note_log_write(500, 72);
        l.note_log_write(300, 72);
        assert_eq!(l.persist_horizon(), 500);
        assert_eq!(l.records_this_tx(), 2);
        assert_eq!(l.bytes_this_tx(), 144);
        l.reset();
        assert_eq!(l.persist_horizon(), 0);
        assert_eq!(l.records_this_tx(), 0);
    }
}
