#![forbid(unsafe_code)]
//! # dhtm — Durable Hardware Transactional Memory
//!
//! A from-scratch reproduction of **"DHTM: Durable Hardware Transactional
//! Memory"** (Joshi, Nagarajan, Cintra, Viglas — ISCA 2018) as a Rust
//! library: the DHTM design itself plus every substrate it needs (cache
//! hierarchy, MESI directory coherence, persistent memory, HTM machinery,
//! multicore simulator, workloads and baselines).
//!
//! DHTM extends an RTM-like hardware transactional memory with:
//!
//! * **atomic durability** via hardware redo logging: the L1 controller
//!   transparently writes redo log records to a per-thread transaction log in
//!   persistent memory; a transaction commits as soon as its log (not its
//!   data) is durable;
//! * **log coalescing** through a small log buffer that predicts the last
//!   store to each cache line, so repeated stores produce a single
//!   line-granular log write;
//! * **L1→LLC write-set overflow** using the same logging infrastructure (an
//!   overflow list plus "sticky" directory state), lifting the transaction
//!   size limit from the L1 to the LLC without adding any transaction
//!   tracking hardware to the LLC;
//! * a **recovery manager** that replays committed-but-incomplete
//!   transactions after a crash, ordering dependent transactions with
//!   sentinel log records.
//!
//! ## Quick start
//!
//! ```
//! use dhtm::prelude::*;
//!
//! // Build the paper's 8-core machine and the DHTM engine.
//! let cfg = SystemConfig::small_test();
//! let mut machine = Machine::new(cfg.clone());
//! let mut engine = DhtmEngine::new(&cfg);
//! engine.init(&mut machine);
//!
//! // Run one durable transaction by hand.
//! let core = CoreId::new(0);
//! engine.begin(&mut machine, core, &[], 0);
//! engine.write(&mut machine, core, Address::new(0x1000), 42, 10);
//! engine.commit(&mut machine, core, 100);
//!
//! // The update is durable: crash the machine and recover.
//! let mut crashed = machine.mem.domain().crash_snapshot();
//! dhtm::RecoveryManager::new().recover(&mut crashed).unwrap();
//! assert_eq!(crashed.memory().read_word(Address::new(0x1000)), 42);
//! ```
//!
//! The full evaluation (Figures 5–6, Tables IV–VII of the paper) is driven by
//! the `dhtm-bench` crate; see `EXPERIMENTS.md` at the repository root.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod engine;
pub mod hw_overhead;
pub mod options;
pub mod redo_log;

pub use engine::DhtmEngine;
pub use hw_overhead::{hardware_overhead, HardwareRegister};
pub use options::DhtmOptions;
pub use redo_log::RedoLogger;

// Re-export the recovery entry points so that `dhtm` alone is enough for the
// common durability workflow.
pub use dhtm_nvm::recovery::{RecoveryManager, RecoveryReport};

/// Convenience prelude for examples, tests and downstream users.
pub mod prelude {
    pub use crate::engine::DhtmEngine;
    pub use crate::options::DhtmOptions;
    pub use crate::{RecoveryManager, RecoveryReport};
    pub use dhtm_sim::prelude::*;
}
