//! Configuration knobs of the DHTM engine used by the paper's ablations.

/// Options controlling the DHTM engine's behaviour.
///
/// The defaults correspond to the design evaluated in the paper; the other
/// settings exist to reproduce specific studies:
///
/// * `word_granular_logging` disables the log buffer and writes one redo
///   record per store (the naive design of Figure 2b), used to demonstrate
///   the bandwidth benefit of coalescing;
/// * `instant_writes` makes the critical-path log/data writes complete
///   instantaneously (still consuming bandwidth), the "idealised DHTM" of
///   Section VI-D used to show that critical-path writes are not the main
///   overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DhtmOptions {
    /// Log at word granularity with no coalescing (Figure 2b) instead of the
    /// default log-buffer design (Figure 2c).
    pub word_granular_logging: bool,
    /// Critical-path writes (pending log writes at commit, data write-backs
    /// before the next transaction) complete instantaneously.
    pub instant_writes: bool,
    /// Allow the write set to overflow from the L1 to the LLC. Disabling
    /// this yields an L1-limited durable HTM (used in ablations to isolate
    /// the benefit of overflow support).
    pub overflow_enabled: bool,
}

impl DhtmOptions {
    /// The configuration evaluated in the paper.
    pub fn paper_default() -> Self {
        DhtmOptions {
            word_granular_logging: false,
            instant_writes: false,
            overflow_enabled: true,
        }
    }

    /// The idealised instant-write variant of Section VI-D.
    pub fn instant_writes() -> Self {
        DhtmOptions {
            instant_writes: true,
            ..Self::paper_default()
        }
    }

    /// The naive word-granular logging variant of Figure 2b.
    pub fn word_granular() -> Self {
        DhtmOptions {
            word_granular_logging: true,
            ..Self::paper_default()
        }
    }

    /// An L1-limited durable HTM (overflow support disabled).
    pub fn without_overflow() -> Self {
        DhtmOptions {
            overflow_enabled: false,
            ..Self::paper_default()
        }
    }
}

impl Default for DhtmOptions {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluated_design() {
        let o = DhtmOptions::default();
        assert!(!o.word_granular_logging);
        assert!(!o.instant_writes);
        assert!(o.overflow_enabled);
    }

    #[test]
    fn variant_constructors_differ_only_in_their_knob() {
        assert!(DhtmOptions::instant_writes().instant_writes);
        assert!(DhtmOptions::instant_writes().overflow_enabled);
        assert!(DhtmOptions::word_granular().word_granular_logging);
        assert!(!DhtmOptions::without_overflow().overflow_enabled);
    }
}
