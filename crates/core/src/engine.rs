//! The DHTM transaction engine (Sections III and IV of the paper).
//!
//! DHTM layers hardware redo logging and L1→LLC write-set overflow on top of
//! an RTM-like HTM:
//!
//! * **Visibility** comes from the HTM: read/write bits in the L1, a read-set
//!   overflow signature, eager conflict detection through the coherence
//!   protocol with a first-writer-wins policy by default.
//! * **Durability** comes from redo logging: every transactional store is
//!   tracked in the log buffer; evictions from the buffer (and from the L1)
//!   emit cache-line-granular redo records to the per-thread transaction log
//!   in persistent memory, off the critical path. A transaction commits once
//!   its log (including the commit record) is durable; the data itself is
//!   written back in place afterwards, during the *completion* phase, which
//!   only delays the next transaction on the same core.
//! * **Overflow** reuses the same infrastructure: when a write-set line is
//!   evicted from the L1 it is written back to the LLC with its directory
//!   state left unchanged (sticky), and its address is appended to the
//!   overflow list so commit/abort can find it again without searching the
//!   LLC.

use dhtm_cache::l1::L1Entry;
use dhtm_nvm::record::LogRecord;
use dhtm_types::addr::{Address, LineAddr};
use dhtm_types::config::SystemConfig;
use dhtm_types::ids::{CoreId, ThreadId, TxId};
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::{AbortReason, TxStats};

use dhtm_htm::arbiter::{ArbiterConfig, HtmArbiter};
use dhtm_htm::tx_state::{HtmCoreState, TxStatus};
use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::{LockId, LockTable};
use dhtm_sim::machine::Machine;

use crate::options::DhtmOptions;
use crate::redo_log::RedoLogger;

/// Cycles of instruction overhead at transaction begin/commit.
const TX_BOOKKEEPING: u64 = 5;
/// Cycles of instruction overhead to roll back a transaction.
const ABORT_OVERHEAD: u64 = 20;
/// Bytes of overflow-list metadata written per overflowed line.
const OVERFLOW_ENTRY_BYTES: u64 = 8;

/// The DHTM engine: an RTM-like HTM extended with hardware redo logging and
/// LLC-limited (rather than L1-limited) transactions.
#[derive(Debug)]
pub struct DhtmEngine {
    states: Vec<HtmCoreState>,
    loggers: Vec<RedoLogger>,
    options: DhtmOptions,
    policy: dhtm_types::policy::ConflictPolicy,
    signature_bits: usize,
    log_buffer_entries: usize,
    max_retries: usize,
    fallback_lock: LockTable,
    in_fallback: Vec<bool>,
    /// Word values stored by each core's current *fallback* transaction.
    /// The fallback runs write-aside — the durable log, not the cache,
    /// carries the stores — so it needs no L1/LLC retention of its write
    /// set and is guaranteed to make progress where the HTM cannot
    /// (including write sets the LLC geometry cannot hold).
    fallback_values: Vec<std::collections::BTreeMap<Address, u64>>,
    fallback_commits: u64,
    /// Reusable line buffer for the commit/abort walks (log-buffer drain,
    /// resident write-back, overflow-list flush, abort invalidation): these
    /// loops mutate the machine while walking a snapshot of engine or cache
    /// state, so they stage the lines here instead of collecting a fresh
    /// `Vec` per transaction.
    scratch_lines: Vec<LineAddr>,
    /// Cycles each successful commit spent waiting at the commit point for
    /// its issued log writes to become durable (Figure 4e→4f gap). Boxed so
    /// the bucket array does not bloat every `EngineDispatch` variant.
    commit_persist_waits: Box<dhtm_obs::PowHistogram>,
}

impl DhtmEngine {
    /// Creates a DHTM engine with the paper's default options.
    pub fn new(cfg: &SystemConfig) -> Self {
        Self::with_options(cfg, DhtmOptions::paper_default())
    }

    /// Creates a DHTM engine with explicit options (used by the ablations).
    pub fn with_options(cfg: &SystemConfig, options: DhtmOptions) -> Self {
        DhtmEngine {
            states: Vec::new(),
            loggers: Vec::new(),
            options,
            policy: cfg.conflict_policy,
            signature_bits: cfg.read_signature_bits,
            log_buffer_entries: cfg.log_buffer_entries,
            max_retries: cfg.max_htm_retries,
            fallback_lock: LockTable::new(),
            in_fallback: Vec::new(),
            fallback_values: Vec::new(),
            fallback_commits: 0,
            scratch_lines: Vec::new(),
            commit_persist_waits: Box::default(),
        }
    }

    /// The options this engine was built with.
    pub fn options(&self) -> &DhtmOptions {
        &self.options
    }

    /// Immutable view of a core's transactional state.
    pub fn state(&self, core: CoreId) -> &HtmCoreState {
        &self.states[core.get()]
    }

    fn arbiter_config(&self) -> ArbiterConfig {
        ArbiterConfig::dhtm(self.policy)
    }

    /// Appends a record to `core`'s transaction log and charges the log write
    /// to the memory channel. Returns the durability point, or `None` on log
    /// overflow (the caller aborts the transaction).
    fn append_record(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        record: LogRecord,
        now: u64,
    ) -> Option<u64> {
        let thread = ThreadId::from(core);
        let bytes = record.size_bytes();
        if machine.mem.domain_mut().append_log(thread, record).is_err() {
            return None;
        }
        let durable_at = machine.mem.persist_log_bytes(now, bytes);
        self.loggers[core.get()].note_log_write(durable_at, bytes);
        self.states[core.get()].log_records += 1;
        Some(durable_at)
    }

    /// Looks up the freshest contents of `line` for logging: L1 first, then
    /// LLC, then the in-place image.
    fn line_contents(machine: &Machine, core: CoreId, line: LineAddr) -> [u64; 8] {
        if let Some(e) = machine.mem.l1(core).entry(line) {
            e.data
        } else if let Some(e) = machine.mem.llc().entry(line) {
            e.data
        } else {
            machine.mem.domain().read_line(line)
        }
    }

    /// Emits the redo record for a line leaving the log buffer.
    fn log_line(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        line: LineAddr,
        now: u64,
    ) -> Option<u64> {
        let tx = self.states[core.get()].tx;
        let data = Self::line_contents(machine, core, line);
        self.append_record(machine, core, LogRecord::redo(tx, line, data), now)
    }

    /// Rolls back the transaction on `core` (Figure 4g/4h).
    fn do_abort(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        now: u64,
        reason: AbortReason,
    ) -> StepOutcome {
        let thread = ThreadId::from(core);
        let tx = self.states[core.get()].tx;
        // Consume any pending speculative-loss flag: it belongs to the
        // transaction being aborted, not to the core's next one.
        let _ = machine.mem.take_speculative_loss(core);
        if self.in_fallback[core.get()] {
            self.fallback_lock.release_all(core);
            self.in_fallback[core.get()] = false;
            // Write-aside fallback lines are clean but hold the aborted
            // values; discard them so neither later reads nor later log
            // records can observe them.
            let values = std::mem::take(&mut self.fallback_values[core.get()]);
            let mut prev: Option<LineAddr> = None;
            for line in values.keys().map(|a| a.line()) {
                if prev == Some(line) {
                    continue;
                }
                prev = Some(line);
                machine.mem.invalidate_l1_line(core, line);
            }
        }
        // Discard pending log-buffer entries and logically clear the log by
        // writing an abort record; if the log is full, purge the records of
        // this (uncommitted) transaction instead.
        self.loggers[core.get()].reset();
        let abort_marker = LogRecord::abort(tx);
        let mut at = now + ABORT_OVERHEAD;
        if self
            .append_record(machine, core, abort_marker, now)
            .is_none()
        {
            machine.mem.domain_mut().purge_log_tx(thread, tx);
        }
        machine.mem.domain_mut().reclaim_log(thread);

        // Invalidate the resident write set.
        machine
            .mem
            .l1_mut(core)
            .flash_invalidate_write_set_into(&mut self.scratch_lines);
        for &line in &self.scratch_lines {
            machine.mem.notify_clean_eviction(core, line);
        }
        machine.mem.l1_mut(core).flash_clear_read_bits();

        // Abort-completion phase: invalidate the overflowed lines in the LLC
        // (Figure 4h). This runs in the background; only the next transaction
        // on this core has to wait for it. Ascending line order, as the
        // shadow set always iterated.
        let mut completion = at;
        for line in self.states[core.get()].overflowed.iter() {
            machine.mem.invalidate_llc_line(line);
            completion += machine.mem.latency().llc_hit;
        }
        machine.mem.domain_mut().clear_overflow_tx(thread, tx);

        if self.options.instant_writes {
            completion = at;
        }
        self.states[core.get()].reset_after_abort();
        self.states[core.get()].next_begin_at = completion;
        at = at.max(now + ABORT_OVERHEAD);
        StepOutcome::Aborted {
            at,
            retry_at: at,
            reason,
        }
    }

    /// Handles a line evicted from the L1 during a transactional fill.
    /// Returns an abort reason if the eviction is fatal.
    fn handle_victim(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        line: LineAddr,
        entry: &L1Entry,
        now: u64,
    ) -> Option<AbortReason> {
        if entry.write_bit {
            if !self.options.overflow_enabled {
                return Some(AbortReason::Capacity);
            }
            // Section III-C: write-set overflow. If the line still has a
            // pending log-buffer entry, its redo record must be written now
            // (the L1 copy is about to disappear).
            if self.loggers[core.get()].on_l1_eviction(line) {
                let tx = self.states[core.get()].tx;
                let rec = LogRecord::redo(tx, line, entry.data);
                if self.append_record(machine, core, rec, now).is_none() {
                    return Some(AbortReason::LogOverflow);
                }
            }
            // Write the dirty data back to the LLC, leaving the directory
            // state unchanged (sticky) so conflicts keep being forwarded.
            machine
                .mem
                .writeback_to_llc(core, line, entry.data, now, true);
            // Record the address in the overflow list in persistent memory.
            let tx = self.states[core.get()].tx;
            let thread = ThreadId::from(core);
            if machine
                .mem
                .domain_mut()
                .append_overflow(thread, tx, line)
                .is_err()
            {
                return Some(AbortReason::LogOverflow);
            }
            machine.mem.persist_log_bytes(now, OVERFLOW_ENTRY_BYTES);
            self.states[core.get()].overflowed.insert(line);
            return None;
        }
        if entry.read_bit {
            // Read-set overflow into the signature; directory stays sticky so
            // invalidations still reach this core.
            self.states[core.get()].signature.insert(line);
            if entry.dirty {
                machine
                    .mem
                    .writeback_to_llc(core, line, entry.data, now, true);
            }
            return None;
        }
        // A line from the log buffer may track a non-transactional... no:
        // only transactional stores enter the buffer. Plain eviction.
        machine.mem.evict_nontransactional(core, line, entry, now);
        None
    }

    /// Emits sentinel records for dependencies on committed-but-incomplete
    /// transactions discovered during an access.
    fn emit_sentinels(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        deps: Vec<(CoreId, TxId)>,
        now: u64,
    ) {
        let tx = self.states[core.get()].tx;
        for (_, depends_on) in deps {
            let _ = self.append_record(machine, core, LogRecord::sentinel(tx, depends_on), now);
        }
    }
}

impl TxEngine for DhtmEngine {
    fn design(&self) -> DesignKind {
        DesignKind::Dhtm
    }

    fn init(&mut self, machine: &mut Machine) {
        let n = machine.num_cores();
        self.states = (0..n)
            .map(|_| HtmCoreState::new(self.signature_bits))
            .collect();
        self.loggers = (0..n)
            .map(|_| RedoLogger::new(self.log_buffer_entries, self.options.word_granular_logging))
            .collect();
        self.in_fallback = vec![false; n];
        self.fallback_values = vec![std::collections::BTreeMap::new(); n];
        self.fallback_lock = LockTable::new();
        self.fallback_commits = 0;
    }

    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        _lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        // A new transaction cannot begin until the previous one has completed
        // its write-backs (Section III-B).
        let start = now.max(self.states[core.get()].next_begin_at);
        if self.states[core.get()].aborts_this_tx > self.max_retries {
            if !self.fallback_lock.try_acquire_all(core, &[LockId::GLOBAL]) {
                return StepOutcome::Stall {
                    retry_at: start + 64,
                };
            }
            self.in_fallback[core.get()] = true;
        } else if self.fallback_lock.is_held(LockId::GLOBAL) {
            return StepOutcome::Stall {
                retry_at: start + 64,
            };
        }
        let tx = machine.tx_ids.allocate();
        self.states[core.get()].begin(tx, start);
        self.loggers[core.get()].reset();
        self.fallback_values[core.get()].clear();
        StepOutcome::done(start + TX_BOOKKEEPING)
    }

    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        if machine.mem.take_speculative_loss(core) {
            // An LLC eviction discarded one of this transaction's overflowed
            // write-set lines: the speculative data is gone, so the
            // transaction cannot commit (capacity, Section III-C limit).
            return self.do_abort(machine, core, now, AbortReason::Capacity);
        }
        let line = addr.line();
        let transactional = !self.in_fallback[core.get()];
        let cfg = self.arbiter_config();
        let (out, deps) = {
            let mut arb = HtmArbiter::new(&mut self.states, cfg, transactional);
            let out = machine.mem.load(core, line, now, &mut arb);
            (out, arb.into_dependencies())
        };
        if out.aborted_by_conflict {
            return self.do_abort(machine, core, now, AbortReason::Conflict);
        }
        if out.nacked {
            return StepOutcome::Stall {
                retry_at: out.done + 32,
            };
        }
        if let Some((vline, ventry)) = out.evicted_victim {
            if let Some(reason) = self.handle_victim(machine, core, vline, &ventry, now) {
                return self.do_abort(machine, core, out.done, reason);
            }
        }
        if transactional {
            self.emit_sentinels(machine, core, deps, now);
            let entry = machine.mem.l1_mut(core).entry_mut(line).expect("filled");
            entry.read_bit = true;
            if out.reread_own_overflow {
                // Figure 4 corner case: a re-read line that previously
                // overflowed still belongs to the write set.
                entry.write_bit = true;
            }
            self.states[core.get()].record_load(line);
        }
        StepOutcome::done(out.done)
    }

    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        if machine.mem.take_speculative_loss(core) {
            // An LLC eviction discarded one of this transaction's overflowed
            // write-set lines: the speculative data is gone, so the
            // transaction cannot commit (capacity, Section III-C limit).
            return self.do_abort(machine, core, now, AbortReason::Capacity);
        }
        let line = addr.line();
        let transactional = !self.in_fallback[core.get()];
        let cfg = self.arbiter_config();
        let (out, deps) = {
            let mut arb = HtmArbiter::new(&mut self.states, cfg, transactional);
            let out = machine.mem.store(core, line, now, &mut arb);
            (out, arb.into_dependencies())
        };
        if out.aborted_by_conflict {
            return self.do_abort(machine, core, now, AbortReason::Conflict);
        }
        if out.nacked {
            return StepOutcome::Stall {
                retry_at: out.done + 32,
            };
        }
        if let Some((vline, ventry)) = out.evicted_victim {
            if let Some(reason) = self.handle_victim(machine, core, vline, &ventry, now) {
                return self.do_abort(machine, core, out.done, reason);
            }
        }
        machine.mem.write_word_in_l1(core, addr, value);

        if transactional {
            self.emit_sentinels(machine, core, deps, now);
            machine
                .mem
                .l1_mut(core)
                .entry_mut(line)
                .expect("filled")
                .write_bit = true;
            self.states[core.get()].record_store(line);

            // Hardware redo logging (Section III-A).
            if self.options.word_granular_logging {
                let tx = self.states[core.get()].tx;
                let rec = LogRecord::redo_word(tx, line, addr.word_index().get(), value);
                if self.append_record(machine, core, rec, now).is_none() {
                    return self.do_abort(machine, core, out.done, AbortReason::LogOverflow);
                }
            } else if let Some(evicted) = self.loggers[core.get()].on_store(line) {
                if self.log_line(machine, core, evicted, now).is_none() {
                    return self.do_abort(machine, core, out.done, AbortReason::LogOverflow);
                }
            }
        } else {
            // Fallback path: durable via synchronous, Mnemosyne-like logging,
            // run *write-aside* — the durable log carries the stores and the
            // cache stays clean, so no L1/LLC retention of the write set is
            // needed and an eviction can never leak uncommitted data. This is
            // what guarantees fallback progress for write sets the cache
            // geometry cannot hold (the HTM path would capacity-abort
            // forever).
            let tx = self.states[core.get()].tx;
            let rec = LogRecord::redo_word(tx, line, addr.word_index().get(), value);
            let Some(durable) = self.append_record(machine, core, rec, now) else {
                return self.do_abort(machine, core, out.done, AbortReason::LogOverflow);
            };
            if let Some(entry) = machine.mem.l1_mut(core).entry_mut(line) {
                entry.dirty = false;
            }
            self.fallback_values[core.get()].insert(addr, value);
            self.states[core.get()].record_store(line);
            return StepOutcome::done(durable.max(out.done));
        }
        StepOutcome::done(out.done)
    }

    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        if machine.mem.take_speculative_loss(core) {
            // An LLC eviction discarded one of this transaction's overflowed
            // write-set lines: the speculative data is gone, so the
            // transaction cannot commit (capacity, Section III-C limit).
            return self.do_abort(machine, core, now, AbortReason::Capacity);
        }
        let thread = ThreadId::from(core);
        let tx = self.states[core.get()].tx;

        // (1) Drain the log buffer: every still-buffered line gets its redo
        //     record now (Figure 4e). Staged in the scratch buffer because
        //     `log_line` needs the whole engine mutably.
        self.loggers[core.get()].drain_into(&mut self.scratch_lines);
        for i in 0..self.scratch_lines.len() {
            let line = self.scratch_lines[i];
            if self.log_line(machine, core, line, now).is_none() {
                return self.do_abort(machine, core, now, AbortReason::LogOverflow);
            }
        }
        // (2) Write the commit record. The transaction commits once every log
        //     record, including this one, is durable.
        if self
            .append_record(machine, core, LogRecord::commit(tx), now)
            .is_none()
        {
            return self.do_abort(machine, core, now, AbortReason::LogOverflow);
        }
        let log_durable = self.loggers[core.get()].persist_horizon();
        let commit_at = if self.options.instant_writes {
            now + TX_BOOKKEEPING
        } else {
            (now + TX_BOOKKEEPING).max(log_durable)
        };
        self.commit_persist_waits
            .record(commit_at - (now + TX_BOOKKEEPING));

        // Read bits and the overflow signature are cleared at commit.
        machine.mem.l1_mut(core).flash_clear_read_bits();
        self.states[core.get()].snapshot_stats(commit_at);
        self.states[core.get()].status = TxStatus::Committed;

        // (3) Completion phase (Figure 4f): write the write set back in place,
        //     then the overflowed lines via the overflow list, then the
        //     complete record. This happens off the critical path — only the
        //     next transaction on this core waits for `completion`.
        let mut completion = commit_at;
        self.scratch_lines.clear();
        self.scratch_lines
            .extend(machine.mem.l1(core).write_set_iter());
        for i in 0..self.scratch_lines.len() {
            let line = self.scratch_lines[i];
            if let Some(done) = machine
                .mem
                .l1_writeback_line_to_memory(core, line, commit_at)
            {
                completion = completion.max(done);
            }
            if let Some(entry) = machine.mem.l1_mut(core).entry_mut(line) {
                entry.write_bit = false;
            }
        }
        self.scratch_lines.clear();
        self.scratch_lines.extend(
            machine
                .mem
                .domain()
                .overflow_list(thread)
                .lines_for_iter(tx),
        );
        for i in 0..self.scratch_lines.len() {
            let line = self.scratch_lines[i];
            // A line that overflowed and was later re-read is resident in the
            // L1 again; it was already written back (and is still owned by
            // this core), so the LLC write-back must not clear its directory
            // state.
            if machine.mem.l1(core).entry(line).is_some() {
                continue;
            }
            if let Some(done) = machine.mem.llc_writeback_line_to_memory(line, commit_at) {
                completion = completion.max(done);
            }
        }
        if self.in_fallback[core.get()] {
            // Write-aside fallback: the cache was kept clean, so each line's
            // in-place image is composed from the persistent copy overlaid
            // with the transaction's stores.
            let values = std::mem::take(&mut self.fallback_values[core.get()]);
            let mut prev: Option<LineAddr> = None;
            for line in values.keys().map(|a| a.line()) {
                if prev == Some(line) {
                    continue;
                }
                prev = Some(line);
                let done = machine
                    .mem
                    .persist_composed_line(core, line, &values, commit_at);
                completion = completion.max(done);
            }
        }
        if self
            .append_record(machine, core, LogRecord::complete(tx), commit_at)
            .is_none()
        {
            // The complete record is an optimisation, not a correctness
            // requirement (Section III-B); ignore the failure.
        }
        machine.mem.domain_mut().clear_overflow_tx(thread, tx);
        machine.mem.domain_mut().reclaim_log(thread);

        if self.options.instant_writes {
            completion = commit_at;
        }
        if self.in_fallback[core.get()] {
            self.fallback_lock.release_all(core);
            self.in_fallback[core.get()] = false;
            self.fallback_commits += 1;
        }
        self.states[core.get()].reset_after_commit(completion);
        self.states[core.get()].status = TxStatus::Idle;
        StepOutcome::done(commit_at)
    }

    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        self.states[core.get()].last_stats.clone()
    }

    fn fallback_commits(&self) -> u64 {
        self.fallback_commits
    }

    fn probes_into(&self, reg: &mut dhtm_obs::ProbeRegistry) {
        for (i, logger) in self.loggers.iter().enumerate() {
            logger.probes_into(&format!("core{i}/log_buffer"), reg);
        }
        reg.add("engine/fallback_commits", self.fallback_commits);
        reg.merge_histogram("engine/commit_persist_waits", &self.commit_persist_waits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::recovery::RecoveryManager;
    use dhtm_types::config::SystemConfig;

    fn setup() -> (Machine, DhtmEngine) {
        let cfg = SystemConfig::small_test();
        let mut machine = Machine::new(cfg.clone());
        let mut engine = DhtmEngine::new(&cfg);
        engine.init(&mut machine);
        (machine, engine)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn committed_transaction_is_durable_in_place() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x4000);
        assert!(e.begin(&mut m, c(0), &[], 0).is_done());
        assert!(e.write(&mut m, c(0), addr, 99, 10).is_done());
        let out = e.commit(&mut m, c(0), 100);
        assert!(out.is_done());
        // After commit-complete the new value is in place in persistent
        // memory (Figure 4f).
        assert_eq!(m.mem.domain().read_word(addr), 99);
    }

    #[test]
    fn uncommitted_transaction_leaves_memory_untouched() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x4000);
        m.mem.domain_mut().memory_mut().write_word(addr, 7);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 99, 10);
        // No commit: in-place memory still holds the old value, and recovery
        // from a crash at this point must preserve it.
        assert_eq!(m.mem.domain().read_word(addr), 7);
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(addr), 7);
    }

    #[test]
    fn commit_waits_for_log_persistence_but_not_for_data() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        for i in 0..6u64 {
            e.write(&mut m, c(0), Address::new(0x4000 + i * 64), i, 10 + i);
        }
        let out = e.commit(&mut m, c(0), 100);
        let StepOutcome::Done { at } = out else {
            panic!("commit failed: {out:?}")
        };
        // The commit point includes at least one NVM write latency (the log
        // records must be durable)...
        assert!(at >= 100 + m.mem.latency().nvm_write);
        // ...but the core is released before the completion phase finishes
        // writing all six data lines back in place.
        assert!(e.state(c(0)).next_begin_at >= at);
    }

    #[test]
    fn log_coalescing_reduces_log_records() {
        let cfg = SystemConfig::small_test();
        let run = |word_granular: bool| {
            let mut m = Machine::new(cfg.clone());
            let opts = if word_granular {
                DhtmOptions::word_granular()
            } else {
                DhtmOptions::paper_default()
            };
            let mut e = DhtmEngine::with_options(&cfg, opts);
            e.init(&mut m);
            e.begin(&mut m, c(0), &[], 0);
            // Five stores into two cache lines (the Figure 2 example).
            let a = Address::new(0xA00);
            let b = Address::new(0xB00);
            for (addr, v) in [(a, 1), (a.offset(8), 2), (a, 3), (b, 1), (b.offset(8), 2)] {
                e.write(&mut m, c(0), addr, v, 10);
            }
            e.commit(&mut m, c(0), 100);
            e.last_tx_stats(c(0)).log_records
        };
        let coalesced = run(false);
        let word_granular = run(true);
        // Line-granular with the log buffer: 2 redo records (+ markers are
        // not counted in log_records? they are; compare relative).
        assert!(coalesced < word_granular, "{coalesced} vs {word_granular}");
    }

    #[test]
    fn write_set_overflow_does_not_abort_and_is_tracked() {
        let (mut m, mut e) = setup();
        // small_test L1: 2 KB, 2-way, 64 B lines -> 16 sets. Three writes to
        // the same set force an overflow.
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        for i in 0..3u64 {
            let out = e.write(
                &mut m,
                c(0),
                Address::new(0x10000 + i * set_stride),
                i,
                100 + i,
            );
            assert!(out.is_done(), "DHTM must not abort on write-set overflow");
        }
        let st = e.state(c(0));
        assert_eq!(st.write_set.len(), 3);
        assert_eq!(st.overflowed.len(), 1);
        let overflowed_line = st.overflowed.first().unwrap();
        // The overflow list in persistent memory has the address, and the
        // directory still shows core 0 as owner (sticky state).
        let thread = ThreadId::new(0);
        assert!(m
            .mem
            .domain()
            .overflow_list(thread)
            .contains(st.tx, overflowed_line));
        let dir = m.mem.llc().entry(overflowed_line).unwrap();
        assert!(dir.is_sharer(c(0)));
        assert!(dir.state.is_exclusive_like());
        // Commit persists all three lines in place.
        assert!(e.commit(&mut m, c(0), 10_000).is_done());
        for i in 0..3u64 {
            assert_eq!(
                m.mem
                    .domain()
                    .read_word(Address::new(0x10000 + i * set_stride)),
                i
            );
        }
    }

    #[test]
    fn conflict_on_overflowed_line_is_detected() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        for i in 0..3u64 {
            e.write(
                &mut m,
                c(0),
                Address::new(0x10000 + i * set_stride),
                i,
                100 + i,
            );
        }
        let overflowed_line = e.state(c(0)).overflowed.first().unwrap();
        // Another core writes the overflowed line: under first-writer-wins the
        // requester aborts even though the line is no longer in core 0's L1.
        e.begin(&mut m, c(1), &[], 0);
        let out = e.write(&mut m, c(1), overflowed_line.base(), 77, 1000);
        match out {
            StepOutcome::Aborted { reason, .. } => assert_eq!(reason, AbortReason::Conflict),
            other => panic!("expected conflict abort, got {other:?}"),
        }
        assert!(e.commit(&mut m, c(0), 5000).is_done());
    }

    #[test]
    fn abort_with_overflow_invalidates_llc_copy_and_preserves_memory() {
        let (mut m, mut e) = setup();
        let set_stride = 16 * 64u64;
        let base = 0x10000u64;
        // Pre-populate old values.
        for i in 0..3u64 {
            m.mem
                .domain_mut()
                .memory_mut()
                .write_word(Address::new(base + i * set_stride), 1000 + i);
        }
        e.begin(&mut m, c(0), &[], 0);
        for i in 0..3u64 {
            e.write(
                &mut m,
                c(0),
                Address::new(base + i * set_stride),
                i,
                100 + i,
            );
        }
        let overflowed_line = e.state(c(0)).overflowed.first().unwrap();
        assert!(m.mem.llc().entry(overflowed_line).unwrap().dirty);
        // Force an abort through the doomed marker (as a conflict would).
        e.states[0].doomed = Some(AbortReason::Conflict);
        let out = e.read(&mut m, c(0), Address::new(0x20000), 2000);
        assert!(matches!(out, StepOutcome::Aborted { .. }));
        // The overflowed speculative line is gone from the LLC.
        assert!(m.mem.llc().entry(overflowed_line).is_none());
        // Old values survive in persistent memory and after recovery.
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        for i in 0..3u64 {
            assert_eq!(
                crashed
                    .memory()
                    .read_word(Address::new(base + i * set_stride)),
                1000 + i
            );
        }
    }

    #[test]
    fn reread_of_overflowed_line_rejoins_write_set() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        for i in 0..3u64 {
            e.write(
                &mut m,
                c(0),
                Address::new(0x10000 + i * set_stride),
                50 + i,
                100 + i,
            );
        }
        let overflowed_line = e.state(c(0)).overflowed.first().unwrap();
        // Re-read the overflowed line: the value written earlier must be
        // visible and the line must re-acquire its write bit.
        let out = e.read(&mut m, c(0), overflowed_line.base(), 1000);
        assert!(out.is_done());
        let entry = m.mem.l1(c(0)).entry(overflowed_line).unwrap();
        assert!(
            entry.write_bit,
            "reread overflowed line rejoins the write set"
        );
        assert!(e.commit(&mut m, c(0), 5000).is_done());
    }

    #[test]
    fn instant_writes_variant_commits_no_later_than_default() {
        let cfg = SystemConfig::small_test();
        let commit_time = |opts: DhtmOptions| {
            let mut m = Machine::new(cfg.clone());
            let mut e = DhtmEngine::with_options(&cfg, opts);
            e.init(&mut m);
            e.begin(&mut m, c(0), &[], 0);
            for i in 0..8u64 {
                e.write(&mut m, c(0), Address::new(0x4000 + i * 64), i, 10);
            }
            match e.commit(&mut m, c(0), 100) {
                StepOutcome::Done { at } => at,
                other => panic!("{other:?}"),
            }
        };
        let normal = commit_time(DhtmOptions::paper_default());
        let instant = commit_time(DhtmOptions::instant_writes());
        assert!(instant < normal, "instant {instant} vs normal {normal}");
    }

    #[test]
    fn disabling_overflow_restores_capacity_aborts() {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = DhtmEngine::with_options(&cfg, DhtmOptions::without_overflow());
        e.init(&mut m);
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        let mut last = StepOutcome::done(0);
        for i in 0..3u64 {
            last = e.write(
                &mut m,
                c(0),
                Address::new(0x10000 + i * set_stride),
                i,
                100 + i,
            );
        }
        assert!(matches!(
            last,
            StepOutcome::Aborted {
                reason: AbortReason::Capacity,
                ..
            }
        ));
    }

    #[test]
    fn log_overflow_aborts_with_dedicated_reason() {
        let mut cfg = SystemConfig::small_test();
        cfg.log_region_records = 4;
        let mut m = Machine::new(cfg.clone());
        let mut e = DhtmEngine::new(&cfg);
        e.init(&mut m);
        e.begin(&mut m, c(0), &[], 0);
        let mut last = StepOutcome::done(0);
        for i in 0..32u64 {
            last = e.write(&mut m, c(0), Address::new(0x4000 + i * 64), i, 10 + i);
            if !last.is_done() {
                break;
            }
        }
        // Either a store or the commit hits the tiny log's capacity.
        if last.is_done() {
            last = e.commit(&mut m, c(0), 10_000);
        }
        assert!(matches!(
            last,
            StepOutcome::Aborted {
                reason: AbortReason::LogOverflow,
                ..
            }
        ));
    }

    #[test]
    fn two_cores_commit_disjoint_transactions() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        e.begin(&mut m, c(1), &[], 0);
        e.write(&mut m, c(0), Address::new(0x1000), 1, 10);
        e.write(&mut m, c(1), Address::new(0x9000), 2, 10);
        assert!(e.commit(&mut m, c(0), 100).is_done());
        assert!(e.commit(&mut m, c(1), 100).is_done());
        assert_eq!(m.mem.domain().read_word(Address::new(0x1000)), 1);
        assert_eq!(m.mem.domain().read_word(Address::new(0x9000)), 2);
    }

    #[test]
    fn fallback_path_preserves_durability() {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = DhtmEngine::new(&cfg);
        e.init(&mut m);
        e.states[0].aborts_this_tx = cfg.max_htm_retries + 1;
        assert!(e.begin(&mut m, c(0), &[], 0).is_done());
        assert!(e.in_fallback[0]);
        let addr = Address::new(0x7000);
        assert!(e.write(&mut m, c(0), addr, 5, 10).is_done());
        assert!(e.commit(&mut m, c(0), 10_000).is_done());
        assert_eq!(e.fallback_commits(), 1);
        // The fallback write is recoverable from the log even though it never
        // went through the HTM write set.
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(addr), 5);
    }
}
