//! A minimal recursive JSON value — parser and canonical writer — for the
//! workspace's structured wire formats.
//!
//! The container image has no serde, so every textual format in the tree
//! is hand-rolled. [`crate::trace::parse_line`] handles the *flat* NDJSON
//! trace schema; this module is the general form for payloads that nest
//! (the simulation service's `dhtm-svc-v1` protocol, persisted result
//! records): objects, arrays, strings and unsigned 64-bit integers —
//! exactly the vocabulary the workspace's all-integer statistics need, and
//! nothing more. No floats, no booleans, no null: absence of a lossy type
//! is what makes the canonical form byte-stable under round-trips.
//!
//! The writer is canonical: object keys render in insertion order with no
//! whitespace, so `parse(render(v)) == v` *and* `render(parse(s))` is a
//! normal form — the property the content-addressed result store's
//! byte-identity guarantee rests on.

use std::fmt;

/// Nesting depth accepted by the parser. Deep enough for any schema in the
/// tree (the deepest real payload nests four levels), shallow enough that a
/// hostile `[[[[…` frame errors out instead of exhausting the stack.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value: strings, unsigned 64-bit integers, arrays and
/// key-ordered objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// A string (escapes decoded).
    Str(String),
    /// An unsigned integer. The only number form: the workspace's stats are
    /// all-integer precisely so serialization is exact.
    UInt(u64),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object; pairs keep source/insertion order (the canonical writer
    /// preserves it, so construction order defines the normal form).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The field list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the canonical compact form: no whitespace, keys in
    /// insertion order, strings escaped minimally (`"` `\\` control
    /// characters only). `parse(render(v)) == v` for every value.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::UInt(v) => {
                out.push_str(itoa(*v).as_str());
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (one value, optional surrounding
    /// whitespace, nothing after it).
    ///
    /// # Errors
    ///
    /// Returns a message locating the first malformed construct.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn itoa(v: u64) -> String {
    v.to_string()
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == want => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                want as char, self.pos, b as char
            )),
            None => Err(format!(
                "expected '{}' at byte {}, found end of input",
                want as char, self.pos
            )),
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, String> {
        if depth > MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} at byte {}",
                self.pos
            ));
        }
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b) if b.is_ascii_digit() => Ok(JsonValue::UInt(self.uint()?)),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_ws();
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or ']' at byte {}, found {:?}",
                                self.pos,
                                other.map(|b| b as char)
                            ))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                self.skip_ws();
                let mut pairs: Vec<(String, JsonValue)> = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                loop {
                    let key = self.string()?;
                    if pairs.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate object key '{key}'"));
                    }
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                            self.skip_ws();
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(JsonValue::Object(pairs));
                        }
                        other => {
                            return Err(format!(
                                "expected ',' or '}}' at byte {}, found {:?}",
                                self.pos,
                                other.map(|b| b as char)
                            ))
                        }
                    }
                }
            }
            other => Err(format!(
                "expected a value at byte {}, found {:?}",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn uint(&mut self) -> Result<u64, String> {
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(b) = self.peek() {
            if !b.is_ascii_digit() {
                break;
            }
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(b - b'0')))
                .ok_or_else(|| format!("integer overflow at byte {start}"))?;
            self.pos += 1;
        }
        // Reject leading zeros ("007") so the canonical form is unique,
        // and bare signs/floats ("1.5", "-1", "1e3") outright.
        let text = &self.bytes[start..self.pos];
        if text.len() > 1 && text[0] == b'0' {
            return Err(format!(
                "non-canonical integer (leading zero) at byte {start}"
            ));
        }
        if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            return Err(format!(
                "floats are not part of this schema (byte {})",
                self.pos
            ));
        }
        Ok(value)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-UTF8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            // Surrogates are not valid scalar values; the
                            // writer never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!(
                                "bad escape at byte {start}: {:?}",
                                other.map(|b| b as char)
                            ))
                        }
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte 0x{b:02x} in string at {start}"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (1-4 bytes).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, JsonValue)]) -> JsonValue {
        JsonValue::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn render_parse_round_trip() {
        let v = obj(&[
            ("name", JsonValue::Str("hash \"quoted\"\n".into())),
            ("count", JsonValue::UInt(u64::MAX)),
            (
                "items",
                JsonValue::Array(vec![
                    JsonValue::UInt(0),
                    JsonValue::Str(String::new()),
                    obj(&[("nested", JsonValue::UInt(7))]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let text = v.render();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
        // Canonical: re-rendering the parse is byte-identical.
        assert_eq!(JsonValue::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , \"x\\u0041\\t\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("xA\t")
        );
    }

    #[test]
    fn accessors_behave() {
        let v = obj(&[("k", JsonValue::UInt(3))]);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::UInt(1).get("k"), None);
        assert_eq!(JsonValue::Str("s".into()).as_str(), Some("s"));
        assert!(v.as_object().is_some());
        assert!(v.as_array().is_none());
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "{\"a\":1,}",
            "true",
            "null",
            "-1",
            "1.5",
            "1e3",
            "007",
            "{\"a\":1}garbage",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"trunc \\u00",
            "{\"dup\":1,\"dup\":2}",
            "18446744073709551616",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_limit_errors_instead_of_overflowing() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert!(JsonValue::parse(&deep).unwrap_err().contains("nesting"));
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn control_characters_render_as_escapes() {
        let v = JsonValue::Str("\u{1}\u{1f}".into());
        assert_eq!(v.render(), "\"\\u0001\\u001f\"");
        assert_eq!(JsonValue::parse(&v.render()).unwrap(), v);
    }
}
