//! Structured NDJSON trace events with a versioned schema and a bounded
//! ring buffer for long runs.
//!
//! One [`TraceEvent`] is one NDJSON line: a flat JSON object whose
//! reserved keys are `schema` (always [`TRACE_SCHEMA`]), `kind`, `cell`,
//! `cycle` and optionally `core`, followed by event-specific numeric
//! fields. Keeping the object flat means the hand-rolled validator
//! ([`validate_line`]) can fully parse every line — strings and unsigned
//! integers only, no nesting — which is what the CI trace gate runs over
//! the harness's emitted file.

use std::fmt::Write as _;

/// The trace schema identifier carried by every emitted line. Bump the
/// suffix when the line format changes incompatibly.
pub const TRACE_SCHEMA: &str = "dhtm-trace-v1";

/// Default ring-buffer capacity of a [`TraceWriter`]: enough for every
/// event of a quick-mode matrix, bounded for paper-scale runs.
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind: `begin`, `commit`, `abort`, `durable`, `crash_point`,
    /// `probes` or `run_end`.
    pub kind: String,
    /// The run/cell label the event belongs to (experiment cell
    /// coordinates, spec label, ...).
    pub cell: String,
    /// The core the event happened on, when it is core-attributed.
    pub core: Option<usize>,
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Event-specific numeric fields, emitted in the given order.
    pub fields: Vec<(String, u64)>,
}

impl TraceEvent {
    /// A new event with no extra fields.
    pub fn new(kind: impl Into<String>, cell: impl Into<String>, cycle: u64) -> Self {
        TraceEvent {
            kind: kind.into(),
            cell: cell.into(),
            core: None,
            cycle,
            fields: Vec::new(),
        }
    }

    /// Sets the core attribution (builder-style).
    pub fn on_core(mut self, core: usize) -> Self {
        self.core = Some(core);
        self
    }

    /// Appends a numeric field (builder-style).
    pub fn field(mut self, name: impl Into<String>, value: u64) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    /// Renders the event as one NDJSON line (no trailing newline).
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.len() * 24);
        let _ = write!(
            out,
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"kind\":\"{}\",\"cell\":\"{}\"",
            escape(&self.kind),
            escape(&self.cell),
        );
        if let Some(core) = self.core {
            let _ = write!(out, ",\"core\":{core}");
        }
        let _ = write!(out, ",\"cycle\":{}", self.cycle);
        for (name, value) in &self.fields {
            let _ = write!(out, ",\"{}\":{value}", escape(name));
        }
        out.push('}');
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A bounded ring buffer of trace events rendered to NDJSON on demand.
///
/// Long runs emit far more events than anyone replays; the writer keeps the
/// most recent `capacity` events and counts what it dropped, so the memory
/// bound is fixed no matter how long the simulation runs.
#[derive(Debug, Clone)]
pub struct TraceWriter {
    capacity: usize,
    events: std::collections::VecDeque<TraceEvent>,
    seen: u64,
    dropped: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceWriter {
    /// A writer retaining at most `capacity` events (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceWriter {
            capacity,
            events: std::collections::VecDeque::new(),
            seen: 0,
            dropped: 0,
        }
    }

    /// Records one event, dropping the oldest retained event when full.
    pub fn record(&mut self, event: TraceEvent) {
        self.seen += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever recorded (retained + dropped).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Events dropped by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Renders every retained event as NDJSON lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.events.iter().map(TraceEvent::to_ndjson).collect()
    }
}

/// A scalar value parsed back from a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceScalar {
    /// A JSON string.
    Str(String),
    /// A JSON unsigned integer.
    UInt(u64),
}

/// Parses one flat trace-line JSON object into `(key, value)` pairs in
/// source order. Accepts exactly the subset [`TraceEvent::to_ndjson`]
/// emits: one object of string keys mapping to strings or unsigned
/// integers, no nesting, no trailing garbage.
///
/// # Errors
///
/// Returns a message locating the first malformed construct.
pub fn parse_line(line: &str) -> Result<Vec<(String, TraceScalar)>, String> {
    let mut chars = line.trim().char_indices().peekable();
    let mut pairs = Vec::new();

    let expect = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
                  want: char|
     -> Result<(), String> {
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected '{want}' at byte {i}, found '{c}'")),
            None => Err(format!("expected '{want}', found end of line")),
        }
    };

    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (j, d) = chars
                                .next()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            code = code * 16
                                + d.to_digit(16)
                                    .ok_or_else(|| format!("bad hex digit at byte {j}"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid \\u code point {code:#x}"))?,
                        );
                    }
                    other => return Err(format!("bad escape at byte {i}: {other:?}")),
                },
                Some((i, c)) if (c as u32) < 0x20 => {
                    return Err(format!("unescaped control character at byte {i}"))
                }
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn parse_uint(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<u64, String> {
        let mut value: u64 = 0;
        let mut digits = 0;
        while let Some(&(_, c)) = chars.peek() {
            let Some(d) = c.to_digit(10) else { break };
            chars.next();
            value = value
                .checked_mul(10)
                .and_then(|v| v.checked_add(u64::from(d)))
                .ok_or_else(|| "integer overflows u64".to_string())?;
            digits += 1;
        }
        if digits == 0 {
            Err("expected an unsigned integer".to_string())
        } else {
            Ok(value)
        }
    }

    expect(&mut chars, '{')?;
    loop {
        let key = parse_string(&mut chars)?;
        expect(&mut chars, ':')?;
        let value = match chars.peek() {
            Some((_, '"')) => TraceScalar::Str(parse_string(&mut chars)?),
            Some((_, c)) if c.is_ascii_digit() => TraceScalar::UInt(parse_uint(&mut chars)?),
            other => {
                return Err(format!(
                    "expected string or unsigned integer, found {other:?}"
                ))
            }
        };
        pairs.push((key, value));
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', found {other:?}")),
        }
    }
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing garbage '{c}' at byte {i}"));
    }
    Ok(pairs)
}

/// Validates one NDJSON trace line against [`TRACE_SCHEMA`]: the line must
/// parse as a flat object, carry `schema == dhtm-trace-v1`, a non-empty
/// string `kind`, a string `cell`, an unsigned `cycle`, an unsigned `core`
/// if present, and nothing but unsigned integers elsewhere.
///
/// # Errors
///
/// Returns a message naming the violated constraint.
pub fn validate_line(line: &str) -> Result<(), String> {
    let pairs = parse_line(line)?;
    let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v);
    match get("schema") {
        Some(TraceScalar::Str(s)) if s == TRACE_SCHEMA => {}
        Some(TraceScalar::Str(s)) => return Err(format!("schema '{s}' != '{TRACE_SCHEMA}'")),
        _ => return Err("missing string field 'schema'".to_string()),
    }
    match get("kind") {
        Some(TraceScalar::Str(s)) if !s.is_empty() => {}
        _ => return Err("missing non-empty string field 'kind'".to_string()),
    }
    if !matches!(get("cell"), Some(TraceScalar::Str(_))) {
        return Err("missing string field 'cell'".to_string());
    }
    if !matches!(get("cycle"), Some(TraceScalar::UInt(_))) {
        return Err("missing unsigned field 'cycle'".to_string());
    }
    for (key, value) in &pairs {
        match key.as_str() {
            "schema" | "kind" | "cell" => {}
            _ if matches!(value, TraceScalar::UInt(_)) => {}
            other => return Err(format!("field '{other}' must be an unsigned integer")),
        }
    }
    Ok(())
}

/// Parses a validated line back into a [`TraceEvent`] (the inverse of
/// [`TraceEvent::to_ndjson`], used by the round-trip tests).
///
/// # Errors
///
/// Returns the first validation error.
pub fn event_from_line(line: &str) -> Result<TraceEvent, String> {
    validate_line(line)?;
    let pairs = parse_line(line)?;
    let mut event = TraceEvent::new("", "", 0);
    for (key, value) in pairs {
        match (key.as_str(), value) {
            ("schema", _) => {}
            ("kind", TraceScalar::Str(s)) => event.kind = s,
            ("cell", TraceScalar::Str(s)) => event.cell = s,
            ("core", TraceScalar::UInt(v)) => event.core = Some(v as usize),
            ("cycle", TraceScalar::UInt(v)) => event.cycle = v,
            (_, TraceScalar::UInt(v)) => event.fields.push((key, v)),
            (k, TraceScalar::Str(_)) => return Err(format!("unexpected string field '{k}'")),
        }
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_render_the_versioned_schema() {
        let line = TraceEvent::new("commit", "fig5/so/hash", 1234)
            .on_core(3)
            .field("committed", 7)
            .to_ndjson();
        assert_eq!(
            line,
            "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"commit\",\"cell\":\"fig5/so/hash\",\
             \"core\":3,\"cycle\":1234,\"committed\":7}"
        );
        assert!(validate_line(&line).is_ok());
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let event = TraceEvent::new("abort", "cell \"x\"\n", 42)
            .on_core(0)
            .field("reason", 2)
            .field("retry_at", 99);
        let back = event_from_line(&event.to_ndjson()).unwrap();
        assert_eq!(back, event);
        // And without core attribution.
        let bare = TraceEvent::new("probes", "c", u64::MAX);
        assert_eq!(event_from_line(&bare.to_ndjson()).unwrap(), bare);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for (line, why) in [
            ("", "empty"),
            ("{\"kind\":\"x\"}", "no schema"),
            (
                "{\"schema\":\"dhtm-trace-v0\",\"kind\":\"x\",\"cell\":\"c\",\"cycle\":1}",
                "wrong schema version",
            ),
            (
                "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"\",\"cell\":\"c\",\"cycle\":1}",
                "empty kind",
            ),
            (
                "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"x\",\"cell\":\"c\"}",
                "missing cycle",
            ),
            (
                "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"x\",\"cell\":\"c\",\"cycle\":-1}",
                "negative cycle",
            ),
            (
                "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"x\",\"cell\":\"c\",\"cycle\":1,\"f\":\"s\"}",
                "string extra field",
            ),
            (
                "{\"schema\":\"dhtm-trace-v1\",\"kind\":\"x\",\"cell\":\"c\",\"cycle\":1}}",
                "trailing garbage",
            ),
            ("not json", "not json"),
        ] {
            assert!(validate_line(line).is_err(), "accepted {why}: {line}");
        }
    }

    #[test]
    fn ring_buffer_bounds_memory_and_counts_drops() {
        let mut w = TraceWriter::with_capacity(3);
        for i in 0..10u64 {
            w.record(TraceEvent::new("begin", "c", i));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.seen(), 10);
        assert_eq!(w.dropped(), 7);
        let cycles: Vec<u64> = w.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "oldest events dropped first");
        assert_eq!(w.lines().len(), 3);
        assert!(!w.is_empty());
    }

    #[test]
    fn default_capacity_is_bounded_and_positive() {
        let w = TraceWriter::default();
        assert!(w.is_empty());
        assert_eq!(w.seen(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        TraceWriter::with_capacity(0);
    }

    #[test]
    fn parse_line_handles_escapes_and_overflow() {
        let pairs = parse_line("{\"a\":\"x\\u0041\\n\",\"b\":18446744073709551615}").unwrap();
        assert_eq!(pairs[0].1, TraceScalar::Str("xA\n".to_string()));
        assert_eq!(pairs[1].1, TraceScalar::UInt(u64::MAX));
        assert!(parse_line("{\"b\":18446744073709551616}").is_err());
    }
}
