#![forbid(unsafe_code)]
//! # dhtm-obs
//!
//! The observability layer: named probes, structured traces and profile
//! tables for the simulator's hot components.
//!
//! The crate sits at the very bottom of the workspace (it depends only on
//! `dhtm_types`), so every component crate — the memory channel, the log
//! buffer, the caches, the coherence layer, the engines — can surface its
//! counters through one vocabulary without dependency cycles:
//!
//! * [`probe::ProbeRegistry`] — a registry of named monotonic counters and
//!   [`probe::PowHistogram`] power-of-two-bucket cycle histograms, with
//!   `scope/component/name` naming (e.g. `core3/log_buffer/peak_occupancy`)
//!   and cheap snapshot/delta semantics.
//! * [`trace::TraceWriter`] — a bounded ring buffer of structured
//!   [`trace::TraceEvent`]s rendered as NDJSON under a versioned schema
//!   ([`trace::TRACE_SCHEMA`]), with a hand-rolled per-line validator (the
//!   container has no serde) used by tests and the CI trace gate.
//! * [`profile`] — end-of-run text tables over flattened probe values
//!   (the `--profile` output of the experiment harness).
//! * [`json::JsonValue`] — a minimal recursive JSON value (objects, arrays,
//!   strings, unsigned integers) with a canonical compact writer, for the
//!   workspace's *nested* wire formats: the simulation service's
//!   `dhtm-svc-v1` protocol and its persisted result records. The flat
//!   trace validator above predates it and stays byte-for-byte unchanged.
//!
//! Components themselves keep plain integer counters that are always on
//! (the same discipline as the coherence layer's `MemStats`: a handful of
//! adds per event, validated as ~zero-cost by the checked-in perf
//! trajectory gate). The registry, trace and profile machinery only runs
//! when a caller asks for it after a run — uninstrumented runs never build
//! a registry, never format a string, never touch this crate's code.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod json;
pub mod probe;
pub mod profile;
pub mod trace;

pub use json::JsonValue;
pub use probe::{PowHistogram, ProbeRegistry, ProbeSnapshot, ProbeValue};
pub use trace::{
    event_from_line, parse_line, validate_line, TraceEvent, TraceWriter, TRACE_SCHEMA,
};
