//! Named probes: monotonic counters and power-of-two cycle histograms.
//!
//! Probe names are slash-separated paths — `scope/component/metric`, e.g.
//! `channel/busy_cycles` or `core3/l1/hits`. The registry is a plain
//! `BTreeMap`, so iteration (and therefore every serialised form) is in
//! deterministic name order. It is filled *after* a run from the
//! components' own always-on integer counters; nothing on the simulation
//! hot path ever touches a registry.

use std::collections::BTreeMap;

/// Number of histogram buckets: one for the value 0 plus one per possible
/// bit length of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket 0 holds the value 0; bucket `i` (1..=64) holds values in
/// `[2^(i-1), 2^i)`. Recording is one `leading_zeros` plus an indexed add,
/// cheap enough to live in cold per-transaction paths (log-buffer drains,
/// commit persist waits). The histogram also tracks count, sum and max so
/// summaries never need a bucket walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for PowHistogram {
    fn default() -> Self {
        PowHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl PowHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    #[inline]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The half-open value range `[lo, hi)` covered by bucket `index`
    /// (`hi` is `u64::MAX` for the last bucket, whose true bound does not
    /// fit the type).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 1),
            64 => (1 << 63, u64::MAX),
            i => (1 << (i - 1), 1 << i),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation; 0.0 when empty (never NaN).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(lower_bound, count)` pairs in ascending
    /// value order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bounds(i).0, c))
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &PowHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The bucket-wise difference `self - earlier` for two snapshots of the
    /// same monotonically growing histogram. `max` cannot be un-recorded,
    /// so the delta keeps the later max.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not a prefix of `self` (a bucket would go
    /// negative) — snapshots of a monotonic probe can never regress.
    pub fn delta_since(&self, earlier: &PowHistogram) -> PowHistogram {
        let mut out = PowHistogram::new();
        for (i, (b, e)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[i] = b
                .checked_sub(*e)
                .expect("histogram snapshots are monotonic");
        }
        out.count = self.count - earlier.count;
        out.sum = self.sum - earlier.sum;
        out.max = self.max;
        out
    }
}

/// One registered probe value.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeValue {
    /// A monotonic counter (or a high-water mark, which is monotonic too).
    Counter(u64),
    /// A power-of-two-bucket histogram (boxed: the inline bucket array
    /// would otherwise dwarf the `Counter` variant).
    Histogram(Box<PowHistogram>),
}

impl ProbeValue {
    /// The counter value, or `None` for a histogram.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            ProbeValue::Counter(v) => Some(*v),
            ProbeValue::Histogram(_) => None,
        }
    }

    /// The histogram, or `None` for a counter.
    pub fn as_histogram(&self) -> Option<&PowHistogram> {
        match self {
            ProbeValue::Counter(_) => None,
            ProbeValue::Histogram(h) => Some(h),
        }
    }
}

/// A registry of named probes with per-core/per-component scoped names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeRegistry {
    entries: BTreeMap<String, ProbeValue>,
}

impl ProbeRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name`, creating it at 0 first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(ProbeValue::Counter(0))
        {
            ProbeValue::Counter(v) => *v += delta,
            ProbeValue::Histogram(_) => panic!("probe '{name}' is a histogram, not a counter"),
        }
    }

    /// Sets the counter `name` to `value` (for high-water marks and other
    /// values that are computed rather than accumulated).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a histogram.
    pub fn set(&mut self, name: &str, value: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(ProbeValue::Counter(0))
        {
            ProbeValue::Counter(v) => *v = value,
            ProbeValue::Histogram(_) => panic!("probe '{name}' is a histogram, not a counter"),
        }
    }

    /// Records one observation into the histogram `name`, creating it
    /// empty first.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn record(&mut self, name: &str, value: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| ProbeValue::Histogram(Box::default()))
        {
            ProbeValue::Histogram(h) => h.record(value),
            ProbeValue::Counter(_) => panic!("probe '{name}' is a counter, not a histogram"),
        }
    }

    /// Merges a component-owned histogram into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a counter.
    pub fn merge_histogram(&mut self, name: &str, hist: &PowHistogram) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| ProbeValue::Histogram(Box::default()))
        {
            ProbeValue::Histogram(h) => h.merge(hist),
            ProbeValue::Counter(_) => panic!("probe '{name}' is a counter, not a histogram"),
        }
    }

    /// Looks up a probe by name.
    pub fn get(&self, name: &str) -> Option<&ProbeValue> {
        self.entries.get(name)
    }

    /// The counter `name`, or 0 when absent (histograms read as 0 too).
    pub fn counter(&self, name: &str) -> u64 {
        self.get(name).and_then(ProbeValue::as_counter).unwrap_or(0)
    }

    /// Iterates `(name, value)` in deterministic (sorted) name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ProbeValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered probes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no probe has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A point-in-time snapshot for later delta computation.
    pub fn snapshot(&self) -> ProbeSnapshot {
        ProbeSnapshot {
            entries: self.entries.clone(),
        }
    }

    /// Flattens every probe to `(name, u64)` pairs in sorted name order:
    /// counters verbatim, histograms as `name/count`, `name/sum` and
    /// `name/max`. This is the form result rows and trace events carry.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (name, value) in &self.entries {
            match value {
                ProbeValue::Counter(v) => out.push((name.clone(), *v)),
                ProbeValue::Histogram(h) => {
                    out.push((format!("{name}/count"), h.count()));
                    out.push((format!("{name}/sum"), h.sum()));
                    out.push((format!("{name}/max"), h.max()));
                }
            }
        }
        out
    }
}

/// Builds a scoped probe name: `scope("core3", "l1", "hits")` →
/// `"core3/l1/hits"`. Collection-time only — never on the hot path.
pub fn scope(parts: &[&str]) -> String {
    parts.join("/")
}

/// A point-in-time copy of a [`ProbeRegistry`], comparable and
/// subtractable: `later.delta_since(&earlier)` yields the activity between
/// the two snapshots.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProbeSnapshot {
    entries: BTreeMap<String, ProbeValue>,
}

impl ProbeSnapshot {
    /// Iterates `(name, value)` in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ProbeValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of snapshotted probes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The probe-wise difference `self - earlier`. Probes absent from
    /// `earlier` are taken whole; counters subtract, histograms subtract
    /// bucket-wise.
    ///
    /// # Panics
    ///
    /// Panics if a counter or histogram regressed between the snapshots,
    /// or a probe changed type — monotonic probes cannot do either.
    pub fn delta_since(&self, earlier: &ProbeSnapshot) -> ProbeSnapshot {
        let mut entries = BTreeMap::new();
        for (name, value) in &self.entries {
            let delta = match (value, earlier.entries.get(name)) {
                (v, None) => v.clone(),
                (ProbeValue::Counter(now), Some(ProbeValue::Counter(then))) => ProbeValue::Counter(
                    now.checked_sub(*then)
                        .expect("counter snapshots are monotonic"),
                ),
                (ProbeValue::Histogram(now), Some(ProbeValue::Histogram(then))) => {
                    ProbeValue::Histogram(Box::new(now.delta_since(then)))
                }
                _ => panic!("probe '{name}' changed type between snapshots"),
            };
            entries.insert(name.clone(), delta);
        }
        ProbeSnapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_length() {
        assert_eq!(PowHistogram::bucket_of(0), 0);
        assert_eq!(PowHistogram::bucket_of(1), 1);
        assert_eq!(PowHistogram::bucket_of(2), 2);
        assert_eq!(PowHistogram::bucket_of(3), 2);
        assert_eq!(PowHistogram::bucket_of(4), 3);
        assert_eq!(PowHistogram::bucket_of(1023), 10);
        assert_eq!(PowHistogram::bucket_of(1024), 11);
        assert_eq!(PowHistogram::bucket_of(u64::MAX), 64);
        // Bounds agree with the bucketing function.
        for v in [0u64, 1, 2, 3, 7, 8, 1 << 20, u64::MAX - 1] {
            let (lo, hi) = PowHistogram::bucket_bounds(PowHistogram::bucket_of(v));
            assert!(lo <= v && (v < hi || hi == u64::MAX), "{v} in [{lo},{hi})");
        }
    }

    #[test]
    fn histogram_summary_statistics() {
        let mut h = PowHistogram::new();
        for v in [0u64, 1, 5, 10, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 116);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 23.2).abs() < 1e-9);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (4, 1), (8, 1), (64, 1)]);
        assert_eq!(PowHistogram::new().mean(), 0.0);
    }

    #[test]
    fn histogram_merge_and_delta_invert() {
        let mut early = PowHistogram::new();
        early.record(3);
        early.record(40);
        let mut late = early.clone();
        late.record(500);
        late.record(0);
        let delta = late.delta_since(&early);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum(), 500);
        let mut rebuilt = early.clone();
        rebuilt.merge(&delta);
        assert_eq!(rebuilt.count(), late.count());
        assert_eq!(rebuilt.sum(), late.sum());
    }

    #[test]
    fn registry_counters_accumulate_and_flatten_sorted() {
        let mut reg = ProbeRegistry::new();
        reg.add("core1/l1/hits", 2);
        reg.add("channel/busy_cycles", 10);
        reg.add("core1/l1/hits", 3);
        reg.set("core0/log_buffer/peak", 7);
        assert_eq!(reg.counter("core1/l1/hits"), 5);
        assert_eq!(reg.counter("missing"), 0);
        let flat = reg.flatten();
        let names: Vec<&str> = flat.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "channel/busy_cycles",
                "core0/log_buffer/peak",
                "core1/l1/hits"
            ]
        );
        assert!(!reg.is_empty());
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn registry_histograms_flatten_to_summary_fields() {
        let mut reg = ProbeRegistry::new();
        reg.record("log_buffer/drain_cycles", 12);
        reg.record("log_buffer/drain_cycles", 20);
        let flat = reg.flatten();
        assert_eq!(
            flat,
            vec![
                ("log_buffer/drain_cycles/count".to_string(), 2),
                ("log_buffer/drain_cycles/sum".to_string(), 32),
                ("log_buffer/drain_cycles/max".to_string(), 20),
            ]
        );
    }

    #[test]
    fn snapshot_delta_isolates_the_window() {
        let mut reg = ProbeRegistry::new();
        reg.add("a", 5);
        reg.record("h", 100);
        let before = reg.snapshot();
        reg.add("a", 7);
        reg.add("b", 1);
        reg.record("h", 3);
        let delta = reg.snapshot().delta_since(&before);
        let a = delta.iter().find(|(n, _)| *n == "a").unwrap().1;
        assert_eq!(a.as_counter(), Some(7));
        let b = delta.iter().find(|(n, _)| *n == "b").unwrap().1;
        assert_eq!(b.as_counter(), Some(1));
        let h = delta.iter().find(|(n, _)| *n == "h").unwrap().1;
        assert_eq!(h.as_histogram().unwrap().count(), 1);
        assert_eq!(h.as_histogram().unwrap().sum(), 3);
    }

    #[test]
    #[should_panic(expected = "is a histogram")]
    fn counter_histogram_name_clash_panics() {
        let mut reg = ProbeRegistry::new();
        reg.record("x", 1);
        reg.add("x", 1);
    }

    #[test]
    fn scope_joins_with_slashes() {
        assert_eq!(scope(&["core3", "l1", "hits"]), "core3/l1/hits");
    }
}
