//! End-of-run profile tables over flattened probe values.
//!
//! The harness's `--profile` flag renders the component-stat snapshot of a
//! run (or the sum over a whole experiment matrix) as an aligned text
//! table, grouped by the probe name's leading scope segment so per-core
//! probes sit together under their core.

use crate::probe::{ProbeSnapshot, ProbeValue};

/// Renders flattened `(name, value)` probe pairs as table lines: a header,
/// then one aligned row per probe with a blank-line break between leading
/// scope segments. Pairs are sorted by name first, so callers can pass
/// accumulations in any order.
pub fn render_flat(pairs: &[(String, u64)]) -> Vec<String> {
    let mut sorted: Vec<&(String, u64)> = pairs.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    let width = sorted
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(5)
        .max(5);
    let mut lines = vec![format!("| {:<width$} | {:>16} |", "probe", "value")];
    let mut last_scope: Option<&str> = None;
    for (name, value) in sorted {
        let scope = name.split('/').next().unwrap_or(name);
        if last_scope.is_some_and(|s| s != scope) {
            lines.push(format!("| {:<width$} | {:>16} |", "", ""));
        }
        last_scope = Some(scope);
        lines.push(format!("| {name:<width$} | {value:>16} |"));
    }
    lines
}

/// Renders a [`ProbeSnapshot`] as a profile table: counters verbatim,
/// histograms summarised as count/sum/max rows (matching
/// [`crate::probe::ProbeRegistry::flatten`]).
pub fn render_snapshot(snapshot: &ProbeSnapshot) -> Vec<String> {
    let mut pairs = Vec::with_capacity(snapshot.len());
    for (name, value) in snapshot.iter() {
        match value {
            ProbeValue::Counter(v) => pairs.push((name.to_string(), *v)),
            ProbeValue::Histogram(h) => {
                pairs.push((format!("{name}/count"), h.count()));
                pairs.push((format!("{name}/sum"), h.sum()));
                pairs.push((format!("{name}/max"), h.max()));
            }
        }
    }
    render_flat(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::ProbeRegistry;

    #[test]
    fn table_is_sorted_aligned_and_scope_grouped() {
        let pairs = vec![
            ("core1/l1/hits".to_string(), 10),
            ("channel/busy_cycles".to_string(), 999),
            ("core0/l1/hits".to_string(), 5),
        ];
        let lines = render_flat(&pairs);
        assert_eq!(lines.len(), 1 + 3 + 2, "header + rows + 2 scope breaks");
        assert!(lines[0].contains("probe"));
        assert!(lines[1].contains("channel/busy_cycles"));
        assert!(lines[1].contains("999"));
        // Scope break between channel and core0, and between core0 and core1.
        assert!(lines[2].trim_matches(['|', ' ']).is_empty());
        assert!(lines[3].contains("core0/l1/hits"));
        // All rows align to the same width.
        let widths: Vec<usize> = lines.iter().map(String::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{lines:?}");
    }

    #[test]
    fn snapshot_rendering_matches_flatten() {
        let mut reg = ProbeRegistry::new();
        reg.add("c", 3);
        reg.record("h", 8);
        let via_snapshot = render_snapshot(&reg.snapshot());
        let via_flatten = render_flat(&reg.flatten());
        assert_eq!(via_snapshot, via_flatten);
    }

    #[test]
    fn empty_input_renders_just_the_header() {
        assert_eq!(render_flat(&[]).len(), 1);
    }
}
