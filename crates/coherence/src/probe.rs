//! Coherence probes and transactional conflict arbitration.
//!
//! Conflict detection in the paper happens at the L1 controller of the core
//! that currently holds a line, when a forwarded request or invalidation
//! arrives (Section II-A). The memory system cannot decide the outcome by
//! itself because the resolution depends on transactional state that lives in
//! the engines (transaction status, conflict-resolution policy, the read-set
//! overflow signature). It therefore describes each probe with a
//! [`ProbeInfo`] and asks a [`ConflictArbiter`] — implemented by every
//! transaction engine — for a [`ProbeDecision`].

use dhtm_types::addr::LineAddr;
use dhtm_types::ids::CoreId;

/// The kind of coherence message delivered to the holder of a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Fwd-GetS: another core wants a shared (read-only) copy of a line this
    /// core owns.
    FwdGetS,
    /// Fwd-GetM: another core wants an exclusive (writable) copy of a line
    /// this core owns.
    FwdGetM,
    /// Inv: another core is upgrading a shared line to modified, so this
    /// core's read-only copy must be invalidated.
    Invalidate,
}

impl ProbeKind {
    /// Whether the probe is caused by a write request.
    pub fn is_write_request(self) -> bool {
        matches!(self, ProbeKind::FwdGetM | ProbeKind::Invalidate)
    }
}

/// Everything the memory system knows about a probe when it asks the engine
/// to arbitrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeInfo {
    /// The core whose request triggered the probe.
    pub requester: CoreId,
    /// The core receiving the probe (the current holder per the directory).
    pub holder: CoreId,
    /// The line in question.
    pub line: LineAddr,
    /// The kind of message delivered.
    pub kind: ProbeKind,
    /// Whether the holder's L1 still caches the line. `false` means the
    /// directory state is stale — for DHTM this is precisely the signal that
    /// the line overflowed to the LLC while remaining in the holder's write
    /// set (Section III-C), or that a read-set line was evicted and is now
    /// tracked only by the holder's overflow signature.
    pub holder_has_line: bool,
    /// The holder's transactional write bit for the line (false if absent).
    pub holder_write_bit: bool,
    /// The holder's transactional read bit for the line (false if absent).
    pub holder_read_bit: bool,
    /// Whether the holder's L1 copy is dirty (false if absent).
    pub holder_dirty: bool,
}

/// The engine's ruling on a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeDecision {
    /// No transactional conflict (or the conflict was resolved in favour of
    /// the requester by a non-transactional holder): the protocol action
    /// proceeds normally.
    Proceed,
    /// Conflict resolved in favour of the holder: the requesting access is
    /// cancelled and the requester's transaction must abort.
    AbortRequester,
    /// Conflict resolved in favour of the requester: the protocol action
    /// proceeds and the holder's transaction is doomed; the engine is
    /// responsible for aborting it.
    AbortHolder,
    /// The holder NACKs the request (LogTM-style). No state changes; the
    /// requester should retry later.
    Nack,
}

/// The conflict arbitration interface implemented by every transaction
/// engine.
pub trait ConflictArbiter {
    /// Decides the outcome of a probe. Called while the memory system is in
    /// the middle of an access; implementations must not touch the memory
    /// system, only their own transactional metadata.
    fn decide(&mut self, probe: &ProbeInfo) -> ProbeDecision;
}

/// An arbiter that never reports conflicts — the behaviour of a system with
/// no transactions in flight (and the correct arbiter for purely
/// lock-based designs, whose isolation comes from locks rather than from
/// coherence).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoConflicts;

impl ConflictArbiter for NoConflicts {
    fn decide(&mut self, _probe: &ProbeInfo) -> ProbeDecision {
        ProbeDecision::Proceed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_kind_write_classification() {
        assert!(!ProbeKind::FwdGetS.is_write_request());
        assert!(ProbeKind::FwdGetM.is_write_request());
        assert!(ProbeKind::Invalidate.is_write_request());
    }

    #[test]
    fn no_conflicts_always_proceeds() {
        let mut arb = NoConflicts;
        let probe = ProbeInfo {
            requester: CoreId::new(0),
            holder: CoreId::new(1),
            line: LineAddr::new(4),
            kind: ProbeKind::FwdGetM,
            holder_has_line: true,
            holder_write_bit: true,
            holder_read_bit: false,
            holder_dirty: true,
        };
        assert_eq!(arb.decide(&probe), ProbeDecision::Proceed);
    }
}
