#![forbid(unsafe_code)]
//! # dhtm-coherence
//!
//! The MESI directory coherence protocol with forwarding, built over the
//! structures of `dhtm-cache` and the persistence domain of `dhtm-nvm`.
//!
//! The central type is [`memsys::MemorySystem`]: the private L1s, the shared
//! LLC with its embedded directory, persistent memory and the shared
//! bandwidth-limited memory channel, together with the protocol logic that
//! moves cache lines between them and charges latencies.
//!
//! HTM conflict detection piggybacks on coherence (Section II-A of the
//! paper): whenever the protocol must forward or invalidate a line held by
//! another core, the memory system consults a [`probe::ConflictArbiter`]
//! (implemented by each transaction engine) which inspects the holder's
//! transactional state and decides whether the request proceeds, is refused
//! (requester aborts), kills the holder's transaction, or is NACKed
//! (LogTM-style stalling). The "sticky" directory state that DHTM relies on
//! for detecting conflicts on overflowed write-set lines is reported to the
//! arbiter as a probe for a line the holder no longer caches.
//!
//! ## Example
//!
//! ```
//! use dhtm_coherence::memsys::MemorySystem;
//! use dhtm_coherence::probe::NoConflicts;
//! use dhtm_types::config::SystemConfig;
//! use dhtm_types::{Address, CoreId};
//!
//! let mut mem = MemorySystem::new(&SystemConfig::small_test());
//! let mut arb = NoConflicts;
//! let out = mem.store(CoreId::new(0), Address::new(0x80).line(), 0, &mut arb);
//! assert!(!out.aborted_by_conflict);
//! mem.write_word_in_l1(CoreId::new(0), Address::new(0x80), 7);
//! let rd = mem.load(CoreId::new(0), Address::new(0x80).line(), out.done, &mut arb);
//! assert!(rd.l1_hit());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod memsys;
pub mod probe;

pub use memsys::{AccessOutcome, HitLevel, MemorySystem};
pub use probe::{ConflictArbiter, NoConflicts, ProbeDecision, ProbeInfo, ProbeKind};
