//! The memory system: private L1s, shared LLC/directory, persistent memory
//! and the bandwidth-limited memory channel, tied together by a MESI
//! directory protocol with forwarding.
//!
//! All protocol actions are processed atomically (no transient states) but
//! charge realistic latencies from [`LatencyConfig`]; transfers to and from
//! persistent memory additionally occupy the shared [`MemoryChannel`], which
//! is how log-write and write-back traffic contends with demand fills
//! (Section VI-D of the paper).

use dhtm_cache::l1::{L1Cache, L1Entry};
use dhtm_cache::llc::{DirectoryEntry, LlcCache};
use dhtm_cache::mesi::MesiState;
use dhtm_nvm::bandwidth::MemoryChannel;
use dhtm_nvm::domain::PersistentDomain;
use dhtm_types::addr::{Address, LineAddr, LineData, LINE_SIZE};
use dhtm_types::config::{LatencyConfig, SystemConfig};
use dhtm_types::ids::CoreId;

use crate::probe::{ConflictArbiter, ProbeDecision, ProbeInfo, ProbeKind};

/// Which level of the hierarchy satisfied an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Satisfied by the requesting core's L1.
    L1,
    /// Satisfied by the LLC (including upgrades and cache-to-cache forwards).
    Llc,
    /// Required a persistent-memory fill.
    Memory,
}

/// The result of a load or store access.
#[derive(Debug, Clone)]
pub struct AccessOutcome {
    /// Cycle at which the access completes.
    pub done: u64,
    /// Level that satisfied the access.
    pub hit_level: HitLevel,
    /// The access was cancelled because the arbiter resolved a conflict in
    /// favour of the holder; the requester's transaction must abort. No
    /// protocol state was changed.
    pub aborted_by_conflict: bool,
    /// The access was NACKed (LogTM-style); retry later. No state changed.
    pub nacked: bool,
    /// Holders whose transactions lost the conflict; the engine must abort
    /// them.
    pub holders_to_abort: Vec<CoreId>,
    /// A line evicted from the requester's L1 to make room for the fill. The
    /// engine decides what the eviction means (write-back, overflow, abort).
    pub evicted_victim: Option<(LineAddr, L1Entry)>,
    /// The requester re-fetched a line that it itself had overflowed to the
    /// LLC earlier in the same transaction (the directory still names it as
    /// owner). DHTM must re-mark the line as write-set (Section III-C).
    pub reread_own_overflow: bool,
}

impl AccessOutcome {
    fn new(done: u64, hit_level: HitLevel) -> Self {
        AccessOutcome {
            done,
            hit_level,
            aborted_by_conflict: false,
            nacked: false,
            holders_to_abort: Vec::new(),
            evicted_victim: None,
            reread_own_overflow: false,
        }
    }

    fn cancelled(done: u64, nacked: bool) -> Self {
        AccessOutcome {
            done,
            hit_level: HitLevel::Llc,
            aborted_by_conflict: !nacked,
            nacked,
            holders_to_abort: Vec::new(),
            evicted_victim: None,
            reread_own_overflow: false,
        }
    }

    /// Whether the access hit in the requester's L1.
    pub fn l1_hit(&self) -> bool {
        matches!(self.hit_level, HitLevel::L1)
    }

    /// Whether the access proceeded (was neither cancelled nor NACKed).
    pub fn proceeded(&self) -> bool {
        !self.aborted_by_conflict && !self.nacked
    }
}

/// Memory-system statistics (fed into the run statistics by the simulator).
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Loads/stores that hit in the requesting L1.
    pub l1_hits: u64,
    /// Loads/stores that missed the requesting L1.
    pub l1_misses: u64,
    /// L1 misses satisfied by the LLC.
    pub llc_hits: u64,
    /// L1 misses that also missed the LLC.
    pub llc_misses: u64,
    /// Cache lines read from persistent memory.
    pub nvm_line_reads: u64,
    /// Cache lines written in place to persistent memory.
    pub nvm_line_writes: u64,
    /// Bytes of log traffic written to persistent memory.
    pub log_bytes: u64,
    /// Bytes of in-place data write-back traffic.
    pub data_writeback_bytes: u64,
    /// Number of probes (forwards/invalidations) delivered to remote L1s.
    pub probes: u64,
    /// Probes on which the arbiter reported a conflict (either side aborted).
    pub conflicts: u64,
    /// Lines back-invalidated from L1s because of LLC evictions.
    pub back_invalidations: u64,
    /// Times the directory walked a non-empty remote-sharer set to deliver
    /// probes (one walk may deliver several probes; see `probes`).
    pub sharer_walks: u64,
    /// L1 copies invalidated at the directory's behest: store-path
    /// invalidation probes, LLC back-invalidations and abort-path
    /// invalidations.
    pub dir_invalidations: u64,
}

/// The complete simulated memory hierarchy.
#[derive(Debug)]
pub struct MemorySystem {
    l1s: Vec<L1Cache>,
    llc: LlcCache,
    domain: PersistentDomain,
    channel: MemoryChannel,
    latency: LatencyConfig,
    stats: MemStats,
    /// Per-core flag raised when an LLC eviction discarded a speculative
    /// overflowed line owned by that core's thread (see
    /// [`MemorySystem::take_speculative_loss`]).
    speculative_loss: Vec<bool>,
}

impl MemorySystem {
    /// Builds a memory system from the system configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        MemorySystem {
            l1s: (0..cfg.num_cores).map(|_| L1Cache::new(cfg.l1)).collect(),
            llc: LlcCache::new(cfg.llc, cfg.llc_tiles),
            domain: PersistentDomain::new(
                cfg.num_cores,
                cfg.log_region_records,
                cfg.overflow_list_entries,
            ),
            channel: MemoryChannel::new(cfg.bytes_per_cycle()),
            latency: cfg.latency,
            stats: MemStats::default(),
            speculative_loss: vec![false; cfg.num_cores],
        }
    }

    /// Consumes and returns `core`'s speculative-loss flag: `true` means an
    /// LLC eviction discarded an overflowed write-set line of the in-flight
    /// transaction on that core, whose speculative data is now gone — the
    /// transaction can no longer commit and must abort (the write set
    /// exceeded what the LLC could retain).
    pub fn take_speculative_loss(&mut self, core: CoreId) -> bool {
        std::mem::take(&mut self.speculative_loss[core.get()])
    }

    /// Number of cores/L1s.
    pub fn num_cores(&self) -> usize {
        self.l1s.len()
    }

    /// The latency configuration in force.
    pub fn latency(&self) -> &LatencyConfig {
        &self.latency
    }

    /// Immutable access to a core's L1.
    pub fn l1(&self, core: CoreId) -> &L1Cache {
        &self.l1s[core.get()]
    }

    /// Mutable access to a core's L1.
    pub fn l1_mut(&mut self, core: CoreId) -> &mut L1Cache {
        &mut self.l1s[core.get()]
    }

    /// Immutable access to the LLC.
    pub fn llc(&self) -> &LlcCache {
        &self.llc
    }

    /// Mutable access to the LLC.
    pub fn llc_mut(&mut self) -> &mut LlcCache {
        &mut self.llc
    }

    /// Immutable access to the persistence domain.
    pub fn domain(&self) -> &PersistentDomain {
        &self.domain
    }

    /// Mutable access to the persistence domain.
    pub fn domain_mut(&mut self) -> &mut PersistentDomain {
        &mut self.domain
    }

    /// Immutable access to the memory channel.
    pub fn channel(&self) -> &MemoryChannel {
        &self.channel
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Word-level helpers (operate on data already resident in an L1).
    // ------------------------------------------------------------------

    /// Reads a word from a line resident in `core`'s L1.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident (callers must first perform a
    /// successful [`MemorySystem::load`] or [`MemorySystem::store`]).
    pub fn read_word_in_l1(&self, core: CoreId, addr: Address) -> u64 {
        self.l1s[core.get()].read_word(addr.line(), addr.word_index())
    }

    /// Writes a word to a line resident in `core`'s L1, marking it dirty.
    ///
    /// # Panics
    ///
    /// Panics if the line is not resident.
    pub fn write_word_in_l1(&mut self, core: CoreId, addr: Address, value: u64) {
        self.l1s[core.get()].write_word(addr.line(), addr.word_index(), value);
    }

    // ------------------------------------------------------------------
    // Persistent-memory traffic helpers.
    // ------------------------------------------------------------------

    /// Sends `bytes` of log traffic to persistent memory, returning the cycle
    /// at which the data is durable (transfer + NVM write latency).
    pub fn persist_log_bytes(&mut self, now: u64, bytes: u64) -> u64 {
        self.stats.log_bytes += bytes;
        let transferred = self.channel.request(now, bytes);
        transferred + self.latency.nvm_write
    }

    /// Writes a full line in place to persistent memory (data write-back),
    /// returning the durability point.
    pub fn persist_data_line(&mut self, now: u64, line: LineAddr, data: LineData) -> u64 {
        self.stats.data_writeback_bytes += LINE_SIZE as u64;
        self.stats.nvm_line_writes += 1;
        self.domain.write_line(line, data);
        let transferred = self.channel.request(now, LINE_SIZE as u64);
        transferred + self.latency.nvm_write
    }

    fn fetch_line_from_memory(&mut self, now: u64, line: LineAddr) -> (LineData, u64) {
        self.stats.nvm_line_reads += 1;
        let data = self.domain.read_line(line);
        let transferred = self.channel.request(now, LINE_SIZE as u64);
        (data, transferred + self.latency.nvm_read)
    }

    // ------------------------------------------------------------------
    // Probes.
    // ------------------------------------------------------------------

    fn probe_info(
        &self,
        requester: CoreId,
        holder: CoreId,
        line: LineAddr,
        kind: ProbeKind,
    ) -> ProbeInfo {
        let entry = self.l1s[holder.get()].entry(line);
        ProbeInfo {
            requester,
            holder,
            line,
            kind,
            holder_has_line: entry.is_some(),
            holder_write_bit: entry.is_some_and(|e| e.write_bit),
            holder_read_bit: entry.is_some_and(|e| e.read_bit),
            holder_dirty: entry.is_some_and(|e| e.dirty),
        }
    }

    // ------------------------------------------------------------------
    // LLC fill / eviction.
    // ------------------------------------------------------------------

    /// Ensures `line` is present in the LLC, filling from memory if needed.
    /// Returns the completion time and whether the fill missed the LLC.
    fn ensure_llc_line(&mut self, now: u64, line: LineAddr) -> (u64, bool) {
        if self.llc.contains(line) {
            self.llc.access(line);
            return (now, false);
        }
        self.llc.access(line); // records the miss
        let (data, done) = self.fetch_line_from_memory(now, line);
        let victim = self
            .llc
            .insert(line, DirectoryEntry::new(MesiState::Invalid, data));
        if let Some((vline, ventry)) = victim {
            self.handle_llc_eviction(now, vline, ventry);
        }
        (done, true)
    }

    fn handle_llc_eviction(&mut self, now: u64, line: LineAddr, entry: DirectoryEntry) {
        // Back-invalidate any L1 copies (inclusive hierarchy).
        for core in 0..self.l1s.len() {
            if entry.is_sharer(CoreId::new(core)) && self.l1s[core].invalidate(line).is_some() {
                self.stats.back_invalidations += 1;
                self.stats.dir_invalidations += 1;
            }
        }
        if entry.dirty {
            // A dirty line recorded in an overflow list holds *speculative*
            // data of an in-flight redo-logged transaction (DHTM's L1→LLC
            // write-set overflow). Writing it in place would put uncommitted
            // data in persistent memory, which redo logging forbids — the
            // copy is discarded instead, and the owning transaction is
            // flagged to abort (write set exceeded what the LLC could
            // retain).
            if let Some(owner) = self.domain.speculative_overflow_owner(line) {
                if owner.get() < self.speculative_loss.len() {
                    self.speculative_loss[owner.get()] = true;
                }
                return;
            }
            self.stats.data_writeback_bytes += LINE_SIZE as u64;
            self.stats.nvm_line_writes += 1;
            self.domain.write_line(line, entry.data);
            self.channel.request(now, LINE_SIZE as u64);
        }
    }

    // ------------------------------------------------------------------
    // Loads.
    // ------------------------------------------------------------------

    /// Performs a load of `line` on behalf of `core`.
    ///
    /// On success the line is resident and readable in `core`'s L1 (the entry
    /// carries whatever read/write bits it had before; newly filled lines
    /// have both bits clear — setting the read bit is the engine's job).
    pub fn load(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: u64,
        arbiter: &mut dyn ConflictArbiter,
    ) -> AccessOutcome {
        let l1_latency = self.latency.l1_hit;
        if self.l1s[core.get()].has_readable(line) {
            self.l1s[core.get()].access(line);
            self.stats.l1_hits += 1;
            return AccessOutcome::new(now + l1_latency, HitLevel::L1);
        }
        self.l1s[core.get()].access(line); // records the miss
        self.stats.l1_misses += 1;

        let mut latency = l1_latency + self.latency.llc_hit;
        let (fill_done, llc_missed) = self.ensure_llc_line(now, line);
        let mut done = (now + latency).max(fill_done);
        let mut hit_level = if llc_missed {
            HitLevel::Memory
        } else {
            HitLevel::Llc
        };
        if llc_missed {
            self.stats.llc_misses += 1;
        } else {
            self.stats.llc_hits += 1;
        }

        let mut outcome_holders = Vec::new();
        let mut reread_own_overflow = false;

        // Directory action.
        let entry = *self.llc.entry(line).expect("line just ensured in LLC");
        let new_l1_state;
        match entry.state {
            MesiState::Invalid => {
                // No L1 holds the line: grant Exclusive.
                let e = self.llc.entry_mut(line).expect("present");
                e.state = MesiState::Exclusive;
                e.clear_sharers();
                e.add_sharer(core);
                new_l1_state = MesiState::Exclusive;
            }
            MesiState::Shared => {
                let e = self.llc.entry_mut(line).expect("present");
                e.add_sharer(core);
                new_l1_state = MesiState::Shared;
            }
            MesiState::Exclusive | MesiState::Modified => {
                if entry.is_sharer(core) {
                    // The requester itself is the stale owner: it re-reads a
                    // line it overflowed earlier in this transaction.
                    reread_own_overflow = true;
                    new_l1_state = MesiState::Modified;
                } else if entry.sharer_count() == 0 {
                    // Ownerless exclusive state (the previous owner dropped
                    // its copy without a write-back notification): grant the
                    // line afresh.
                    let e = self.llc.entry_mut(line).expect("present");
                    e.state = MesiState::Exclusive;
                    e.add_sharer(core);
                    new_l1_state = MesiState::Exclusive;
                } else {
                    // Forward to the owner.
                    let owner = entry.first_sharer().expect("owned line has an owner");
                    let probe = self.probe_info(core, owner, line, ProbeKind::FwdGetS);
                    self.stats.probes += 1;
                    self.stats.sharer_walks += 1;
                    let decision = arbiter.decide(&probe);
                    match decision {
                        ProbeDecision::Nack => {
                            self.stats.conflicts += 1;
                            return AccessOutcome::cancelled(now + latency, true);
                        }
                        ProbeDecision::AbortRequester => {
                            self.stats.conflicts += 1;
                            return AccessOutcome::cancelled(now + latency, false);
                        }
                        ProbeDecision::Proceed | ProbeDecision::AbortHolder => {
                            let holder_aborts = decision == ProbeDecision::AbortHolder;
                            if holder_aborts {
                                self.stats.conflicts += 1;
                                outcome_holders.push(owner);
                            }
                            latency += self.latency.coherence_hop;
                            done = done.max(now + latency);
                            // The owner (if it still has the line) supplies
                            // the data and downgrades to Shared — unless the
                            // owner is being *aborted*: its dirty copy is
                            // speculative state that the abort discards, so
                            // it must never reach the LLC (and from there,
                            // persistent memory). The requester then reads
                            // the pre-transactional LLC/memory copy.
                            if let Some(owner_entry) = self.l1s[owner.get()].entry_mut(line) {
                                let owner_data = owner_entry.data;
                                let owner_dirty = owner_entry.dirty && !holder_aborts;
                                owner_entry.state = MesiState::Shared;
                                owner_entry.dirty = false;
                                let e = self.llc.entry_mut(line).expect("present");
                                if owner_dirty {
                                    e.data = owner_data;
                                    e.dirty = true;
                                }
                                e.state = MesiState::Shared;
                                e.add_sharer(core);
                            } else {
                                // Stale owner (overflowed or silently evicted
                                // line): the LLC copy is current.
                                let e = self.llc.entry_mut(line).expect("present");
                                e.remove_sharer(owner);
                                e.state = MesiState::Shared;
                                e.add_sharer(core);
                            }
                            new_l1_state = MesiState::Shared;
                            hit_level = HitLevel::Llc;
                        }
                    }
                }
            }
        }

        // Fill the requester's L1.
        let fill_data = self.llc.entry(line).expect("present").data;
        let victim = self.l1s[core.get()].insert(line, L1Entry::new(new_l1_state, fill_data));

        let mut outcome = AccessOutcome::new(done.max(now + latency), hit_level);
        outcome.holders_to_abort = outcome_holders;
        outcome.evicted_victim = victim;
        outcome.reread_own_overflow = reread_own_overflow;
        outcome
    }

    // ------------------------------------------------------------------
    // Stores.
    // ------------------------------------------------------------------

    /// Obtains write permission for `line` on behalf of `core` (the paper's
    /// GetM/upgrade). On success the line is resident and writable in
    /// `core`'s L1; the engine then updates the data with
    /// [`MemorySystem::write_word_in_l1`] and sets the write bit.
    pub fn store(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: u64,
        arbiter: &mut dyn ConflictArbiter,
    ) -> AccessOutcome {
        let l1_latency = self.latency.l1_hit;
        if self.l1s[core.get()].has_writable(line) {
            self.l1s[core.get()].access(line);
            self.stats.l1_hits += 1;
            // E -> M transition is silent.
            let entry = self.l1s[core.get()].entry_mut(line).expect("present");
            entry.state = MesiState::Modified;
            if let Some(dir) = self.llc.entry_mut(line) {
                dir.state = MesiState::Modified;
            }
            return AccessOutcome::new(now + l1_latency, HitLevel::L1);
        }

        let had_shared_copy = self.l1s[core.get()].has_readable(line);
        if had_shared_copy {
            // Upgrade: the L1 access itself is a hit, but the directory must
            // invalidate the other sharers.
            self.l1s[core.get()].access(line);
            self.stats.l1_hits += 1;
        } else {
            self.l1s[core.get()].access(line);
            self.stats.l1_misses += 1;
        }

        let mut latency = l1_latency + self.latency.llc_hit;
        let (fill_done, llc_missed) = self.ensure_llc_line(now, line);
        let mut done = (now + latency).max(fill_done);
        let hit_level = if llc_missed {
            self.stats.llc_misses += 1;
            HitLevel::Memory
        } else {
            self.stats.llc_hits += 1;
            // Upgrades are classified as LLC hits (see `HitLevel::Llc`).
            HitLevel::Llc
        };

        let mut holders_to_abort = Vec::new();
        let mut reread_own_overflow = false;

        let entry = *self.llc.entry(line).expect("line ensured");
        // Every remote holder that must be probed, as a bitmask — the probe
        // loops below walk it lowest-core-first (the `sharers_iter` order)
        // without allocating.
        let remote_mask = {
            let mut m = entry.sharers;
            if core.get() < 64 {
                m &= !(1u64 << core.get());
            }
            m
        };

        if entry.state.is_exclusive_like() && entry.is_sharer(core) && !had_shared_copy {
            // Requester is the stale owner re-writing a line it overflowed.
            reread_own_overflow = true;
        }

        // First pass: collect decisions without mutating anything. A
        // decision is one of four cases, so a bitmask per case replaces the
        // former per-access `Vec<(CoreId, ProbeDecision)>`.
        let mut abort_holder_mask = 0u64;
        let mut saw_nack = false;
        let mut saw_abort_requester = false;
        if remote_mask != 0 {
            self.stats.sharer_walks += 1;
        }
        let mut mask = remote_mask;
        while mask != 0 {
            let holder = CoreId::new(mask.trailing_zeros() as usize);
            mask &= mask - 1;
            let kind = if entry.state.is_exclusive_like() {
                ProbeKind::FwdGetM
            } else {
                ProbeKind::Invalidate
            };
            let probe = self.probe_info(core, holder, line, kind);
            self.stats.probes += 1;
            match arbiter.decide(&probe) {
                ProbeDecision::Nack => saw_nack = true,
                ProbeDecision::AbortRequester => saw_abort_requester = true,
                ProbeDecision::AbortHolder => abort_holder_mask |= 1u64 << holder.get(),
                ProbeDecision::Proceed => {}
            }
        }
        if saw_nack {
            self.stats.conflicts += 1;
            return AccessOutcome::cancelled(now + latency, true);
        }
        if saw_abort_requester {
            self.stats.conflicts += 1;
            return AccessOutcome::cancelled(now + latency, false);
        }

        // Second pass: apply the protocol actions.
        if remote_mask != 0 {
            latency += self.latency.coherence_hop;
            done = done.max(now + latency);
        }
        let mut mask = remote_mask;
        while mask != 0 {
            let holder = CoreId::new(mask.trailing_zeros() as usize);
            mask &= mask - 1;
            let holder_aborts = abort_holder_mask & (1u64 << holder.get()) != 0;
            if holder_aborts {
                self.stats.conflicts += 1;
                holders_to_abort.push(holder);
            }
            if let Some(holder_entry) = self.l1s[holder.get()].invalidate(line) {
                self.stats.dir_invalidations += 1;
                // A dirty remote copy supplies the latest data — unless the
                // holder is being aborted: its dirty copy is speculative
                // state the abort discards, and forwarding it would let
                // uncommitted data reach the LLC (and persistent memory).
                if holder_entry.dirty && !holder_aborts {
                    let e = self.llc.entry_mut(line).expect("present");
                    e.data = holder_entry.data;
                    e.dirty = true;
                }
            }
            let e = self.llc.entry_mut(line).expect("present");
            e.remove_sharer(holder);
        }

        // Directory now grants Modified to the requester.
        {
            let e = self.llc.entry_mut(line).expect("present");
            e.state = MesiState::Modified;
            if !reread_own_overflow {
                e.clear_sharers();
            }
            e.add_sharer(core);
        }

        // Fill or upgrade the requester's L1.
        let mut victim = None;
        let fill_data = self.llc.entry(line).expect("present").data;
        if let Some(own) = self.l1s[core.get()].entry_mut(line) {
            own.state = MesiState::Modified;
        } else {
            victim =
                self.l1s[core.get()].insert(line, L1Entry::new(MesiState::Modified, fill_data));
        }

        let mut outcome = AccessOutcome::new(
            done.max(now + latency),
            if had_shared_copy {
                HitLevel::Llc
            } else {
                hit_level
            },
        );
        outcome.holders_to_abort = holders_to_abort;
        outcome.evicted_victim = victim;
        outcome.reread_own_overflow = reread_own_overflow;
        outcome
    }

    // ------------------------------------------------------------------
    // Eviction / write-back helpers used by the transaction engines.
    // ------------------------------------------------------------------

    /// Handles the eviction of a non-transactional victim from `core`'s L1:
    /// dirty data is written back to the LLC (directory updated precisely);
    /// clean lines notify the directory so it stays precise. Returns the
    /// completion time.
    pub fn evict_nontransactional(
        &mut self,
        core: CoreId,
        line: LineAddr,
        entry: &L1Entry,
        now: u64,
    ) -> u64 {
        if entry.dirty {
            self.writeback_to_llc(core, line, entry.data, now, false)
        } else {
            self.notify_clean_eviction(core, line);
            now
        }
    }

    /// Writes `data` back to the LLC on behalf of `core`.
    ///
    /// With `keep_owner` = `false` this is a normal PutM: the directory
    /// removes the core from the sharer vector and the line becomes unowned.
    /// With `keep_owner` = `true` the directory state and sharer vector are
    /// left untouched — the "sticky" state DHTM uses when a transactional
    /// write-set line overflows (Section III-C): the LLC data is updated and
    /// marked dirty, but the line still appears to be owned by the core so
    /// conflicting requests keep getting forwarded there.
    pub fn writeback_to_llc(
        &mut self,
        core: CoreId,
        line: LineAddr,
        data: LineData,
        now: u64,
        keep_owner: bool,
    ) -> u64 {
        let (done, _) = self.ensure_llc_line(now, line);
        let e = self.llc.entry_mut(line).expect("ensured");
        e.data = data;
        e.dirty = true;
        if !keep_owner {
            e.remove_sharer(core);
            if e.sharer_count() == 0 {
                e.state = MesiState::Invalid;
            }
        }
        done.max(now) + self.latency.llc_hit
    }

    /// Notifies the directory that `core` dropped its clean copy of `line`
    /// (a PutS/PutE), keeping the sharer vector precise.
    pub fn notify_clean_eviction(&mut self, core: CoreId, line: LineAddr) {
        if let Some(e) = self.llc.entry_mut(line) {
            e.remove_sharer(core);
            if e.sharer_count() == 0 {
                e.state = MesiState::Invalid;
            }
        }
    }

    /// Write-back of a committed line from `core`'s L1 to the LLC *and* in
    /// place to persistent memory (the commit-completion path of Figure 4f).
    /// The L1 line's dirty flag is cleared but the line stays resident.
    /// Returns the durability point, or `None` if the line is no longer in
    /// the L1 (e.g. it was forwarded to another core after commit).
    pub fn l1_writeback_line_to_memory(
        &mut self,
        core: CoreId,
        line: LineAddr,
        now: u64,
    ) -> Option<u64> {
        let entry = self.l1s[core.get()].entry_mut(line)?;
        let data = entry.data;
        entry.dirty = false;
        // Update the LLC copy (if present) so the hierarchy stays coherent.
        if let Some(e) = self.llc.entry_mut(line) {
            e.data = data;
            e.dirty = false;
        }
        Some(self.persist_data_line(now, line, data))
    }

    /// Composes the in-place image of `line` from the current persistent
    /// copy overlaid with the word values in `values` (word address →
    /// value), refreshes any cached copies (left clean), and persists the
    /// composed line. This is the write-aside commit path shared by SO and
    /// the sdTM/DHTM fallbacks: the durable log carried the stores, the
    /// cache was kept clean, so the line may have left the hierarchy at any
    /// point and must be re-materialised from the engine's write-aside set.
    /// Returns the durability point.
    pub fn persist_composed_line(
        &mut self,
        core: CoreId,
        line: LineAddr,
        values: &std::collections::BTreeMap<Address, u64>,
        now: u64,
    ) -> u64 {
        let mut data = self.domain.read_line(line);
        for (w, slot) in data.iter_mut().enumerate() {
            let addr = line.word_address(dhtm_types::addr::WordIndex::new(w));
            if let Some(&v) = values.get(&addr) {
                *slot = v;
            }
        }
        if let Some(e) = self.l1s[core.get()].entry_mut(line) {
            e.data = data;
            e.dirty = false;
        }
        if let Some(e) = self.llc.entry_mut(line) {
            e.data = data;
            e.dirty = false;
        }
        self.persist_data_line(now, line, data)
    }

    /// Write-back of an overflowed line from the LLC in place to persistent
    /// memory (commit-completion for overflowed lines). The directory entry
    /// is cleaned: dirty bit cleared, sharer vector cleared, state Invalid.
    /// Returns the durability point, or `None` if the line is not in the LLC.
    pub fn llc_writeback_line_to_memory(&mut self, line: LineAddr, now: u64) -> Option<u64> {
        let entry = self.llc.entry_mut(line)?;
        let data = entry.data;
        entry.dirty = false;
        entry.clear_sharers();
        entry.state = MesiState::Invalid;
        Some(self.persist_data_line(now, line, data))
    }

    /// Invalidates an overflowed line in the LLC (abort-completion,
    /// Figure 4h): the speculative data is discarded and the directory entry
    /// cleared. Returns `true` if the line was present.
    pub fn invalidate_llc_line(&mut self, line: LineAddr) -> bool {
        self.llc.invalidate(line).is_some()
    }

    /// Invalidates a line in `core`'s L1 (abort path), informing the
    /// directory. Returns the removed entry.
    pub fn invalidate_l1_line(&mut self, core: CoreId, line: LineAddr) -> Option<L1Entry> {
        let removed = self.l1s[core.get()].invalidate(line);
        if removed.is_some() {
            self.stats.dir_invalidations += 1;
            self.notify_clean_eviction(core, line);
        }
        removed
    }

    /// Registers the whole hierarchy's counters into `reg`: per-core L1s
    /// (`coreN/l1/...`), the LLC, the directory/coherence counters, the
    /// persistence domain and the memory channel (whose busy/idle split needs
    /// the run's end-of-run `horizon` cycle).
    pub fn probes_into(&self, horizon: u64, reg: &mut dhtm_obs::ProbeRegistry) {
        for (i, l1) in self.l1s.iter().enumerate() {
            reg.add(&format!("core{i}/l1/hits"), l1.hits());
            reg.add(&format!("core{i}/l1/misses"), l1.misses());
            reg.add(&format!("core{i}/l1/evictions"), l1.evictions());
        }
        reg.add("llc/hits", self.llc.hits());
        reg.add("llc/misses", self.llc.misses());
        reg.add("llc/evictions", self.llc.evictions());
        reg.add("dir/probes", self.stats.probes);
        reg.add("dir/conflicts", self.stats.conflicts);
        reg.add("dir/sharer_walks", self.stats.sharer_walks);
        reg.add("dir/invalidations", self.stats.dir_invalidations);
        reg.add("dir/back_invalidations", self.stats.back_invalidations);
        reg.add("mem/nvm_line_reads", self.stats.nvm_line_reads);
        reg.add("mem/nvm_line_writes", self.stats.nvm_line_writes);
        reg.add("mem/log_bytes", self.stats.log_bytes);
        reg.add("mem/data_writeback_bytes", self.stats.data_writeback_bytes);
        self.domain.probes_into(reg);
        self.channel.probes_into(horizon, reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NoConflicts;
    use dhtm_types::config::SystemConfig;

    fn memsys() -> MemorySystem {
        MemorySystem::new(&SystemConfig::small_test())
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn probes_cover_every_hierarchy_level() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(100);
        // Core 1 reads the line, then core 0 writes it: the store walks the
        // remote sharer set and invalidates core 1's copy.
        m.load(c(1), line, 0, &mut arb);
        m.store(c(0), line, 10, &mut arb);
        let mut reg = dhtm_obs::ProbeRegistry::new();
        m.probes_into(1000, &mut reg);
        assert_eq!(reg.counter("core1/l1/misses"), 1);
        assert_eq!(reg.counter("dir/sharer_walks"), 1);
        assert_eq!(reg.counter("dir/invalidations"), 1);
        assert_eq!(reg.counter("dir/probes"), m.stats().probes);
        assert_eq!(reg.counter("mem/nvm_line_reads"), 1);
        assert!(reg.get("channel/idle_cycles").is_some());
        assert!(reg.get("domain/mutations").is_some());
    }

    #[test]
    fn cold_load_misses_to_memory_then_hits() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(100);
        let out = m.load(c(0), line, 0, &mut arb);
        assert!(out.proceeded());
        assert_eq!(out.hit_level, HitLevel::Memory);
        assert!(out.done >= m.latency().nvm_read);
        // Second access hits in L1 with the short latency.
        let out2 = m.load(c(0), line, out.done, &mut arb);
        assert!(out2.l1_hit());
        assert_eq!(out2.done, out.done + m.latency().l1_hit);
    }

    #[test]
    fn load_grants_exclusive_to_sole_reader() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(5);
        m.load(c(0), line, 0, &mut arb);
        assert_eq!(m.l1(c(0)).entry(line).unwrap().state, MesiState::Exclusive);
        let dir = m.llc().entry(line).unwrap();
        assert_eq!(dir.state, MesiState::Exclusive);
        assert!(dir.is_sharer(c(0)));
    }

    #[test]
    fn second_reader_downgrades_owner_to_shared() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(5);
        m.load(c(0), line, 0, &mut arb);
        let out = m.load(c(1), line, 100, &mut arb);
        assert!(out.proceeded());
        assert_eq!(m.l1(c(0)).entry(line).unwrap().state, MesiState::Shared);
        assert_eq!(m.l1(c(1)).entry(line).unwrap().state, MesiState::Shared);
        let dir = m.llc().entry(line).unwrap();
        assert_eq!(dir.state, MesiState::Shared);
        assert!(dir.is_sharer(c(0)) && dir.is_sharer(c(1)));
    }

    #[test]
    fn store_invalidates_other_sharers() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(9);
        m.load(c(0), line, 0, &mut arb);
        m.load(c(1), line, 50, &mut arb);
        let out = m.store(c(2), line, 100, &mut arb);
        assert!(out.proceeded());
        assert!(m.l1(c(0)).entry(line).is_none());
        assert!(m.l1(c(1)).entry(line).is_none());
        assert_eq!(m.l1(c(2)).entry(line).unwrap().state, MesiState::Modified);
        let dir = m.llc().entry(line).unwrap();
        assert_eq!(dir.state, MesiState::Modified);
        assert_eq!(dir.sharer_count(), 1);
        assert!(dir.is_sharer(c(2)));
    }

    #[test]
    fn store_then_remote_load_forwards_dirty_data() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let addr = Address::new(64 * 9);
        let line = addr.line();
        let out = m.store(c(0), line, 0, &mut arb);
        assert!(out.proceeded());
        m.write_word_in_l1(c(0), addr, 1234);
        let out2 = m.load(c(1), line, 200, &mut arb);
        assert!(out2.proceeded());
        assert_eq!(m.read_word_in_l1(c(1), addr), 1234);
        // Dirty data was pulled into the LLC.
        assert!(m.llc().entry(line).unwrap().dirty);
    }

    #[test]
    fn upgrade_from_shared_hits_l1_but_probes_sharers() {
        let mut m = memsys();
        let mut arb = NoConflicts;
        let line = LineAddr::new(3);
        m.load(c(0), line, 0, &mut arb);
        m.load(c(1), line, 10, &mut arb);
        let probes_before = m.stats().probes;
        let out = m.store(c(0), line, 20, &mut arb);
        assert!(out.proceeded());
        assert!(m.stats().probes > probes_before);
        assert_eq!(m.l1(c(0)).entry(line).unwrap().state, MesiState::Modified);
        assert!(m.l1(c(1)).entry(line).is_none());
    }

    #[test]
    fn abort_requester_decision_cancels_access() {
        struct AlwaysAbortRequester;
        impl ConflictArbiter for AlwaysAbortRequester {
            fn decide(&mut self, _p: &ProbeInfo) -> ProbeDecision {
                ProbeDecision::AbortRequester
            }
        }
        let mut m = memsys();
        let mut noc = NoConflicts;
        let line = LineAddr::new(3);
        m.store(c(0), line, 0, &mut noc);
        let mut arb = AlwaysAbortRequester;
        let out = m.store(c(1), line, 100, &mut arb);
        assert!(out.aborted_by_conflict);
        assert!(!out.proceeded());
        // Holder's copy is untouched.
        assert_eq!(m.l1(c(0)).entry(line).unwrap().state, MesiState::Modified);
        assert!(m.l1(c(1)).entry(line).is_none());
    }

    #[test]
    fn abort_holder_decision_proceeds_and_reports_holder() {
        struct AlwaysAbortHolder;
        impl ConflictArbiter for AlwaysAbortHolder {
            fn decide(&mut self, _p: &ProbeInfo) -> ProbeDecision {
                ProbeDecision::AbortHolder
            }
        }
        let mut m = memsys();
        let mut noc = NoConflicts;
        let line = LineAddr::new(3);
        m.store(c(0), line, 0, &mut noc);
        let mut arb = AlwaysAbortHolder;
        let out = m.store(c(1), line, 100, &mut arb);
        assert!(out.proceeded());
        assert_eq!(out.holders_to_abort, vec![c(0)]);
        assert_eq!(m.l1(c(1)).entry(line).unwrap().state, MesiState::Modified);
    }

    #[test]
    fn nack_decision_cancels_without_abort() {
        struct AlwaysNack;
        impl ConflictArbiter for AlwaysNack {
            fn decide(&mut self, _p: &ProbeInfo) -> ProbeDecision {
                ProbeDecision::Nack
            }
        }
        let mut m = memsys();
        let mut noc = NoConflicts;
        let line = LineAddr::new(3);
        m.store(c(0), line, 0, &mut noc);
        let mut arb = AlwaysNack;
        let out = m.load(c(1), line, 100, &mut arb);
        assert!(out.nacked);
        assert!(!out.aborted_by_conflict);
    }

    #[test]
    fn sticky_overflow_keeps_forwarding_to_owner() {
        // Core 0 writes a line, the line overflows to the LLC keeping the
        // directory owner unchanged; a later remote access must still probe
        // core 0 and see that the line is absent from its L1.
        struct Recorder(Vec<ProbeInfo>);
        impl ConflictArbiter for Recorder {
            fn decide(&mut self, p: &ProbeInfo) -> ProbeDecision {
                self.0.push(*p);
                ProbeDecision::Proceed
            }
        }
        let mut m = memsys();
        let mut noc = NoConflicts;
        let addr = Address::new(64 * 77);
        let line = addr.line();
        m.store(c(0), line, 0, &mut noc);
        m.write_word_in_l1(c(0), addr, 55);
        // Simulate the overflow: write back keeping the owner sticky, then
        // drop the line from the L1 silently.
        let entry = *m.l1(c(0)).entry(line).unwrap();
        m.writeback_to_llc(c(0), line, entry.data, 10, true);
        m.l1_mut(c(0)).invalidate(line);

        let mut rec = Recorder(Vec::new());
        let out = m.load(c(1), line, 100, &mut rec);
        assert!(out.proceeded());
        assert_eq!(rec.0.len(), 1);
        let p = &rec.0[0];
        assert_eq!(p.holder, c(0));
        assert!(!p.holder_has_line, "stale directory state detected");
        // The requester still gets the overflowed (latest) data from the LLC.
        assert_eq!(m.read_word_in_l1(c(1), addr), 55);
    }

    #[test]
    fn reread_own_overflowed_line_is_flagged() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        let addr = Address::new(64 * 33);
        let line = addr.line();
        m.store(c(0), line, 0, &mut noc);
        m.write_word_in_l1(c(0), addr, 7);
        let entry = *m.l1(c(0)).entry(line).unwrap();
        m.writeback_to_llc(c(0), line, entry.data, 10, true);
        m.l1_mut(c(0)).invalidate(line);

        let out = m.load(c(0), line, 100, &mut noc);
        assert!(out.proceeded());
        assert!(out.reread_own_overflow);
        assert_eq!(m.read_word_in_l1(c(0), addr), 7);
        // Directory still shows core 0 as the owner.
        let dir = m.llc().entry(line).unwrap();
        assert!(dir.is_sharer(c(0)));
        assert!(dir.state.is_exclusive_like());
    }

    #[test]
    fn writeback_to_llc_without_keep_owner_releases_ownership() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        let line = LineAddr::new(21);
        m.store(c(0), line, 0, &mut noc);
        let entry = *m.l1(c(0)).entry(line).unwrap();
        m.l1_mut(c(0)).invalidate(line);
        m.writeback_to_llc(c(0), line, entry.data, 10, false);
        let dir = m.llc().entry(line).unwrap();
        assert_eq!(dir.sharer_count(), 0);
        assert_eq!(dir.state, MesiState::Invalid);
        assert!(dir.dirty);
    }

    #[test]
    fn l1_writeback_to_memory_persists_data() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        let addr = Address::new(64 * 8);
        let line = addr.line();
        m.store(c(0), line, 0, &mut noc);
        m.write_word_in_l1(c(0), addr, 42);
        let done = m.l1_writeback_line_to_memory(c(0), line, 100).unwrap();
        assert!(done > 100);
        assert_eq!(m.domain().read_line(line)[0], 42);
        assert!(!m.l1(c(0)).entry(line).unwrap().dirty);
    }

    #[test]
    fn llc_writeback_to_memory_cleans_directory() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        let addr = Address::new(64 * 8);
        let line = addr.line();
        m.store(c(0), line, 0, &mut noc);
        m.write_word_in_l1(c(0), addr, 13);
        let entry = *m.l1(c(0)).entry(line).unwrap();
        m.writeback_to_llc(c(0), line, entry.data, 5, true);
        m.l1_mut(c(0)).invalidate(line);
        let done = m.llc_writeback_line_to_memory(line, 50).unwrap();
        assert!(done > 50);
        assert_eq!(m.domain().read_line(line)[0], 13);
        let dir = m.llc().entry(line).unwrap();
        assert!(!dir.dirty);
        assert_eq!(dir.sharer_count(), 0);
        assert_eq!(dir.state, MesiState::Invalid);
    }

    #[test]
    fn persist_log_bytes_charges_channel_and_latency() {
        let mut m = memsys();
        let done = m.persist_log_bytes(0, 72);
        assert!(done >= m.latency().nvm_write);
        assert_eq!(m.stats().log_bytes, 72);
        assert!(m.channel().total_bytes() >= 72);
    }

    #[test]
    fn notify_clean_eviction_keeps_directory_precise() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        let line = LineAddr::new(70);
        m.load(c(0), line, 0, &mut noc);
        m.load(c(1), line, 10, &mut noc);
        m.l1_mut(c(0)).invalidate(line);
        m.notify_clean_eviction(c(0), line);
        let dir = m.llc().entry(line).unwrap();
        assert!(!dir.is_sharer(c(0)));
        assert!(dir.is_sharer(c(1)));
        // Last sharer leaving empties the directory entry.
        m.l1_mut(c(1)).invalidate(line);
        m.notify_clean_eviction(c(1), line);
        assert_eq!(m.llc().entry(line).unwrap().state, MesiState::Invalid);
    }

    #[test]
    fn statistics_accumulate() {
        let mut m = memsys();
        let mut noc = NoConflicts;
        for i in 0..20u64 {
            m.load(c(0), LineAddr::new(i), i * 10, &mut noc);
        }
        assert_eq!(m.stats().l1_misses, 20);
        assert_eq!(m.stats().nvm_line_reads, 20);
        for i in 0..20u64 {
            m.load(c(0), LineAddr::new(i), 1000 + i * 10, &mut noc);
        }
        assert_eq!(m.stats().l1_hits, 20);
    }
}
