//! # dhtm-workloads
//!
//! The workloads of the paper's evaluation (Section V, Table IV), implemented
//! as data structures laid out in *simulated* persistent memory so that every
//! access a workload performs becomes a concrete cache-line access in the
//! simulator:
//!
//! * the six NVHeaps-style micro-benchmarks — [`micro::QueueWorkload`],
//!   [`micro::HashWorkload`], [`micro::SdgWorkload`], [`micro::SpsWorkload`],
//!   [`micro::BTreeWorkload`] and [`micro::RbTreeWorkload`] — each performing
//!   batches of atomic insert/delete/swap operations sized to reproduce the
//!   write-set footprints of Table IV;
//! * the OLTP workloads — [`oltp::TatpWorkload`] and [`oltp::TpccWorkload`] —
//!   in-memory row stores whose transactions have write working sets
//!   comparable to (TATP) or exceeding (TPC-C) the 32 KB L1.
//!
//! Each workload keeps a host-side model of its data structure (so that the
//! operations are semantically real — collisions, splits, rotations, row
//! look-ups) and renders every operation into the [`dhtm_sim::workload::TxOp`]
//! stream the simulator executes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod heap;
pub mod micro;
pub mod oltp;
pub mod trace;

pub use heap::SimHeap;
pub use micro::{
    BTreeWorkload, HashWorkload, MicroKind, QueueWorkload, RbTreeWorkload, SdgWorkload, SpsWorkload,
};
pub use oltp::{TatpWorkload, TpccWorkload};
pub use trace::TraceBuilder;

use dhtm_sim::workload::Workload;

/// The six micro-benchmarks in the order the paper's figures present them.
pub fn micro_suite(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(QueueWorkload::new(seed)),
        Box::new(HashWorkload::new(seed)),
        Box::new(SdgWorkload::new(seed)),
        Box::new(SpsWorkload::new(seed)),
        Box::new(BTreeWorkload::new(seed)),
        Box::new(RbTreeWorkload::new(seed)),
    ]
}

/// Builds a micro-benchmark by name ("queue", "hash", "sdg", "sps", "btree",
/// "rbtree").
pub fn micro_by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    let kind = match name {
        "queue" => MicroKind::Queue,
        "hash" => MicroKind::Hash,
        "sdg" => MicroKind::Sdg,
        "sps" => MicroKind::Sps,
        "btree" => MicroKind::BTree,
        "rbtree" => MicroKind::RbTree,
        _ => return None,
    };
    Some(micro::build(kind, seed))
}

/// Builds any of the paper's eight workloads by name: the six
/// micro-benchmarks plus `"tatp"` and `"tpcc"`. Returns `None` for unknown
/// names.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    match name {
        "tatp" => Some(Box::new(TatpWorkload::new(seed))),
        "tpcc" => Some(Box::new(TpccWorkload::new(seed))),
        other => micro_by_name(other, seed),
    }
}

/// All eight workload names, in the paper's order.
pub const NAMES: [&str; 8] = [
    "queue", "hash", "sdg", "sps", "btree", "rbtree", "tatp", "tpcc",
];

/// Whether `name` resolves via [`by_name`], without paying for workload
/// construction (spec validation calls this per cell).
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_all_eight_workloads() {
        for name in [
            "queue", "hash", "sdg", "sps", "btree", "rbtree", "tatp", "tpcc",
        ] {
            assert_eq!(by_name(name, 7).unwrap().name(), name);
        }
        assert!(by_name("nope", 7).is_none());
    }

    #[test]
    fn suite_has_six_benchmarks_with_paper_names() {
        let suite = micro_suite(1);
        let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["queue", "hash", "sdg", "sps", "btree", "rbtree"]
        );
    }

    #[test]
    fn lookup_by_name_matches_suite() {
        for name in ["queue", "hash", "sdg", "sps", "btree", "rbtree"] {
            assert_eq!(micro_by_name(name, 3).unwrap().name(), name);
        }
        assert!(micro_by_name("nope", 3).is_none());
    }
}
