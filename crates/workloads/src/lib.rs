#![forbid(unsafe_code)]
//! # dhtm-workloads
//!
//! The workloads of the paper's evaluation (Section V, Table IV), implemented
//! as data structures laid out in *simulated* persistent memory so that every
//! access a workload performs becomes a concrete cache-line access in the
//! simulator:
//!
//! * the six NVHeaps-style micro-benchmarks — [`micro::QueueWorkload`],
//!   [`micro::HashWorkload`], [`micro::SdgWorkload`], [`micro::SpsWorkload`],
//!   [`micro::BTreeWorkload`] and [`micro::RbTreeWorkload`] — each performing
//!   batches of atomic insert/delete/swap operations sized to reproduce the
//!   write-set footprints of Table IV;
//! * the OLTP workloads — [`oltp::TatpWorkload`] and [`oltp::TpccWorkload`] —
//!   in-memory row stores whose transactions have write working sets
//!   comparable to (TATP) or exceeding (TPC-C) the 32 KB L1.
//!
//! Each workload keeps a host-side model of its data structure (so that the
//! operations are semantically real — collisions, splits, rotations, row
//! look-ups) and renders every operation into the [`dhtm_sim::workload::TxOp`]
//! stream the simulator executes.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod heap;
pub mod micro;
pub mod oltp;
pub mod trace;

pub use heap::SimHeap;
pub use micro::{
    BTreeWorkload, HashWorkload, MicroKind, QueueWorkload, RbTreeWorkload, SdgWorkload, SpsWorkload,
};
pub use oltp::{TatpWorkload, TpccWorkload};
pub use trace::TraceBuilder;

use dhtm_sim::workload::Workload;

/// The six micro-benchmarks in the order the paper's figures present them.
pub fn micro_suite(seed: u64) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(QueueWorkload::new(seed)),
        Box::new(HashWorkload::new(seed)),
        Box::new(SdgWorkload::new(seed)),
        Box::new(SpsWorkload::new(seed)),
        Box::new(BTreeWorkload::new(seed)),
        Box::new(RbTreeWorkload::new(seed)),
    ]
}

/// Builds a micro-benchmark by name ("queue", "hash", "sdg", "sps", "btree",
/// "rbtree").
pub fn micro_by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    let kind = match name {
        "queue" => MicroKind::Queue,
        "hash" => MicroKind::Hash,
        "sdg" => MicroKind::Sdg,
        "sps" => MicroKind::Sps,
        "btree" => MicroKind::BTree,
        "rbtree" => MicroKind::RbTree,
        _ => return None,
    };
    Some(micro::build(kind, seed))
}

/// Builds any of the paper's eight workloads by name: the six
/// micro-benchmarks plus `"tatp"` and `"tpcc"`. Returns `None` for unknown
/// names.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    match name {
        "tatp" => Some(Box::new(TatpWorkload::new(seed))),
        "tpcc" => Some(Box::new(TpccWorkload::new(seed))),
        other => micro_by_name(other, seed),
    }
}

/// Builds any of the paper's eight workloads by name, with a diagnosable
/// error instead of [`by_name`]'s `None`: the error names the rejected
/// workload and lists everything that would have resolved, in the spirit of
/// `RegistryError::UnknownEngine` on the engine side. Use this anywhere the
/// name comes from user input (CLI flags, spec files) rather than a
/// hard-coded catalogue.
///
/// # Errors
///
/// Returns [`WorkloadError::Unknown`] when `name` is not one of [`NAMES`].
pub fn try_by_name(name: &str, seed: u64) -> Result<Box<dyn Workload>, WorkloadError> {
    by_name(name, seed).ok_or_else(|| WorkloadError::Unknown(name.to_string()))
}

/// All eight workload names, in the paper's order.
pub const NAMES: [&str; 8] = [
    "queue", "hash", "sdg", "sps", "btree", "rbtree", "tatp", "tpcc",
];

/// Whether `name` resolves via [`by_name`], without paying for workload
/// construction (spec validation calls this per cell).
pub fn is_known(name: &str) -> bool {
    NAMES.contains(&name)
}

/// Errors from name-based workload resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// No workload with this name exists; the display form lists [`NAMES`]
    /// so a typo in a CLI flag or spec file is self-correcting.
    Unknown(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::Unknown(name) => {
                write!(f, "no workload '{name}': known workloads are ")?;
                for (i, known) in NAMES.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "'{known}'")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_covers_all_eight_workloads() {
        for name in [
            "queue", "hash", "sdg", "sps", "btree", "rbtree", "tatp", "tpcc",
        ] {
            assert_eq!(by_name(name, 7).unwrap().name(), name);
        }
        assert!(by_name("nope", 7).is_none());
    }

    #[test]
    fn try_by_name_lists_the_catalogue_on_unknown_names() {
        assert_eq!(try_by_name("hash", 7).unwrap().name(), "hash");
        let Err(err) = try_by_name("hsah", 7) else {
            panic!("'hsah' must not resolve");
        };
        assert_eq!(err, WorkloadError::Unknown("hsah".to_string()));
        let msg = err.to_string();
        assert!(msg.contains("'hsah'"), "{msg}");
        for name in NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn suite_has_six_benchmarks_with_paper_names() {
        let suite = micro_suite(1);
        let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["queue", "hash", "sdg", "sps", "btree", "rbtree"]
        );
    }

    #[test]
    fn lookup_by_name_matches_suite() {
        for name in ["queue", "hash", "sdg", "sps", "btree", "rbtree"] {
            assert_eq!(micro_by_name(name, 3).unwrap().name(), name);
        }
        assert!(micro_by_name("nope", 3).is_none());
    }
}
