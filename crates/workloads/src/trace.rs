//! Helper for rendering workload operations into transaction op streams.

use dhtm_sim::locks::LockId;
use dhtm_sim::workload::{Transaction, TxOp};
use dhtm_types::addr::{Address, LINE_SIZE};

/// Accumulates the memory operations and lock set of one transaction while
/// the workload's host-side logic runs.
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    ops: Vec<TxOp>,
    locks: Vec<LockId>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a word load.
    pub fn read(&mut self, addr: Address) -> &mut Self {
        self.ops.push(TxOp::Read(addr));
        self
    }

    /// Records a word store.
    pub fn write(&mut self, addr: Address, value: u64) -> &mut Self {
        self.ops.push(TxOp::Write(addr, value));
        self
    }

    /// Records a read of every word of the cache line containing `addr`
    /// (reading a whole object/row).
    pub fn read_line(&mut self, addr: Address) -> &mut Self {
        let base = addr.line().base();
        // One access per line is enough to bring it into the read set; touch
        // two words to model field accesses without inflating the op count.
        self.ops.push(TxOp::Read(base));
        self.ops.push(TxOp::Read(base.offset(8)));
        self
    }

    /// Records writes covering the cache line containing `addr` (writing a
    /// whole object/row), using `value` as the payload seed.
    pub fn write_line(&mut self, addr: Address, value: u64) -> &mut Self {
        let base = addr.line().base();
        self.ops.push(TxOp::Write(base, value));
        self.ops.push(TxOp::Write(base.offset(8), value ^ 0xff));
        self
    }

    /// Records writes covering `n` consecutive cache lines starting at
    /// `addr` (a multi-line row or node).
    pub fn write_span(&mut self, addr: Address, n: u64, value: u64) -> &mut Self {
        for i in 0..n {
            self.write_line(addr.offset(i * LINE_SIZE as u64), value.wrapping_add(i));
        }
        self
    }

    /// Records reads covering `n` consecutive cache lines starting at `addr`.
    pub fn read_span(&mut self, addr: Address, n: u64) -> &mut Self {
        for i in 0..n {
            self.read_line(addr.offset(i * LINE_SIZE as u64));
        }
        self
    }

    /// Records local computation.
    pub fn compute(&mut self, cycles: u64) -> &mut Self {
        self.ops.push(TxOp::Compute(cycles));
        self
    }

    /// Adds a lock to the transaction's lock set (deduplicated).
    pub fn lock(&mut self, lock: LockId) -> &mut Self {
        if !self.locks.contains(&lock) {
            self.locks.push(lock);
        }
        self
    }

    /// Number of operations recorded so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Finalises the transaction.
    pub fn build(self, label: &'static str) -> Transaction {
        Transaction::new(self.ops, self.locks, label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_ops_and_locks() {
        let mut b = TraceBuilder::new();
        b.read(Address::new(0x100))
            .write(Address::new(0x140), 7)
            .compute(5)
            .lock(LockId(3))
            .lock(LockId(3));
        let tx = b.build("t");
        assert_eq!(tx.ops.len(), 3);
        assert_eq!(tx.locks, vec![LockId(3)]);
        assert_eq!(tx.label, "t");
    }

    #[test]
    fn line_and_span_helpers_cover_expected_lines() {
        let mut b = TraceBuilder::new();
        b.write_span(Address::new(0x1000), 3, 1);
        b.read_span(Address::new(0x4000), 2);
        let tx = b.build("span");
        assert_eq!(tx.write_set_lines().len(), 3);
        assert_eq!(tx.read_set_lines().len(), 2);
    }

    #[test]
    fn build_round_trips_program_order_exactly() {
        // What goes into the builder must come out of the transaction in
        // the same order with the same operands: the rendered trace IS the
        // program every engine executes, so any reordering or coalescing
        // here would silently change the simulated access stream.
        let mut b = TraceBuilder::new();
        b.read(Address::new(0x100))
            .compute(7)
            .write(Address::new(0x140), 11)
            .read(Address::new(0x100))
            .write(Address::new(0x180), 13);
        let tx = b.build("round-trip");
        assert_eq!(
            tx.ops,
            vec![
                TxOp::Read(Address::new(0x100)),
                TxOp::Compute(7),
                TxOp::Write(Address::new(0x140), 11),
                TxOp::Read(Address::new(0x100)),
                TxOp::Write(Address::new(0x180), 13),
            ]
        );
    }

    #[test]
    fn identical_build_sequences_are_bit_identical() {
        let build = || {
            let mut b = TraceBuilder::new();
            b.lock(LockId(9))
                .read_span(Address::new(0x2000), 3)
                .write_line(Address::new(0x2040), 5)
                .compute(150)
                .lock(LockId(2));
            b.build("det")
        };
        let (a, b) = (build(), build());
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.locks, b.locks);
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn len_and_is_empty_track_recorded_ops() {
        let mut b = TraceBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        b.read_line(Address::new(0x40));
        assert!(!b.is_empty());
        assert_eq!(b.len(), 2, "read_line touches two words of the line");
        // Locks do not count as operations.
        b.lock(LockId(1));
        assert_eq!(b.len(), 2);
    }
}
