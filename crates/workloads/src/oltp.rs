//! The OLTP workloads: TATP and (simplified) TPC-C, as in-memory row stores
//! laid out in simulated persistent memory.
//!
//! The defining property the paper relies on (Section V) is the *write
//! working-set size*: TATP's is comparable to the 32 KB L1 (≈167 cache lines
//! ≈ 10 KB) and TPC-C's exceeds it (≈590 lines ≈ 37 KB), which is why
//! L1-limited HTM designs abort heavily on them while DHTM does not. Each
//! workload therefore issues batches of standard operations (reads and
//! updates for TATP, new-order/payment for TPC-C) calibrated to reproduce
//! those footprints; the operation logic itself (row look-ups, per-district
//! order numbering, stock updates) is executed for real against host-side
//! table models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dhtm_sim::locks::LockId;
use dhtm_sim::workload::{Transaction, Workload};
use dhtm_types::addr::{Address, LINE_SIZE};
use dhtm_types::ids::CoreId;

use crate::heap::SimHeap;
use crate::trace::TraceBuilder;

/// Cycles of computation per database operation (predicate evaluation, row
/// marshalling).
const DB_OP_COMPUTE: u64 = 150;

// ---------------------------------------------------------------------------
// TATP
// ---------------------------------------------------------------------------

/// The TATP mobile-carrier database workload.
#[derive(Debug)]
pub struct TatpWorkload {
    rng: StdRng,
    subscribers: u64,
    hot_subscribers: u64,
    subscriber_table: Address,
    access_info_table: Address,
    special_facility_table: Address,
    call_forwarding_table: Address,
    /// Host-side model: current location of each subscriber.
    locations: Vec<u64>,
    /// Host-side model: number of active call-forwarding records.
    active_call_forwarding: Vec<u8>,
    ops_per_tx: usize,
}

/// Lines per SUBSCRIBER row (the row has ~33 columns in TATP).
const SUBSCRIBER_ROW_LINES: u64 = 2;

impl TatpWorkload {
    /// Creates a TATP instance with 65 536 subscribers.
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let subscribers = 65_536;
        TatpWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x7A79),
            subscribers,
            hot_subscribers: 64,
            subscriber_table: heap.alloc_lines(subscribers * SUBSCRIBER_ROW_LINES),
            access_info_table: heap.alloc_lines(subscribers),
            special_facility_table: heap.alloc_lines(subscribers),
            call_forwarding_table: heap.alloc_lines(subscribers),
            locations: vec![0; subscribers as usize],
            active_call_forwarding: vec![0; subscribers as usize],
            ops_per_tx: 200,
        }
    }

    fn pick_subscriber(&mut self) -> u64 {
        // A small hot set concentrates a fraction of the traffic, producing
        // the conflict misses the paper reports for TATP.
        if self.rng.gen_ratio(1, 10) {
            self.rng.gen_range(0..self.hot_subscribers)
        } else {
            self.rng.gen_range(0..self.subscribers)
        }
    }

    fn subscriber_addr(&self, s: u64) -> Address {
        self.subscriber_table
            .offset(s * SUBSCRIBER_ROW_LINES * LINE_SIZE as u64)
    }

    fn access_info_addr(&self, s: u64) -> Address {
        self.access_info_table.offset(s * LINE_SIZE as u64)
    }

    fn special_facility_addr(&self, s: u64) -> Address {
        self.special_facility_table.offset(s * LINE_SIZE as u64)
    }

    fn call_forwarding_addr(&self, s: u64) -> Address {
        self.call_forwarding_table.offset(s * LINE_SIZE as u64)
    }

    fn row_lock(s: u64) -> LockId {
        LockId(1_000 + s % 4_096)
    }
}

impl Workload for TatpWorkload {
    fn name(&self) -> &'static str {
        "tatp"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        for i in 0..self.ops_per_tx {
            let s = self.pick_subscriber();
            t.lock(Self::row_lock(s));
            match i % 8 {
                // GET_SUBSCRIBER_DATA
                0 | 1 => {
                    t.read_span(self.subscriber_addr(s), SUBSCRIBER_ROW_LINES);
                }
                // GET_ACCESS_DATA
                2 => {
                    t.read_line(self.access_info_addr(s));
                }
                // GET_NEW_DESTINATION
                3 => {
                    t.read_line(self.special_facility_addr(s));
                    t.read_line(self.call_forwarding_addr(s));
                }
                // UPDATE_SUBSCRIBER_DATA: bit flags + special facility.
                4 => {
                    t.read_span(self.subscriber_addr(s), SUBSCRIBER_ROW_LINES);
                    t.write_span(self.subscriber_addr(s), SUBSCRIBER_ROW_LINES, s);
                    t.write_line(self.special_facility_addr(s), s ^ 1);
                }
                // UPDATE_LOCATION
                5 => {
                    self.locations[s as usize] = self.locations[s as usize].wrapping_add(1);
                    t.read_span(self.subscriber_addr(s), SUBSCRIBER_ROW_LINES);
                    t.write_line(
                        self.subscriber_addr(s).offset(LINE_SIZE as u64),
                        self.locations[s as usize],
                    );
                }
                // INSERT_CALL_FORWARDING
                6 => {
                    self.active_call_forwarding[s as usize] =
                        self.active_call_forwarding[s as usize].saturating_add(1);
                    t.read_line(self.special_facility_addr(s));
                    t.write_line(self.call_forwarding_addr(s), s);
                }
                // DELETE_CALL_FORWARDING
                _ => {
                    t.read_line(self.call_forwarding_addr(s));
                    if self.active_call_forwarding[s as usize] > 0 {
                        self.active_call_forwarding[s as usize] -= 1;
                        t.write_line(self.call_forwarding_addr(s), 0);
                    }
                }
            }
            t.compute(DB_OP_COMPUTE);
        }
        t.build("tatp-batch")
    }
}

// ---------------------------------------------------------------------------
// TPC-C (simplified: new-order + payment)
// ---------------------------------------------------------------------------

/// Lines per STOCK row (TPC-C stock rows are ~300 bytes).
const STOCK_ROW_LINES: u64 = 5;
/// Lines per CUSTOMER row (~650 bytes).
const CUSTOMER_ROW_LINES: u64 = 10;
/// Items per new-order transaction (TPC-C specifies 5–15; we use the mean).
const ITEMS_PER_ORDER: u64 = 10;

/// The (simplified) TPC-C workload: batches of new-order and payment
/// transactions against a warehouse/district/stock/customer schema.
#[derive(Debug)]
pub struct TpccWorkload {
    rng: StdRng,
    warehouses: u64,
    items: u64,
    customers_per_district: u64,
    warehouse_table: Address,
    district_table: Address,
    stock_table: Address,
    customer_table: Address,
    order_table: Address,
    order_line_table: Address,
    history_table: Address,
    /// Host-side model: next order id per (warehouse, district).
    next_order_id: Vec<u64>,
    /// Host-side model: stock quantity per (warehouse, item).
    stock_quantity: Vec<u64>,
    orders_per_tx: usize,
    payments_per_tx: usize,
    order_capacity: u64,
    history_cursor: u64,
}

/// Districts per warehouse (TPC-C standard).
const DISTRICTS: u64 = 10;

impl TpccWorkload {
    /// Creates a TPC-C instance with 8 warehouses and 1 024 items.
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let warehouses = 8;
        let items = 1_024;
        let customers_per_district = 256;
        let order_capacity = 1 << 20;
        TpccWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x79CC),
            warehouses,
            items,
            customers_per_district,
            warehouse_table: heap.alloc_lines(warehouses),
            district_table: heap.alloc_lines(warehouses * DISTRICTS),
            stock_table: heap.alloc_lines(warehouses * items * STOCK_ROW_LINES),
            customer_table: heap
                .alloc_lines(warehouses * DISTRICTS * customers_per_district * CUSTOMER_ROW_LINES),
            order_table: heap.alloc_lines(order_capacity),
            order_line_table: heap.alloc_lines(order_capacity * ITEMS_PER_ORDER),
            history_table: heap.alloc_lines(order_capacity),
            next_order_id: vec![0; (warehouses * DISTRICTS) as usize],
            stock_quantity: vec![100; (warehouses * items) as usize],
            orders_per_tx: 20,
            payments_per_tx: 4,
            order_capacity,
            history_cursor: 0,
        }
    }

    fn district_addr(&self, w: u64, d: u64) -> Address {
        self.district_table
            .offset((w * DISTRICTS + d) * LINE_SIZE as u64)
    }

    fn stock_addr(&self, w: u64, item: u64) -> Address {
        self.stock_table
            .offset((w * self.items + item) * STOCK_ROW_LINES * LINE_SIZE as u64)
    }

    fn customer_addr(&self, w: u64, d: u64, c: u64) -> Address {
        self.customer_table.offset(
            ((w * DISTRICTS + d) * self.customers_per_district + c)
                * CUSTOMER_ROW_LINES
                * LINE_SIZE as u64,
        )
    }

    fn order_addr(&self, id: u64) -> Address {
        self.order_table
            .offset((id % self.order_capacity) * LINE_SIZE as u64)
    }

    fn order_line_addr(&self, id: u64, item_idx: u64) -> Address {
        self.order_line_table
            .offset(((id % self.order_capacity) * ITEMS_PER_ORDER + item_idx) * LINE_SIZE as u64)
    }

    fn district_lock(w: u64, d: u64) -> LockId {
        LockId(10_000 + w * DISTRICTS + d)
    }

    fn stock_lock(w: u64, item: u64) -> LockId {
        LockId(20_000 + (w * 1024 + item) % 2_048)
    }

    /// One TPC-C new-order against warehouse `w`, district `d`.
    fn new_order(&mut self, t: &mut TraceBuilder, w: u64, d: u64) {
        t.lock(Self::district_lock(w, d));
        // Read warehouse tax and district (then bump the next order id).
        t.read_line(self.warehouse_table.offset(w * LINE_SIZE as u64));
        t.read_line(self.district_addr(w, d));
        let slot = (w * DISTRICTS + d) as usize;
        let order_id = self.next_order_id[slot];
        self.next_order_id[slot] += 1;
        t.write_line(self.district_addr(w, d), order_id);
        // Customer credit check.
        let c = self.rng.gen_range(0..self.customers_per_district);
        t.read_span(self.customer_addr(w, d, c), 2);
        // Insert ORDER and NEW-ORDER rows (each district owns a disjoint
        // region of the order / order-line tables).
        let global_order = (w * DISTRICTS + d) * 8_192 + order_id;
        t.write_line(self.order_addr(global_order), order_id);
        // Order lines and stock updates.
        for li in 0..ITEMS_PER_ORDER {
            let item = self.rng.gen_range(0..self.items);
            // 1% of items come from a remote warehouse (the TPC-C rule that
            // creates cross-warehouse sharing).
            let supply_w = if self.rng.gen_ratio(1, 100) {
                self.rng.gen_range(0..self.warehouses)
            } else {
                w
            };
            t.lock(Self::stock_lock(supply_w, item));
            let stock_slot = (supply_w * self.items + item) as usize;
            let old_qty = self.stock_quantity[stock_slot];
            let qty = if old_qty > 10 {
                old_qty - 1
            } else {
                old_qty + 91
            };
            self.stock_quantity[stock_slot] = qty;
            t.read_span(self.stock_addr(supply_w, item), STOCK_ROW_LINES);
            t.write_span(self.stock_addr(supply_w, item), 2, qty);
            t.write_line(self.order_line_addr(global_order, li), item);
            t.compute(DB_OP_COMPUTE);
        }
    }

    /// One TPC-C payment against warehouse `w`, district `d`.
    fn payment(&mut self, t: &mut TraceBuilder, w: u64, d: u64) {
        t.lock(Self::district_lock(w, d));
        t.read_line(self.warehouse_table.offset(w * LINE_SIZE as u64));
        t.write_line(self.warehouse_table.offset(w * LINE_SIZE as u64), w);
        t.read_line(self.district_addr(w, d));
        t.write_line(self.district_addr(w, d), d);
        let c = self.rng.gen_range(0..self.customers_per_district);
        t.read_span(self.customer_addr(w, d, c), 3);
        t.write_span(self.customer_addr(w, d, c), 2, c);
        self.history_cursor += 1;
        t.write_line(
            self.history_table
                .offset((self.history_cursor % self.order_capacity) * LINE_SIZE as u64),
            c,
        );
        t.compute(DB_OP_COMPUTE);
    }
}

impl Workload for TpccWorkload {
    fn name(&self) -> &'static str {
        "tpcc"
    }

    fn next_transaction(&mut self, core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        // Each core is homed on a warehouse; a small fraction of its work
        // goes to other warehouses, as in TPC-C.
        let home_w = core.get() as u64 % self.warehouses;
        for _ in 0..self.orders_per_tx {
            let w = if self.rng.gen_ratio(1, 20) {
                self.rng.gen_range(0..self.warehouses)
            } else {
                home_w
            };
            let d = self.rng.gen_range(0..DISTRICTS);
            self.new_order(&mut t, w, d);
        }
        for _ in 0..self.payments_per_tx {
            let d = self.rng.gen_range(0..DISTRICTS);
            self.payment(&mut t, home_w, d);
        }
        t.build("tpcc-batch")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tatp_write_set_is_comparable_to_the_paper() {
        // Table IV: TATP write set = 167 lines. Accept the same ±40% band as
        // the micro-benchmarks.
        let mut w = TatpWorkload::new(11);
        let avg: f64 = (0..5)
            .map(|_| w.next_transaction(CoreId::new(0)).write_set_lines().len() as f64)
            .sum::<f64>()
            / 5.0;
        assert!(avg > 100.0 && avg < 234.0, "TATP write set {avg:.0} lines");
    }

    #[test]
    fn tpcc_write_set_exceeds_the_l1() {
        // Table IV: TPC-C write set = 590 lines (> 512-line / 32 KB L1).
        let mut w = TpccWorkload::new(11);
        let lines = w.next_transaction(CoreId::new(0)).write_set_lines().len();
        assert!(
            lines > 512,
            "TPC-C write set must exceed the L1 ({lines} lines)"
        );
        assert!(
            lines < 900,
            "TPC-C write set unexpectedly large ({lines} lines)"
        );
    }

    #[test]
    fn tpcc_order_ids_advance_per_district() {
        let mut w = TpccWorkload::new(5);
        let before: u64 = w.next_order_id.iter().sum();
        let _ = w.next_transaction(CoreId::new(0));
        let after: u64 = w.next_order_id.iter().sum();
        assert_eq!(after - before, w.orders_per_tx as u64);
    }

    #[test]
    fn tatp_transactions_declare_row_locks() {
        let mut w = TatpWorkload::new(5);
        let tx = w.next_transaction(CoreId::new(0));
        assert!(tx.locks.len() > 10, "fine-grained row locks expected");
    }

    #[test]
    fn stock_quantity_stays_positive() {
        let mut w = TpccWorkload::new(5);
        for _ in 0..20 {
            let _ = w.next_transaction(CoreId::new(0));
        }
        assert!(w.stock_quantity.iter().all(|&q| q > 0));
    }

    #[test]
    fn different_cores_use_different_home_warehouses() {
        let mut w = TpccWorkload::new(5);
        let t0 = w.next_transaction(CoreId::new(0));
        let t1 = w.next_transaction(CoreId::new(1));
        // The district locks differ because the home warehouses differ.
        assert_ne!(t0.locks, t1.locks);
    }

    #[test]
    fn tatp_transaction_mix_ratios() {
        // The batch cycles through the 8 standard TATP operations via
        // `i % 8`: one compute block per DB operation, and a read-dominated
        // load/store mix (classes 0-3 are read-only, 4-7 update).
        let mut w = TatpWorkload::new(23);
        let tx = w.next_transaction(CoreId::new(0));
        let computes = tx
            .ops
            .iter()
            .filter(|op| matches!(op, dhtm_sim::workload::TxOp::Compute(_)))
            .count();
        assert_eq!(computes, w.ops_per_tx, "one compute block per DB op");
        let loads = tx.load_count() as f64;
        let stores = tx.store_count() as f64;
        assert!(stores > 0.0, "update classes must issue stores");
        let ratio = loads / stores;
        // 25 occurrences of each class give 650 loads and 250-300 stores.
        assert!(
            (2.0..=3.0).contains(&ratio),
            "TATP load/store ratio {ratio:.2} outside the read-dominated band"
        );
    }

    #[test]
    fn tpcc_transaction_mix_ratios() {
        // Each batch is orders_per_tx new-orders and payments_per_tx
        // payments (5:1 by construction), observable through the host-side
        // models: order ids advance once per new-order, the history cursor
        // once per payment.
        let mut w = TpccWorkload::new(23);
        let orders_before: u64 = w.next_order_id.iter().sum();
        let history_before = w.history_cursor;
        let _ = w.next_transaction(CoreId::new(0));
        let orders = w.next_order_id.iter().sum::<u64>() - orders_before;
        let payments = w.history_cursor - history_before;
        assert_eq!(orders, w.orders_per_tx as u64);
        assert_eq!(payments, w.payments_per_tx as u64);
        assert_eq!(
            orders / payments,
            5,
            "paper-calibrated 5:1 order:payment mix"
        );
    }

    #[test]
    fn tatp_streams_are_seed_deterministic() {
        let mut a = TatpWorkload::new(99);
        let mut b = TatpWorkload::new(99);
        for i in 0..3 {
            let ta = a.next_transaction(CoreId::new(i % 2));
            let tb = b.next_transaction(CoreId::new(i % 2));
            assert_eq!(ta.ops, tb.ops, "same seed must replay the same stream");
            assert_eq!(ta.locks, tb.locks);
        }
        let mut c = TatpWorkload::new(100);
        let tc = c.next_transaction(CoreId::new(0));
        let ta = TatpWorkload::new(99).next_transaction(CoreId::new(0));
        assert_ne!(ta.ops, tc.ops, "different seeds must diverge");
    }

    #[test]
    fn tpcc_streams_are_seed_deterministic() {
        let mut a = TpccWorkload::new(42);
        let mut b = TpccWorkload::new(42);
        for _ in 0..2 {
            let ta = a.next_transaction(CoreId::new(1));
            let tb = b.next_transaction(CoreId::new(1));
            assert_eq!(ta.ops, tb.ops);
            assert_eq!(ta.locks, tb.locks);
        }
        // The host-side models evolved identically too.
        assert_eq!(a.next_order_id, b.next_order_id);
        assert_eq!(a.stock_quantity, b.stock_quantity);
        assert_eq!(a.history_cursor, b.history_cursor);
    }
}
