//! A simple bump allocator over the simulated persistent address space.

use dhtm_types::addr::{Address, LINE_SIZE};

/// A bump allocator handing out regions of the simulated persistent heap.
///
/// Workloads use it to lay out their data structures (queue slots, hash
/// buckets, tree nodes, database rows) at concrete addresses, so that every
/// operation turns into real cache-line traffic in the simulator. There is no
/// deallocation — freed objects are simply retired, which is adequate for the
/// bounded-length benchmark runs and mirrors how the original benchmarks
/// pre-allocate their pools.
#[derive(Debug, Clone)]
pub struct SimHeap {
    next: u64,
    end: u64,
}

impl SimHeap {
    /// Default base address of workload heaps (keeps clear of address 0 and
    /// of the log areas used by the sdTM engine).
    pub const DEFAULT_BASE: u64 = 1 << 20;
    /// Default heap size (1 GiB of simulated address space).
    pub const DEFAULT_SIZE: u64 = 1 << 30;

    /// Creates a heap spanning `[base, base + size)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "heap must have a non-zero size");
        SimHeap {
            next: base,
            end: base + size,
        }
    }

    /// Creates the default workload heap.
    pub fn default_heap() -> Self {
        Self::new(Self::DEFAULT_BASE, Self::DEFAULT_SIZE)
    }

    /// Allocates `bytes` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted or `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Address {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let aligned = (self.next + align - 1) & !(align - 1);
        let new_next = aligned + bytes;
        assert!(new_next <= self.end, "simulated heap exhausted");
        self.next = new_next;
        Address::new(aligned)
    }

    /// Allocates `n` whole cache lines, line-aligned.
    pub fn alloc_lines(&mut self, n: u64) -> Address {
        self.alloc(n * LINE_SIZE as u64, LINE_SIZE as u64)
    }

    /// Bytes handed out so far.
    pub fn used(&self) -> u64 {
        self.next - Self::DEFAULT_BASE
    }
}

impl Default for SimHeap {
    fn default() -> Self {
        Self::default_heap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_aligned_and_disjoint() {
        let mut h = SimHeap::default_heap();
        let a = h.alloc_lines(2);
        let b = h.alloc_lines(1);
        assert!(a.is_line_aligned());
        assert!(b.is_line_aligned());
        assert!(b.raw() >= a.raw() + 128);
    }

    #[test]
    fn word_alignment_allocation() {
        let mut h = SimHeap::new(0x1000, 0x1000);
        let a = h.alloc(8, 8);
        let b = h.alloc(8, 8);
        assert_ne!(a, b);
        assert!(a.is_word_aligned());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut h = SimHeap::new(0x1000, 128);
        h.alloc_lines(3);
    }
}
