//! The six NVHeaps-style micro-benchmarks (Table IV of the paper).
//!
//! Each benchmark maintains a real shared data structure whose *layout* lives
//! in simulated persistent memory (every node/bucket/slot/entry has a
//! concrete address from [`SimHeap`]) and whose *contents* are modelled
//! host-side so operations behave semantically (hash collisions, B-tree
//! splits, red-black rotations).
//!
//! A transaction is a single atomic insert/delete (or swap pair for SPS)
//! whose element payload spans tens of cache lines — the ≈3 KB elements that
//! give the write-set footprints of Table IV (52–63 lines per transaction).
//! Structure metadata (queue head/tail counters, hash bucket headers, tree
//! nodes) is shared by all cores, so the conflict behaviour of Figure 5 /
//! Table V emerges: the queue's counters are a severe hot spot (highest abort
//! rate), hash buckets rarely collide (lowest), and the trees sit in between
//! because updates near the root are shared.
//!
//! While copying a payload the benchmarks repeatedly update a checksum word
//! in the element header, giving the write stream the temporal reuse that the
//! DHTM log buffer exploits (Figure 6): a small buffer evicts the header line
//! over and over, a 64-entry buffer coalesces all of its updates into one log
//! record.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dhtm_sim::locks::LockId;
use dhtm_sim::workload::{Transaction, Workload};
use dhtm_types::addr::{Address, LINE_SIZE};
use dhtm_types::ids::CoreId;

use crate::heap::SimHeap;
use crate::trace::TraceBuilder;

/// Which micro-benchmark to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroKind {
    /// Insert/delete entries in a queue.
    Queue,
    /// Insert/delete entries in a hash table.
    Hash,
    /// Insert/delete edges in a scalable graph.
    Sdg,
    /// Random swaps between entries in an array.
    Sps,
    /// Insert/delete nodes in a B-tree.
    BTree,
    /// Insert/delete nodes in a red-black tree.
    RbTree,
}

/// Builds the workload for `kind`.
pub fn build(kind: MicroKind, seed: u64) -> Box<dyn Workload> {
    match kind {
        MicroKind::Queue => Box::new(QueueWorkload::new(seed)),
        MicroKind::Hash => Box::new(HashWorkload::new(seed)),
        MicroKind::Sdg => Box::new(SdgWorkload::new(seed)),
        MicroKind::Sps => Box::new(SpsWorkload::new(seed)),
        MicroKind::BTree => Box::new(BTreeWorkload::new(seed)),
        MicroKind::RbTree => Box::new(RbTreeWorkload::new(seed)),
    }
}

/// Number of coarse-grained lock partitions used by the lock-based designs.
const LOCK_PARTITIONS: u64 = 32;

fn partition_lock(index: u64) -> LockId {
    LockId(index % LOCK_PARTITIONS)
}

/// Cycles of work per payload cache line (marshalling, checksumming,
/// predicate evaluation). Calibrated so that a ≈3 KB-element transaction
/// takes tens of thousands of cycles on the in-order cores, as in the
/// paper's setup.
const PAYLOAD_LINE_WORK: u64 = 350;
/// Cycles of work per structural operation (pointer chasing, comparisons).
const OP_COMPUTE: u64 = 25;

/// Writes an element payload of `lines` cache lines starting at `base`,
/// interleaving updates of the element-header checksum word (creating the
/// write reuse that the log buffer coalesces).
fn write_payload(t: &mut TraceBuilder, base: Address, lines: u64, seed: u64) {
    let header = base;
    for i in 0..lines {
        let line_addr = base.offset(i * LINE_SIZE as u64);
        t.write_line(line_addr, seed.wrapping_add(i));
        t.compute(PAYLOAD_LINE_WORK);
        // Running checksum in the element header, updated per payload line.
        t.write(header.offset(16), seed ^ i);
    }
}

/// Reads an element payload of `lines` cache lines starting at `base`.
fn read_payload(t: &mut TraceBuilder, base: Address, lines: u64) {
    for i in 0..lines {
        t.read_line(base.offset(i * LINE_SIZE as u64));
        t.compute(PAYLOAD_LINE_WORK / 4);
    }
}

// ---------------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------------

/// A shared circular queue of ≈3 KB entries with global head/tail counters
/// ("Insert/delete entries in a queue").
#[derive(Debug)]
pub struct QueueWorkload {
    rng: StdRng,
    slots: Address,
    meta: Address,
    capacity: u64,
    entry_lines: u64,
    head: u64,
    tail: u64,
}

impl QueueWorkload {
    /// Creates the queue workload (1024 entries of 50 lines each).
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let capacity = 1024;
        let entry_lines = 50;
        let slots = heap.alloc_lines(capacity * entry_lines);
        let meta = heap.alloc_lines(2);
        QueueWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x51),
            slots,
            meta,
            capacity,
            entry_lines,
            head: 0,
            tail: 512, // pre-filled halfway so dequeues always succeed
        }
    }

    fn slot_addr(&self, index: u64) -> Address {
        self.slots
            .offset((index % self.capacity) * self.entry_lines * LINE_SIZE as u64)
    }
}

impl Workload for QueueWorkload {
    fn name(&self) -> &'static str {
        "queue"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        // Each transaction enqueues one entry and dequeues one entry; both
        // ends update the shared counter lines, the structural hot spot.
        let mut t = TraceBuilder::new();
        t.lock(LockId(0));
        // Enqueue.
        let tail = self.tail;
        self.tail = self.tail.wrapping_add(1);
        t.read(self.meta.offset(64)); // tail counter line
        write_payload(
            &mut t,
            self.slot_addr(tail),
            self.entry_lines,
            self.rng.gen(),
        );
        t.write(self.meta.offset(64), self.tail);
        // Dequeue.
        let head = self.head;
        self.head = self.head.wrapping_add(1);
        t.read(self.meta); // head counter line
        t.read_line(self.slot_addr(head));
        t.write_line(self.slot_addr(head), 0); // mark the slot free
        t.write(self.meta, self.head);
        t.compute(OP_COMPUTE);
        t.build("queue-op")
    }
}

// ---------------------------------------------------------------------------
// Hash table
// ---------------------------------------------------------------------------

/// A shared chained hash table with one header line per bucket and ≈3.5 KB
/// entry payloads ("Insert/delete entries in a hash table").
#[derive(Debug)]
pub struct HashWorkload {
    rng: StdRng,
    heap: SimHeap,
    buckets_addr: Address,
    buckets: Vec<Vec<(u64, Address)>>,
    key_space: u64,
    entry_lines: u64,
}

impl HashWorkload {
    /// Creates the hash workload (4096 buckets, 56-line entries).
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let num_buckets = 4096u64;
        let buckets_addr = heap.alloc_lines(num_buckets);
        let mut wl = HashWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0xA5),
            heap,
            buckets_addr,
            buckets: vec![Vec::new(); num_buckets as usize],
            key_space: 1 << 20,
            entry_lines: 56,
        };
        // Pre-populate so that deletes find keys from the first transaction.
        for _ in 0..2048 {
            let key = wl.rng.gen_range(0..wl.key_space);
            let addr = wl.heap.alloc_lines(wl.entry_lines);
            let b = wl.bucket_of(key);
            wl.buckets[b].push((key, addr));
        }
        wl
    }

    fn bucket_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E3779B97F4A7C15) % self.buckets.len() as u64) as usize
    }

    fn bucket_addr(&self, bucket: usize) -> Address {
        self.buckets_addr.offset(bucket as u64 * LINE_SIZE as u64)
    }
}

impl Workload for HashWorkload {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        // Insert a fresh entry...
        let key = self.rng.gen_range(0..self.key_space);
        let bucket = self.bucket_of(key);
        t.lock(partition_lock(bucket as u64));
        let entry = self.heap.alloc_lines(self.entry_lines);
        t.read_line(self.bucket_addr(bucket));
        write_payload(&mut t, entry, self.entry_lines, key);
        t.write_line(self.bucket_addr(bucket), key);
        self.buckets[bucket].push((key, entry));
        // ...and delete one from another (usually different) bucket.
        let victim_key = self.rng.gen_range(0..self.key_space);
        let vbucket = self.bucket_of(victim_key);
        t.lock(partition_lock(vbucket as u64));
        t.read_line(self.bucket_addr(vbucket));
        if let Some((_, old_entry)) = self.buckets[vbucket].pop() {
            t.read_line(old_entry);
            t.write_line(old_entry, 0); // poison the freed entry header
            t.write_line(self.bucket_addr(vbucket), 0);
        }
        t.compute(OP_COMPUTE);
        t.build("hash-op")
    }
}

// ---------------------------------------------------------------------------
// Scalable data graph (SDG)
// ---------------------------------------------------------------------------

/// An adjacency-list graph with a header line per vertex and ≈3.4 KB edge
/// records ("Insert/delete edges in a scalable graph").
#[derive(Debug)]
pub struct SdgWorkload {
    rng: StdRng,
    heap: SimHeap,
    vertices: u64,
    headers: Address,
    edge_lines: u64,
    edges: Vec<Vec<Address>>,
}

impl SdgWorkload {
    /// Creates the graph workload (2048 vertices, 53-line edge records).
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let vertices = 2048u64;
        let headers = heap.alloc_lines(vertices);
        let mut wl = SdgWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x5D6),
            heap,
            vertices,
            headers,
            edge_lines: 53,
            edges: vec![Vec::new(); vertices as usize],
        };
        for _ in 0..1024 {
            let u = wl.rng.gen_range(0..wl.vertices);
            let rec = wl.heap.alloc_lines(wl.edge_lines);
            wl.edges[u as usize].push(rec);
        }
        wl
    }

    fn header_addr(&self, v: u64) -> Address {
        self.headers.offset(v * LINE_SIZE as u64)
    }
}

impl Workload for SdgWorkload {
    fn name(&self) -> &'static str {
        "sdg"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        let u = self.rng.gen_range(0..self.vertices);
        let v = self.rng.gen_range(0..self.vertices);
        t.lock(partition_lock(u));
        // lint: allow(float-in-det, reason = "seeded-PRNG coin flip at a constant probability; replacing the draw would shift the random stream and re-pin every golden")
        if self.rng.gen_bool(0.5) || self.edges[u as usize].is_empty() {
            // Insert edge u -> v with a full edge record.
            let rec = self.heap.alloc_lines(self.edge_lines);
            t.read_line(self.header_addr(u));
            t.read_line(self.header_addr(v));
            write_payload(&mut t, rec, self.edge_lines, v);
            t.write_line(self.header_addr(u), v);
            self.edges[u as usize].push(rec);
        } else {
            // Delete the most recently added edge of u.
            let rec = self.edges[u as usize].pop().expect("non-empty");
            t.read_line(self.header_addr(u));
            read_payload(&mut t, rec, self.edge_lines / 8);
            t.write_line(rec, 0);
            t.write_line(self.header_addr(u), 0);
            // Deletes are cheap; pair them with an insert so every
            // transaction carries a Table IV-sized write set.
            let rec2 = self.heap.alloc_lines(self.edge_lines);
            write_payload(&mut t, rec2, self.edge_lines, u);
            t.write_line(self.header_addr(u), u);
            self.edges[u as usize].push(rec2);
        }
        t.compute(OP_COMPUTE);
        t.build("sdg-op")
    }
}

// ---------------------------------------------------------------------------
// SPS (random swaps)
// ---------------------------------------------------------------------------

/// Random swaps between ≈2 KB entries of a shared array ("Random swaps
/// between entries in an array").
#[derive(Debug)]
pub struct SpsWorkload {
    rng: StdRng,
    array: Address,
    entries: u64,
    entry_lines: u64,
}

impl SpsWorkload {
    /// Creates the swap workload (512 entries of 31 lines each).
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let entries = 512;
        let entry_lines = 31;
        let array = heap.alloc_lines(entries * entry_lines);
        SpsWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x595),
            array,
            entries,
            entry_lines,
        }
    }

    fn entry_addr(&self, i: u64) -> Address {
        self.array.offset(i * self.entry_lines * LINE_SIZE as u64)
    }
}

impl Workload for SpsWorkload {
    fn name(&self) -> &'static str {
        "sps"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        let a = self.rng.gen_range(0..self.entries);
        let b = self.rng.gen_range(0..self.entries);
        t.lock(partition_lock(a));
        t.lock(partition_lock(b));
        read_payload(&mut t, self.entry_addr(a), self.entry_lines);
        read_payload(&mut t, self.entry_addr(b), self.entry_lines);
        write_payload(&mut t, self.entry_addr(a), self.entry_lines, b);
        write_payload(&mut t, self.entry_addr(b), self.entry_lines, a);
        t.compute(OP_COMPUTE);
        t.build("sps-swap")
    }
}

// ---------------------------------------------------------------------------
// B-tree
// ---------------------------------------------------------------------------

const BTREE_MAX_KEYS: usize = 15; // one two-line node: 15 keys + header
/// Cache lines per B-tree node.
const BTREE_NODE_LINES: u64 = 2;
/// Cache lines per value record attached to a key.
const BTREE_VALUE_LINES: u64 = 54;

#[derive(Debug, Clone)]
struct BTreeNode {
    keys: Vec<u64>,
    children: Vec<usize>,
    addr: Address,
}

/// A B-tree with two-line nodes and ≈3.4 KB value records, supporting insert
/// with node splits and delete from the leaves ("Insert/delete nodes in a
/// b-tree").
#[derive(Debug)]
pub struct BTreeWorkload {
    rng: StdRng,
    heap: SimHeap,
    nodes: Vec<BTreeNode>,
    root: usize,
    key_space: u64,
    present_keys: Vec<u64>,
}

impl BTreeWorkload {
    /// Creates the B-tree workload pre-populated with 4096 keys.
    pub fn new(seed: u64) -> Self {
        let mut heap = SimHeap::default_heap();
        let root_addr = heap.alloc_lines(BTREE_NODE_LINES);
        let mut wl = BTreeWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0xB7EE),
            heap,
            nodes: vec![BTreeNode {
                keys: Vec::new(),
                children: Vec::new(),
                addr: root_addr,
            }],
            root: 0,
            key_space: 1 << 20,
            present_keys: Vec::new(),
        };
        let mut scratch = TraceBuilder::new();
        for _ in 0..4096 {
            let key = wl.rng.gen_range(0..wl.key_space);
            wl.insert(key, &mut scratch);
            wl.present_keys.push(key);
        }
        wl
    }

    fn new_node(&mut self) -> usize {
        let addr = self.heap.alloc_lines(BTREE_NODE_LINES);
        self.nodes.push(BTreeNode {
            keys: Vec::new(),
            children: Vec::new(),
            addr,
        });
        self.nodes.len() - 1
    }

    fn is_leaf(&self, n: usize) -> bool {
        self.nodes[n].children.is_empty()
    }

    /// Inserts a key, recording traversal reads and modification writes.
    fn insert(&mut self, key: u64, t: &mut TraceBuilder) {
        if self.nodes[self.root].keys.len() >= BTREE_MAX_KEYS {
            let old_root = self.root;
            let new_root = self.new_node();
            self.nodes[new_root].children.push(old_root);
            self.root = new_root;
            self.split_child(new_root, 0, t);
        }
        let mut n = self.root;
        loop {
            t.read_span(self.nodes[n].addr, BTREE_NODE_LINES);
            t.compute(OP_COMPUTE);
            if self.is_leaf(n) {
                let pos = self.nodes[n].keys.partition_point(|&k| k < key);
                self.nodes[n].keys.insert(pos, key);
                t.write_span(self.nodes[n].addr, BTREE_NODE_LINES, key);
                return;
            }
            let pos = self.nodes[n].keys.partition_point(|&k| k < key);
            let child = self.nodes[n].children[pos];
            if self.nodes[child].keys.len() >= BTREE_MAX_KEYS {
                self.split_child(n, pos, t);
                let pos = self.nodes[n].keys.partition_point(|&k| k < key);
                n = self.nodes[n].children[pos];
            } else {
                n = child;
            }
        }
    }

    fn split_child(&mut self, parent: usize, idx: usize, t: &mut TraceBuilder) {
        let child = self.nodes[parent].children[idx];
        let mid = BTREE_MAX_KEYS / 2;
        let promoted = self.nodes[child].keys[mid];
        let right = self.new_node();
        let right_keys = self.nodes[child].keys.split_off(mid + 1);
        self.nodes[child].keys.pop();
        self.nodes[right].keys = right_keys;
        if !self.is_leaf(child) {
            let right_children = self.nodes[child].children.split_off(mid + 1);
            self.nodes[right].children = right_children;
        }
        self.nodes[parent].keys.insert(idx, promoted);
        self.nodes[parent].children.insert(idx + 1, right);
        t.write_span(self.nodes[child].addr, BTREE_NODE_LINES, promoted);
        t.write_span(self.nodes[right].addr, BTREE_NODE_LINES, promoted ^ 1);
        t.write_span(self.nodes[parent].addr, BTREE_NODE_LINES, promoted ^ 2);
    }

    /// Deletes a key if present (leaf removal; interior keys remain as
    /// separators, which keeps look-ups correct).
    fn delete(&mut self, key: u64, t: &mut TraceBuilder) {
        let mut n = self.root;
        loop {
            t.read_span(self.nodes[n].addr, BTREE_NODE_LINES);
            t.compute(OP_COMPUTE);
            if let Ok(pos) = self.nodes[n].keys.binary_search(&key) {
                if self.is_leaf(n) {
                    self.nodes[n].keys.remove(pos);
                    t.write_span(self.nodes[n].addr, BTREE_NODE_LINES, key);
                }
                return;
            }
            if self.is_leaf(n) {
                return;
            }
            let pos = self.nodes[n].keys.partition_point(|&k| k < key);
            n = self.nodes[n].children[pos];
        }
    }
}

impl Workload for BTreeWorkload {
    fn name(&self) -> &'static str {
        "btree"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        // Insert a key together with its value record, and delete one
        // existing key.
        let mut t = TraceBuilder::new();
        let key = self.rng.gen_range(0..self.key_space);
        t.lock(partition_lock(key));
        self.insert(key, &mut t);
        self.present_keys.push(key);
        let value = self.heap.alloc_lines(BTREE_VALUE_LINES);
        write_payload(&mut t, value, BTREE_VALUE_LINES, key);
        if !self.present_keys.is_empty() {
            let idx = self.rng.gen_range(0..self.present_keys.len());
            let victim = self.present_keys.swap_remove(idx);
            t.lock(partition_lock(victim));
            self.delete(victim, &mut t);
        }
        t.build("btree-op")
    }
}

// ---------------------------------------------------------------------------
// Red-black tree
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Colour {
    Red,
    Black,
}

#[derive(Debug, Clone)]
struct RbNode {
    key: u64,
    colour: Colour,
    left: Option<usize>,
    right: Option<usize>,
    parent: Option<usize>,
    addr: Address,
}

/// Cache lines per value record attached to a red-black tree node.
const RB_VALUE_LINES: u64 = 46;

/// A red-black tree with one node per cache line and ≈2.9 KB value records,
/// supporting insert with the standard recolouring/rotation fix-up and delete
/// by splicing ("Insert/delete nodes in a red-black tree").
#[derive(Debug)]
pub struct RbTreeWorkload {
    rng: StdRng,
    heap: SimHeap,
    nodes: Vec<RbNode>,
    root: Option<usize>,
    key_space: u64,
    present_keys: Vec<u64>,
}

impl RbTreeWorkload {
    /// Creates the red-black-tree workload pre-populated with 4096 keys.
    pub fn new(seed: u64) -> Self {
        let heap = SimHeap::default_heap();
        let mut wl = RbTreeWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0xBB7),
            heap,
            nodes: Vec::new(),
            root: None,
            key_space: 1 << 20,
            present_keys: Vec::new(),
        };
        let mut scratch = TraceBuilder::new();
        for _ in 0..4096 {
            let key = wl.rng.gen_range(0..wl.key_space);
            wl.insert(key, &mut scratch);
            wl.present_keys.push(key);
        }
        wl
    }

    fn node_addr(&self, n: usize) -> Address {
        self.nodes[n].addr
    }

    fn new_node(&mut self, key: u64, parent: Option<usize>) -> usize {
        let addr = self.heap.alloc_lines(1);
        self.nodes.push(RbNode {
            key,
            colour: Colour::Red,
            left: None,
            right: None,
            parent,
            addr,
        });
        self.nodes.len() - 1
    }

    fn rotate_left(&mut self, x: usize, t: &mut TraceBuilder) {
        let y = self.nodes[x].right.expect("rotate_left needs right child");
        self.nodes[x].right = self.nodes[y].left;
        if let Some(yl) = self.nodes[y].left {
            self.nodes[yl].parent = Some(x);
            t.write_line(self.node_addr(yl), 0);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        match self.nodes[x].parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
                t.write_line(self.node_addr(p), 1);
            }
        }
        self.nodes[y].left = Some(x);
        self.nodes[x].parent = Some(y);
        t.write_line(self.node_addr(x), 2);
        t.write_line(self.node_addr(y), 3);
    }

    fn rotate_right(&mut self, x: usize, t: &mut TraceBuilder) {
        let y = self.nodes[x].left.expect("rotate_right needs left child");
        self.nodes[x].left = self.nodes[y].right;
        if let Some(yr) = self.nodes[y].right {
            self.nodes[yr].parent = Some(x);
            t.write_line(self.node_addr(yr), 0);
        }
        self.nodes[y].parent = self.nodes[x].parent;
        match self.nodes[x].parent {
            None => self.root = Some(y),
            Some(p) => {
                if self.nodes[p].left == Some(x) {
                    self.nodes[p].left = Some(y);
                } else {
                    self.nodes[p].right = Some(y);
                }
                t.write_line(self.node_addr(p), 1);
            }
        }
        self.nodes[y].right = Some(x);
        self.nodes[x].parent = Some(y);
        t.write_line(self.node_addr(x), 2);
        t.write_line(self.node_addr(y), 3);
    }

    fn insert(&mut self, key: u64, t: &mut TraceBuilder) {
        let mut parent = None;
        let mut cursor = self.root;
        while let Some(c) = cursor {
            t.read_line(self.node_addr(c));
            t.compute(OP_COMPUTE / 5);
            parent = Some(c);
            cursor = if key < self.nodes[c].key {
                self.nodes[c].left
            } else if key > self.nodes[c].key {
                self.nodes[c].right
            } else {
                t.write_line(self.node_addr(c), key);
                return;
            };
        }
        let n = self.new_node(key, parent);
        t.write_line(self.node_addr(n), key);
        match parent {
            None => {
                self.root = Some(n);
                self.nodes[n].colour = Colour::Black;
                return;
            }
            Some(p) => {
                if key < self.nodes[p].key {
                    self.nodes[p].left = Some(n);
                } else {
                    self.nodes[p].right = Some(n);
                }
                t.write_line(self.node_addr(p), key);
            }
        }
        self.insert_fixup(n, t);
    }

    fn insert_fixup(&mut self, mut z: usize, t: &mut TraceBuilder) {
        while let Some(p) = self.nodes[z].parent {
            if self.nodes[p].colour != Colour::Red {
                break;
            }
            let g = match self.nodes[p].parent {
                Some(g) => g,
                None => break,
            };
            let parent_is_left = self.nodes[g].left == Some(p);
            let uncle = if parent_is_left {
                self.nodes[g].right
            } else {
                self.nodes[g].left
            };
            if let Some(u) = uncle.filter(|&u| self.nodes[u].colour == Colour::Red) {
                self.nodes[p].colour = Colour::Black;
                self.nodes[u].colour = Colour::Black;
                self.nodes[g].colour = Colour::Red;
                t.write_line(self.node_addr(p), 0);
                t.write_line(self.node_addr(u), 1);
                t.write_line(self.node_addr(g), 2);
                z = g;
            } else {
                if parent_is_left {
                    if self.nodes[p].right == Some(z) {
                        z = p;
                        self.rotate_left(z, t);
                    }
                    let p = self.nodes[z].parent.expect("fixup parent");
                    let g = self.nodes[p].parent.expect("fixup grandparent");
                    self.nodes[p].colour = Colour::Black;
                    self.nodes[g].colour = Colour::Red;
                    self.rotate_right(g, t);
                } else {
                    if self.nodes[p].left == Some(z) {
                        z = p;
                        self.rotate_right(z, t);
                    }
                    let p = self.nodes[z].parent.expect("fixup parent");
                    let g = self.nodes[p].parent.expect("fixup grandparent");
                    self.nodes[p].colour = Colour::Black;
                    self.nodes[g].colour = Colour::Red;
                    self.rotate_left(g, t);
                }
                break;
            }
        }
        if let Some(r) = self.root {
            self.nodes[r].colour = Colour::Black;
        }
    }

    /// Deletes `key` if present by splicing the node out (successor swap for
    /// two-child nodes). The double-black fix-up is omitted: the tree stays a
    /// valid BST and the trace still exercises a realistic
    /// search-then-modify path.
    fn delete(&mut self, key: u64, t: &mut TraceBuilder) {
        let mut cursor = self.root;
        while let Some(c) = cursor {
            t.read_line(self.node_addr(c));
            t.compute(OP_COMPUTE / 5);
            if key == self.nodes[c].key {
                if self.nodes[c].left.is_some() && self.nodes[c].right.is_some() {
                    let mut s = self.nodes[c].right.expect("right child");
                    while let Some(l) = self.nodes[s].left {
                        t.read_line(self.node_addr(l));
                        s = l;
                    }
                    self.nodes[c].key = self.nodes[s].key;
                    t.write_line(self.node_addr(c), self.nodes[s].key);
                    self.splice(s, t);
                } else {
                    self.splice(c, t);
                }
                return;
            }
            cursor = if key < self.nodes[c].key {
                self.nodes[c].left
            } else {
                self.nodes[c].right
            };
        }
    }

    fn splice(&mut self, n: usize, t: &mut TraceBuilder) {
        let child = self.nodes[n].left.or(self.nodes[n].right);
        let parent = self.nodes[n].parent;
        if let Some(c) = child {
            self.nodes[c].parent = parent;
            t.write_line(self.node_addr(c), 0);
        }
        match parent {
            None => self.root = child,
            Some(p) => {
                if self.nodes[p].left == Some(n) {
                    self.nodes[p].left = child;
                } else {
                    self.nodes[p].right = child;
                }
                t.write_line(self.node_addr(p), 1);
            }
        }
        t.write_line(self.node_addr(n), 2);
    }

    #[cfg(test)]
    fn validate_bst(&self, n: Option<usize>, lo: Option<u64>, hi: Option<u64>) -> bool {
        match n {
            None => true,
            Some(i) => {
                let k = self.nodes[i].key;
                if lo.is_some_and(|l| k <= l) || hi.is_some_and(|h| k >= h) {
                    return false;
                }
                self.validate_bst(self.nodes[i].left, lo, Some(k))
                    && self.validate_bst(self.nodes[i].right, Some(k), hi)
            }
        }
    }
}

impl Workload for RbTreeWorkload {
    fn name(&self) -> &'static str {
        "rbtree"
    }

    fn next_transaction(&mut self, _core: CoreId) -> Transaction {
        let mut t = TraceBuilder::new();
        let key = self.rng.gen_range(0..self.key_space);
        t.lock(partition_lock(key));
        self.insert(key, &mut t);
        self.present_keys.push(key);
        let value = self.heap.alloc_lines(RB_VALUE_LINES);
        write_payload(&mut t, value, RB_VALUE_LINES, key);
        if !self.present_keys.is_empty() {
            let idx = self.rng.gen_range(0..self.present_keys.len());
            let victim = self.present_keys.swap_remove(idx);
            t.lock(partition_lock(victim));
            self.delete(victim, &mut t);
        }
        t.build("rbtree-op")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_write_set(w: &mut dyn Workload, samples: usize) -> f64 {
        (0..samples)
            .map(|_| w.next_transaction(CoreId::new(0)).write_set_lines().len() as f64)
            .sum::<f64>()
            / samples as f64
    }

    #[test]
    fn write_set_sizes_are_in_the_table_iv_range() {
        // Table IV: queue 52, hash 58, sdg 56, sps 63, btree 61, rbtree 53
        // cache lines; accept ±40% on a small sample.
        let checks: Vec<(Box<dyn Workload>, usize)> = vec![
            (Box::new(QueueWorkload::new(7)), 52),
            (Box::new(HashWorkload::new(7)), 58),
            (Box::new(SdgWorkload::new(7)), 56),
            (Box::new(SpsWorkload::new(7)), 63),
            (Box::new(BTreeWorkload::new(7)), 61),
            (Box::new(RbTreeWorkload::new(7)), 53),
        ];
        for (mut w, target) in checks {
            let avg = mean_write_set(w.as_mut(), 5);
            let lo = target as f64 * 0.6;
            let hi = target as f64 * 1.4;
            assert!(
                avg >= lo && avg <= hi,
                "{}: mean write set {avg:.1} lines outside [{lo:.0}, {hi:.0}] (paper: {target})",
                w.name()
            );
        }
    }

    #[test]
    fn transactions_carry_lock_sets_and_ops() {
        for kind in [
            MicroKind::Queue,
            MicroKind::Hash,
            MicroKind::Sdg,
            MicroKind::Sps,
            MicroKind::BTree,
            MicroKind::RbTree,
        ] {
            let mut w = build(kind, 1);
            let tx = w.next_transaction(CoreId::new(0));
            assert!(!tx.locks.is_empty(), "{} must declare locks", w.name());
            assert!(!tx.ops.is_empty());
            assert!(
                tx.locks.len() <= 4,
                "{} uses coarse partition locks",
                w.name()
            );
        }
    }

    #[test]
    fn queue_advances_both_counters_each_transaction() {
        let mut q = QueueWorkload::new(3);
        let (h0, t0) = (q.head, q.tail);
        let _ = q.next_transaction(CoreId::new(0));
        assert_eq!(q.head, h0 + 1);
        assert_eq!(q.tail, t0 + 1);
    }

    #[test]
    fn hash_insert_and_delete_update_host_model() {
        let mut h = HashWorkload::new(3);
        let before: usize = h.buckets.iter().map(Vec::len).sum();
        for _ in 0..10 {
            let _ = h.next_transaction(CoreId::new(0));
        }
        let after: usize = h.buckets.iter().map(Vec::len).sum();
        // One insert and (usually) one delete per transaction: population
        // stays near the initial level.
        assert!((after as i64 - before as i64).unsigned_abs() <= 10);
    }

    #[test]
    fn btree_insert_keeps_keys_sorted_and_splits_nodes() {
        let mut w = BTreeWorkload::new(3);
        for _ in 0..20 {
            let _ = w.next_transaction(CoreId::new(0));
        }
        assert!(w.nodes.len() > 1, "splits must have created nodes");
        for node in &w.nodes {
            assert!(node.keys.windows(2).all(|p| p[0] <= p[1]));
            assert!(node.keys.len() <= BTREE_MAX_KEYS);
        }
    }

    #[test]
    fn rbtree_stays_a_valid_bst_with_black_root() {
        let mut w = RbTreeWorkload::new(3);
        for _ in 0..20 {
            let _ = w.next_transaction(CoreId::new(0));
        }
        assert!(w.validate_bst(w.root, None, None));
        if let Some(r) = w.root {
            assert_eq!(w.nodes[r].colour, Colour::Black);
        }
    }

    #[test]
    fn sps_swaps_two_distinct_payloads() {
        let mut w = SpsWorkload::new(3);
        let tx = w.next_transaction(CoreId::new(0));
        let lines = tx.write_set_lines().len();
        assert!((31..=2 * 31).contains(&lines));
    }

    #[test]
    fn payload_writes_revisit_the_header_line() {
        // The checksum updates give the log buffer something to coalesce: the
        // header line is stored once per payload line.
        let mut t = TraceBuilder::new();
        write_payload(&mut t, Address::new(0x10000), 8, 1);
        let tx = t.build("p");
        let header_line = Address::new(0x10000).line();
        let stores_to_header = tx
            .ops
            .iter()
            .filter(|op| op.is_write() && op.address().map(|a| a.line()) == Some(header_line))
            .count();
        assert!(stores_to_header >= 8);
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let mut a = HashWorkload::new(42);
        let mut b = HashWorkload::new(42);
        let ta = a.next_transaction(CoreId::new(0));
        let tb = b.next_transaction(CoreId::new(0));
        assert_eq!(ta.ops, tb.ops);
    }
}
