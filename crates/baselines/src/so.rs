//! The software-only (SO) baseline: locks for atomic visibility and
//! Mnemosyne-like software redo logging for atomic durability.
//!
//! SO is the normalisation baseline of every figure in the paper. Its costs
//! are:
//!
//! * lock acquisition/release instructions at transaction boundaries and
//!   spinning when a lock is contended;
//! * a software-composed redo log entry for every cache line written, flushed
//!   *synchronously* (streaming store + fence) as soon as the line's value is
//!   finalised — the flush latency sits squarely on the critical path;
//! * a durable commit record at transaction end; data write-back happens
//!   lazily off the critical path (redo logging).

use std::collections::BTreeMap;

use dhtm_cache::lineset::LineSet;
use dhtm_coherence::probe::NoConflicts;
use dhtm_nvm::record::LogRecord;
use dhtm_types::addr::Address;
use dhtm_types::config::SystemConfig;
use dhtm_types::ids::{CoreId, ThreadId, TxId};
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::{AbortReason, TxStats};

use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::{LockId, LockTable};
use dhtm_sim::machine::Machine;

/// Cycles a core spins before re-checking a contended lock.
const LOCK_SPIN: u64 = 60;

/// Per-core state of the SO engine.
#[derive(Debug, Clone, Default)]
struct SoCore {
    tx: TxId,
    active: bool,
    logged_lines: LineSet,
    read_lines: LineSet,
    written_lines: LineSet,
    /// The word values stored by the current transaction (the software
    /// write-aside set): the source of truth for the commit write-back of
    /// lines that have left the L1 by commit time.
    write_values: BTreeMap<Address, u64>,
    /// Cycle by which every asynchronously streamed log record (the
    /// word-granular amendments) is durable; the commit fence waits for it.
    log_persist_horizon: u64,
    loads: usize,
    stores: usize,
    log_records: usize,
    begin_cycle: u64,
    next_begin_at: u64,
    last_stats: TxStats,
}

/// The SO (locks + software logging) engine.
#[derive(Debug)]
pub struct SoEngine {
    cores: Vec<SoCore>,
    locks: LockTable,
    log_entry_setup: u64,
    persist_fence: u64,
    lock_acquire: u64,
    lock_release: u64,
}

impl SoEngine {
    /// Creates an SO engine for machines built from `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        SoEngine {
            cores: Vec::new(),
            locks: LockTable::new(),
            log_entry_setup: cfg.software.log_entry_setup,
            persist_fence: cfg.software.persist_fence,
            lock_acquire: cfg.software.lock_acquire,
            lock_release: cfg.software.lock_release,
        }
    }

    fn handle_victim(&mut self, machine: &mut Machine, core: CoreId, now: u64) {
        // SO has no speculative state: victims are handled like any
        // non-transactional eviction.
        let _ = (machine, core, now);
    }

    fn plain_access(
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        write: bool,
        now: u64,
    ) -> u64 {
        let line = addr.line();
        let out = if write {
            machine.mem.store(core, line, now, &mut NoConflicts)
        } else {
            machine.mem.load(core, line, now, &mut NoConflicts)
        };
        if let Some((vline, ventry)) = out.evicted_victim {
            machine
                .mem
                .evict_nontransactional(core, vline, &ventry, now);
        }
        out.done
    }
}

impl TxEngine for SoEngine {
    fn design(&self) -> DesignKind {
        DesignKind::SoftwareOnly
    }

    fn init(&mut self, machine: &mut Machine) {
        self.cores = vec![SoCore::default(); machine.num_cores()];
        self.locks = LockTable::new();
    }

    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        let start = now.max(self.cores[core.get()].next_begin_at);
        if !self.locks.try_acquire_all(core, lock_set) {
            return StepOutcome::Stall {
                retry_at: start + LOCK_SPIN,
            };
        }
        let c = &mut self.cores[core.get()];
        c.tx = machine.tx_ids.allocate();
        c.active = true;
        c.logged_lines.clear();
        c.read_lines.clear();
        c.written_lines.clear();
        c.write_values.clear();
        c.log_persist_horizon = 0;
        c.loads = 0;
        c.stores = 0;
        c.log_records = 0;
        c.begin_cycle = start;
        let cost = self.lock_acquire * lock_set.len().max(1) as u64;
        StepOutcome::done(start + cost)
    }

    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        let done = Self::plain_access(machine, core, addr, false, now);
        self.handle_victim(machine, core, now);
        let c = &mut self.cores[core.get()];
        c.loads += 1;
        c.read_lines.insert(addr.line());
        StepOutcome::done(done)
    }

    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        let done = Self::plain_access(machine, core, addr, true, now);
        machine.mem.write_word_in_l1(core, addr, value);
        // Write-aside semantics (Mnemosyne): the durable redo log — not the
        // cache — carries the transaction's stores until commit. Clearing the
        // dirty bit means a mid-transaction eviction can never write
        // uncommitted data in place in persistent memory; the commit
        // write-back re-materialises any line that left the cache from the
        // engine's write-aside set instead.
        if let Some(entry) = machine.mem.l1_mut(core).entry_mut(addr.line()) {
            entry.dirty = false;
        }
        let line = addr.line();
        let first_store_to_line = {
            let c = &mut self.cores[core.get()];
            c.stores += 1;
            c.written_lines.insert(line);
            c.write_values.insert(addr, value);
            c.logged_lines.insert(line)
        };
        // Mnemosyne logs at *store* granularity: the first store to a line
        // composes a line-sized redo entry, flushed synchronously (streaming
        // store + fence) — that latency is on the critical path, which is
        // exactly the overhead hardware logging removes. Every later store
        // to the same line appends a word-granular amendment that streams to
        // the log asynchronously; the commit fence waits for its durability
        // point. Without the amendments the log would hold only the
        // first-store image of each line, and a crash between the commit
        // record and the data write-back would replay stale values.
        let tx = self.cores[core.get()].tx;
        let record = if first_store_to_line {
            let data = machine
                .mem
                .l1(core)
                .entry(line)
                .map(|e| e.data)
                .unwrap_or_default();
            LogRecord::redo(tx, line, data)
        } else {
            LogRecord::redo_word(tx, line, addr.word_index().get(), value)
        };
        let bytes = record.size_bytes();
        let thread = ThreadId::from(core);
        if machine.mem.domain_mut().append_log(thread, record).is_err() {
            // Software logs are sized by the runtime; model an overflow as a
            // transaction failure that retries after the log is reclaimed.
            // The attempt's own records are purged (write-aside: nothing was
            // written in place, so dropping them is safe) — otherwise dead
            // uncommitted records would occupy log space forever.
            machine.mem.domain_mut().purge_log_tx(thread, tx);
            machine.mem.domain_mut().reclaim_log(thread);
            self.locks.release_all(core);
            self.cores[core.get()].active = false;
            return StepOutcome::Aborted {
                at: done,
                retry_at: done,
                reason: AbortReason::LogOverflow,
            };
        }
        self.cores[core.get()].log_records += 1;
        let setup_done = done + self.log_entry_setup;
        let durable = machine.mem.persist_log_bytes(setup_done, bytes);
        if first_store_to_line {
            StepOutcome::done(durable + self.persist_fence)
        } else {
            let c = &mut self.cores[core.get()];
            c.log_persist_horizon = c.log_persist_horizon.max(durable);
            StepOutcome::done(setup_done)
        }
    }

    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        let thread = ThreadId::from(core);
        let tx = self.cores[core.get()].tx;
        // The commit fence first waits for every streamed amendment record,
        // then the commit record itself is made durable.
        let log_horizon = now.max(self.cores[core.get()].log_persist_horizon);
        let commit_rec = LogRecord::commit(tx);
        let bytes = commit_rec.size_bytes();
        let _ = machine.mem.domain_mut().append_log(thread, commit_rec);
        let commit_done = machine
            .mem
            .persist_log_bytes(log_horizon + self.log_entry_setup, bytes)
            + self.persist_fence;

        // Data write-back is lazy (redo logging): charge the bandwidth but do
        // not wait for it before releasing the locks. Because the cache runs
        // write-aside (lines are never dirty mid-transaction), each line's
        // in-place image is composed from the persistent copy overlaid with
        // the transaction's write-aside values — the cache copy may have been
        // evicted (and discarded) at any point.
        let mut completion = commit_done;
        // Ascending line order — the order the shadow set has always
        // iterated; it determines the write-back schedule.
        for line in self.cores[core.get()].written_lines.iter() {
            let done = machine.mem.persist_composed_line(
                core,
                line,
                &self.cores[core.get()].write_values,
                commit_done,
            );
            completion = completion.max(done);
        }
        let _ = machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::complete(tx));
        machine.mem.domain_mut().reclaim_log(thread);

        self.locks.release_all(core);
        let release_done = commit_done + self.lock_release;
        let c = &mut self.cores[core.get()];
        c.active = false;
        c.next_begin_at = completion.max(release_done);
        c.last_stats = TxStats {
            read_set_lines: c.read_lines.len(),
            write_set_lines: c.written_lines.len(),
            stores: c.stores,
            loads: c.loads,
            log_records: c.log_records,
            cycles: release_done.saturating_sub(c.begin_cycle),
            aborts_before_commit: 0,
        };
        StepOutcome::done(release_done)
    }

    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        self.cores[core.get()].last_stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::recovery::RecoveryManager;

    fn setup() -> (Machine, SoEngine) {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = SoEngine::new(&cfg);
        e.init(&mut m);
        (m, e)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn committed_so_transaction_is_durable() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        assert!(e.begin(&mut m, c(0), &[LockId(1)], 0).is_done());
        assert!(e.write(&mut m, c(0), addr, 11, 10).is_done());
        assert!(e.commit(&mut m, c(0), 2000).is_done());
        assert_eq!(m.mem.domain().read_word(addr), 11);
        // Crash and recover: value still there.
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(addr), 11);
    }

    #[test]
    fn lock_contention_stalls_second_core() {
        let (mut m, mut e) = setup();
        assert!(e.begin(&mut m, c(0), &[LockId(5)], 0).is_done());
        let out = e.begin(&mut m, c(1), &[LockId(5)], 10);
        assert!(matches!(out, StepOutcome::Stall { .. }));
        // After core 0 commits, core 1 can proceed.
        e.commit(&mut m, c(0), 100);
        assert!(e.begin(&mut m, c(1), &[LockId(5)], 5000).is_done());
    }

    #[test]
    fn disjoint_lock_sets_run_concurrently() {
        let (mut m, mut e) = setup();
        assert!(e.begin(&mut m, c(0), &[LockId(1)], 0).is_done());
        assert!(e.begin(&mut m, c(1), &[LockId(2)], 0).is_done());
    }

    #[test]
    fn synchronous_log_flush_is_on_the_critical_path() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        let out = e.write(&mut m, c(0), Address::new(0x3000), 1, 10);
        let StepOutcome::Done { at } = out else {
            panic!()
        };
        // The store completes only after the NVM write latency (the flush).
        assert!(at >= 10 + m.mem.latency().nvm_write);
        // A second store to the same line streams a word-granular amendment
        // asynchronously: the store itself does not pay the NVM latency...
        let out2 = e.write(&mut m, c(0), Address::new(0x3008), 2, at);
        let StepOutcome::Done { at: at2 } = out2 else {
            panic!()
        };
        assert!(at2 - at < m.mem.latency().nvm_write);
        // ...but the commit fence does wait for the amendment's durability.
        let horizon = e.cores[0].log_persist_horizon;
        assert!(horizon >= at + m.mem.latency().nvm_write);
        let StepOutcome::Done { at: commit_at } = e.commit(&mut m, c(0), at2) else {
            panic!()
        };
        assert!(commit_at > horizon);
    }

    #[test]
    fn repeated_stores_are_recoverable_from_the_log_alone() {
        // The crash window that matters for redo logging: the commit record
        // is durable but the data write-back has not happened. Model it by
        // replaying the log onto a snapshot taken *before* commit wrote the
        // data back, with the commit marker grafted in — the recovered values
        // must be the final stored values, not the first-store image.
        let (mut m, mut e) = setup();
        let a = Address::new(0x3000);
        let b = Address::new(0x3008); // same line, different word
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        e.write(&mut m, c(0), a, 11, 10);
        e.write(&mut m, c(0), b, 22, 2000);
        e.write(&mut m, c(0), a, 33, 4000); // overwrites the first store
        let tx = e.cores[0].tx;
        let mut crashed = m.mem.domain().crash_snapshot();
        crashed
            .log_mut(ThreadId::new(0))
            .append(LogRecord::commit(tx))
            .unwrap();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(a), 33);
        assert_eq!(crashed.memory().read_word(b), 22);
    }

    #[test]
    fn commit_stats_reflect_footprint() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        e.read(&mut m, c(0), Address::new(0x100), 10);
        e.write(&mut m, c(0), Address::new(0x3000), 1, 20);
        e.write(&mut m, c(0), Address::new(0x3040), 2, 3000);
        e.commit(&mut m, c(0), 8000);
        let stats = e.last_tx_stats(c(0));
        assert_eq!(stats.write_set_lines, 2);
        assert_eq!(stats.read_set_lines, 1);
        assert_eq!(stats.log_records, 2);
    }
}
