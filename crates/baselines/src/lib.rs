#![forbid(unsafe_code)]
//! # dhtm-baselines
//!
//! The comparison designs evaluated in Section V of the paper, all
//! implemented against the same simulator, workloads and memory system as
//! DHTM so that only the visibility/durability mechanisms differ
//! (mirroring Table I):
//!
//! | Design | Atomic visibility | Atomic durability |
//! |---|---|---|
//! | [`so::SoEngine`] (SO) | locks | software redo logging (Mnemosyne-like, synchronous flushes) |
//! | [`sdtm::SdTmEngine`] (sdTM) | RTM-like HTM (L1-limited) | software logging *inside* the transaction (PHyTM-like) |
//! | [`atom::AtomEngine`] (ATOM) | locks | hardware undo logging; data flushed in place on the commit critical path |
//! | [`logtm_atom::LogTmAtomEngine`] (LogTM-ATOM) | LogTM-style eager HTM with NACK stalling and overflow | ATOM-style hardware undo logging |
//! | [`NpEngine`] (NP) | RTM-like HTM | none (volatile upper bound) |
//!
//! Every engine implements [`dhtm_sim::engine::TxEngine`] and is
//! constructed through the [`registry`]: an extensible catalogue of named
//! [`registry::EngineFactory`] entries with capability metadata. The six
//! designs register under their canonical ids ("so", "sdtm", "atom",
//! "logtm-atom", "dhtm", "np") alongside the built-in DHTM variants; new
//! variants register via [`registry::register_global`] without touching any
//! dispatch code. [`build_engine`] survives as a compatibility shim over
//! the registry for callers that still think in [`DesignKind`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atom;
pub mod dispatch;
pub mod logtm_atom;
pub mod registry;
pub mod sdtm;
pub mod so;

pub use atom::AtomEngine;
pub use dispatch::EngineDispatch;
pub use logtm_atom::LogTmAtomEngine;
pub use registry::{EngineFactory, EngineId, EngineInfo, EngineRegistry};
pub use sdtm::SdTmEngine;
pub use so::SoEngine;

/// The volatile non-persistent HTM baseline (NP) is the RTM engine from
/// `dhtm-htm`, re-exported under its evaluation name.
pub use dhtm_htm::rtm::RtmEngine as NpEngine;

use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

/// Builds the engine for any of the paper's designs by resolving its
/// canonical id through the process-wide [`registry`]. Compatibility entry
/// point; new code should resolve an [`EngineId`] itself (which also covers
/// named variants).
///
/// Returns the [`EngineDispatch`] built by the registry, so callers that
/// run it through a generic driver get static dispatch for free.
///
/// ```
/// use dhtm_baselines::build_engine;
/// use dhtm_sim::engine::TxEngine;
/// use dhtm_types::config::SystemConfig;
/// use dhtm_types::policy::DesignKind;
///
/// let engine = build_engine(DesignKind::Dhtm, &SystemConfig::small_test());
/// assert_eq!(engine.design(), DesignKind::Dhtm);
/// ```
pub fn build_engine(kind: DesignKind, cfg: &SystemConfig) -> EngineDispatch {
    registry::resolve(&kind.into())
        .expect("all designs are registered builtin")
        .build(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_sim::engine::TxEngine;

    #[test]
    fn factory_builds_every_design() {
        let cfg = SystemConfig::small_test();
        for kind in DesignKind::ALL {
            let engine = build_engine(kind, &cfg);
            assert_eq!(
                engine.design(),
                kind,
                "factory must preserve the design kind"
            );
        }
    }
}
