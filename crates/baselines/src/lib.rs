//! # dhtm-baselines
//!
//! The comparison designs evaluated in Section V of the paper, all
//! implemented against the same simulator, workloads and memory system as
//! DHTM so that only the visibility/durability mechanisms differ
//! (mirroring Table I):
//!
//! | Design | Atomic visibility | Atomic durability |
//! |---|---|---|
//! | [`so::SoEngine`] (SO) | locks | software redo logging (Mnemosyne-like, synchronous flushes) |
//! | [`sdtm::SdTmEngine`] (sdTM) | RTM-like HTM (L1-limited) | software logging *inside* the transaction (PHyTM-like) |
//! | [`atom::AtomEngine`] (ATOM) | locks | hardware undo logging; data flushed in place on the commit critical path |
//! | [`logtm_atom::LogTmAtomEngine`] (LogTM-ATOM) | LogTM-style eager HTM with NACK stalling and overflow | ATOM-style hardware undo logging |
//! | [`NpEngine`] (NP) | RTM-like HTM | none (volatile upper bound) |
//!
//! Every engine implements [`dhtm_sim::engine::TxEngine`]; the factory
//! [`build_engine`] constructs any design (including DHTM itself) from a
//! [`DesignKind`], which is what the benchmark harness uses.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod atom;
pub mod logtm_atom;
pub mod sdtm;
pub mod so;

pub use atom::AtomEngine;
pub use logtm_atom::LogTmAtomEngine;
pub use sdtm::SdTmEngine;
pub use so::SoEngine;

/// The volatile non-persistent HTM baseline (NP) is the RTM engine from
/// `dhtm-htm`, re-exported under its evaluation name.
pub use dhtm_htm::rtm::RtmEngine as NpEngine;

use dhtm_sim::engine::TxEngine;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

/// Builds the engine for any of the paper's designs.
///
/// ```
/// use dhtm_baselines::build_engine;
/// use dhtm_types::config::SystemConfig;
/// use dhtm_types::policy::DesignKind;
///
/// let engine = build_engine(DesignKind::Dhtm, &SystemConfig::small_test());
/// assert_eq!(engine.design(), DesignKind::Dhtm);
/// ```
pub fn build_engine(kind: DesignKind, cfg: &SystemConfig) -> Box<dyn TxEngine> {
    match kind {
        DesignKind::SoftwareOnly => Box::new(SoEngine::new(cfg)),
        DesignKind::SdTm => Box::new(SdTmEngine::new(cfg)),
        DesignKind::Atom => Box::new(AtomEngine::new(cfg)),
        DesignKind::LogTmAtom => Box::new(LogTmAtomEngine::new(cfg)),
        DesignKind::Dhtm => Box::new(dhtm::DhtmEngine::new(cfg)),
        DesignKind::NonPersistent => Box::new(NpEngine::new(cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_every_design() {
        let cfg = SystemConfig::small_test();
        for kind in DesignKind::ALL {
            let engine = build_engine(kind, &cfg);
            assert_eq!(
                engine.design(),
                kind,
                "factory must preserve the design kind"
            );
        }
    }
}
