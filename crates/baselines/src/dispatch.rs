//! Closed-set engine dispatch for the simulation hot loop.
//!
//! The driver's inner loop calls the engine once or more per simulated
//! step. Routing those calls through `Box<dyn TxEngine>` costs a vtable
//! indirection at every begin/read/write/commit and walls off inlining
//! into the engines' own hot paths. The evaluated designs are a *closed
//! set* — the six canonical engines plus option-carrying DHTM variants —
//! so [`EngineDispatch`] enumerates them and implements
//! [`TxEngine`] by `match`: the generic driver monomorphises over the enum
//! and every engine call becomes direct (and inlinable) dispatch.
//!
//! Extensibility stays where it was: the engine registry still accepts
//! out-of-tree `Box<dyn TxEngine>` factories, which ride along in the
//! [`EngineDispatch::Custom`] fallback variant — one indirection for
//! engines the enum cannot know about, zero for the canonical set. Specs,
//! matrices and reports keep resolving engines exclusively by
//! [`crate::registry::EngineId`]; this enum is a dispatch vehicle, not a
//! second identity.

use std::fmt;

use dhtm::DhtmEngine;
use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::LockId;
use dhtm_sim::machine::Machine;
use dhtm_types::addr::Address;
use dhtm_types::ids::CoreId;
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::TxStats;

use crate::{AtomEngine, LogTmAtomEngine, NpEngine, SdTmEngine, SoEngine};

/// An engine built by the registry: one variant per canonical design (the
/// DHTM variant also carries the paper's ablation options, which are plain
/// fields of [`DhtmEngine`]), plus the [`EngineDispatch::Custom`] escape
/// hatch for out-of-tree registrations.
///
/// Implements [`TxEngine`] by match dispatch, so a driver monomorphised
/// over this type calls the canonical engines statically.
pub enum EngineDispatch {
    /// Locks + Mnemosyne-style software redo logging (SO).
    So(SoEngine),
    /// RTM-like HTM with software logging inside the transaction (sdTM).
    SdTm(SdTmEngine),
    /// Locks + hardware undo logging (ATOM).
    Atom(AtomEngine),
    /// LogTM-style eager HTM + ATOM hardware undo logging (LogTM-ATOM).
    LogTmAtom(LogTmAtomEngine),
    /// The paper's proposal, including its option-driven variants (DHTM).
    Dhtm(DhtmEngine),
    /// Volatile RTM-like HTM, no durability (NP).
    Np(NpEngine),
    /// An out-of-tree engine registered through the registry's boxed
    /// factory API. Off the closed set, so calls stay virtual — the price
    /// of extensibility is paid only by extensions.
    Custom(Box<dyn TxEngine>),
}

impl fmt::Debug for EngineDispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineDispatch::So(e) => e.fmt(f),
            EngineDispatch::SdTm(e) => e.fmt(f),
            EngineDispatch::Atom(e) => e.fmt(f),
            EngineDispatch::LogTmAtom(e) => e.fmt(f),
            EngineDispatch::Dhtm(e) => e.fmt(f),
            EngineDispatch::Np(e) => e.fmt(f),
            EngineDispatch::Custom(e) => write!(f, "Custom({:?})", e.design()),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $e:ident => $call:expr) => {
        match $self {
            EngineDispatch::So($e) => $call,
            EngineDispatch::SdTm($e) => $call,
            EngineDispatch::Atom($e) => $call,
            EngineDispatch::LogTmAtom($e) => $call,
            EngineDispatch::Dhtm($e) => $call,
            EngineDispatch::Np($e) => $call,
            EngineDispatch::Custom($e) => $call,
        }
    };
}

impl TxEngine for EngineDispatch {
    #[inline]
    fn design(&self) -> DesignKind {
        dispatch!(self, e => e.design())
    }

    #[inline]
    fn init(&mut self, machine: &mut Machine) {
        dispatch!(self, e => e.init(machine))
    }

    #[inline]
    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        dispatch!(self, e => e.begin(machine, core, lock_set, now))
    }

    #[inline]
    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        dispatch!(self, e => e.read(machine, core, addr, now))
    }

    #[inline]
    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        dispatch!(self, e => e.write(machine, core, addr, value, now))
    }

    #[inline]
    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        dispatch!(self, e => e.commit(machine, core, now))
    }

    #[inline]
    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        dispatch!(self, e => e.last_tx_stats(core))
    }

    #[inline]
    fn fallback_commits(&self) -> u64 {
        dispatch!(self, e => e.fallback_commits())
    }

    #[inline]
    fn probes_into(&self, reg: &mut dhtm_obs::ProbeRegistry) {
        dispatch!(self, e => e.probes_into(reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::config::SystemConfig;

    #[test]
    fn every_variant_reports_its_design() {
        let cfg = SystemConfig::small_test();
        let cases: Vec<(EngineDispatch, DesignKind)> = vec![
            (
                EngineDispatch::So(SoEngine::new(&cfg)),
                DesignKind::SoftwareOnly,
            ),
            (
                EngineDispatch::SdTm(SdTmEngine::new(&cfg)),
                DesignKind::SdTm,
            ),
            (
                EngineDispatch::Atom(AtomEngine::new(&cfg)),
                DesignKind::Atom,
            ),
            (
                EngineDispatch::LogTmAtom(LogTmAtomEngine::new(&cfg)),
                DesignKind::LogTmAtom,
            ),
            (
                EngineDispatch::Dhtm(DhtmEngine::new(&cfg)),
                DesignKind::Dhtm,
            ),
            (
                EngineDispatch::Np(NpEngine::new(&cfg)),
                DesignKind::NonPersistent,
            ),
            (
                EngineDispatch::Custom(Box::new(NpEngine::new(&cfg))),
                DesignKind::NonPersistent,
            ),
        ];
        for (engine, design) in &cases {
            assert_eq!(engine.design(), *design);
            assert!(!format!("{engine:?}").is_empty());
        }
    }

    #[test]
    fn dispatch_runs_are_identical_to_boxed_runs() {
        // The enum is a dispatch vehicle only: running a design through it
        // must be bit-identical to running the same design boxed.
        use dhtm_sim::driver::{RunLimits, Simulator};

        let cfg = SystemConfig::small_test();
        let run = |boxed: bool| {
            let mut machine = Machine::new(cfg.clone());
            let mut workload = dhtm_workloads::by_name("hash", 7).expect("known workload");
            let limits = RunLimits::quick().with_target_commits(10);
            let sim = Simulator::new();
            if boxed {
                let mut engine: Box<dyn TxEngine> = Box::new(DhtmEngine::new(&cfg));
                sim.run(&mut machine, engine.as_mut(), workload.as_mut(), &limits)
                    .stats
            } else {
                let mut engine = EngineDispatch::Dhtm(DhtmEngine::new(&cfg));
                sim.run(&mut machine, &mut engine, workload.as_mut(), &limits)
                    .stats
            }
        };
        assert_eq!(run(true), run(false));
    }
}
