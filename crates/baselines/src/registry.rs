//! The extensible engine registry: named [`EngineFactory`] entries with
//! capability metadata, replacing the old closed `match` over
//! [`DesignKind`].
//!
//! Every place that used to dispatch on the enum — the harness matrix, the
//! crash matrix, the bench bins, the examples — now resolves an
//! [`EngineId`] through a registry, so design *variants* (DHTM with a
//! 4-entry log buffer, sdTM with a different fallback policy, ...) become
//! first-class named engines:
//!
//! ```
//! use dhtm_baselines::registry::{self, EngineFactory, EngineId, EngineInfo, LogDiscipline};
//! use dhtm_sim::engine::TxEngine;
//! use dhtm_types::config::SystemConfig;
//! use dhtm_types::policy::DesignKind;
//!
//! // Register an out-of-tree variant without touching any dispatch code:
//! registry::register_global(EngineFactory::new(
//!     EngineInfo {
//!         id: EngineId::new("dhtm-logbuf4-doc"),
//!         label: "DHTM-lb4".to_string(),
//!         description: "DHTM with a 4-entry log buffer".to_string(),
//!         design: DesignKind::Dhtm,
//!         durable: true,
//!         log: LogDiscipline::HardwareRedo,
//!         has_fallback: true,
//!     },
//!     |cfg| {
//!         let cfg = cfg.clone().with_log_buffer_entries(4);
//!         Box::new(dhtm::DhtmEngine::new(&cfg))
//!     },
//! ))
//! .unwrap();
//!
//! let engine = registry::resolve(&EngineId::new("dhtm-logbuf4-doc"))
//!     .unwrap()
//!     .build(&SystemConfig::small_test());
//! assert_eq!(engine.design(), DesignKind::Dhtm);
//! ```

use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

use dhtm::{DhtmEngine, DhtmOptions};
use dhtm_sim::engine::TxEngine;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

use crate::dispatch::EngineDispatch;
use crate::{AtomEngine, LogTmAtomEngine, NpEngine, SdTmEngine, SoEngine};

/// The name of a registered engine — the sole identity scenario specs,
/// matrices and reports refer to engines by.
///
/// Canonical ids are lowercase kebab-case: the six designs register under
/// [`DesignKind::id`] ("so", "sdtm", "atom", "logtm-atom", "dhtm", "np"),
/// built-in DHTM variants under "dhtm-instant", "dhtm-word" and
/// "dhtm-no-overflow".
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EngineId(String);

impl EngineId {
    /// Wraps a name as an engine id.
    pub fn new(name: impl Into<String>) -> Self {
        EngineId(name.into())
    }

    /// The raw name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EngineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<DesignKind> for EngineId {
    fn from(d: DesignKind) -> Self {
        EngineId::new(d.id())
    }
}

impl From<&str> for EngineId {
    fn from(s: &str) -> Self {
        EngineId::new(s)
    }
}

impl From<String> for EngineId {
    fn from(s: String) -> Self {
        EngineId::new(s)
    }
}

/// How a design makes transactions durable — capability metadata used by
/// reports and by the crash subsystem's expectations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogDiscipline {
    /// No durability log (the volatile NP upper bound).
    None,
    /// Software redo logging (Mnemosyne-like).
    SoftwareRedo,
    /// Hardware redo logging (DHTM).
    HardwareRedo,
    /// Hardware undo logging (ATOM, LogTM-ATOM).
    HardwareUndo,
}

impl fmt::Display for LogDiscipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LogDiscipline::None => "none",
            LogDiscipline::SoftwareRedo => "software-redo",
            LogDiscipline::HardwareRedo => "hardware-redo",
            LogDiscipline::HardwareUndo => "hardware-undo",
        };
        f.write_str(s)
    }
}

/// Metadata describing one registered engine: its identity, the labels the
/// tables print, and its durability capabilities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineInfo {
    /// Registry id ("dhtm", "dhtm-instant", ...).
    pub id: EngineId,
    /// Short label used in result rows and tables ("DHTM", "DHTM-instant").
    pub label: String,
    /// One-line human description.
    pub description: String,
    /// The underlying design the built engine reports via
    /// [`TxEngine::design`] — variants keep their base design's kind, which
    /// is what the recovery oracles key on.
    pub design: DesignKind,
    /// Whether the engine provides atomic durability.
    pub durable: bool,
    /// How durability is achieved.
    pub log: LogDiscipline,
    /// Whether the engine has a software fallback path after exhausting
    /// hardware retries.
    pub has_fallback: bool,
}

impl EngineInfo {
    /// Metadata for one of the six evaluated designs under its canonical id.
    pub fn for_design(design: DesignKind) -> Self {
        let (description, log, has_fallback) = match design {
            DesignKind::SoftwareOnly => (
                "locks + Mnemosyne-style software redo logging (normalisation baseline)",
                LogDiscipline::SoftwareRedo,
                false,
            ),
            DesignKind::SdTm => (
                "RTM-like HTM with software logging inside the transaction (PHyTM-like)",
                LogDiscipline::SoftwareRedo,
                true,
            ),
            DesignKind::Atom => (
                "locks + hardware undo logging, data flushed in place at commit",
                LogDiscipline::HardwareUndo,
                false,
            ),
            DesignKind::LogTmAtom => (
                "LogTM-style eager HTM with NACK stalling + ATOM hardware undo logging",
                LogDiscipline::HardwareUndo,
                false,
            ),
            DesignKind::Dhtm => (
                "the paper's proposal: RTM-like HTM + hardware redo logging + LLC overflow",
                LogDiscipline::HardwareRedo,
                true,
            ),
            DesignKind::NonPersistent => (
                "volatile RTM-like HTM, no durability (upper bound)",
                LogDiscipline::None,
                true,
            ),
        };
        EngineInfo {
            id: design.into(),
            label: design.label().to_string(),
            description: description.to_string(),
            design,
            durable: design.is_durable(),
            log,
            has_fallback,
        }
    }
}

/// The factory function type: builds a fresh engine for a machine
/// configuration. Must be `Send + Sync` because matrix cells are sharded
/// across a worker pool.
///
/// Factories return [`EngineDispatch`] so the driver's hot loop dispatches
/// the built-in designs by `match` instead of vtable; out-of-tree factories
/// created with [`EngineFactory::new`] land in [`EngineDispatch::Custom`].
pub type BuildFn = dyn Fn(&SystemConfig) -> EngineDispatch + Send + Sync;

/// A named engine constructor plus its capability metadata. Cloning is
/// cheap (the builder is shared behind an [`Arc`]).
#[derive(Clone)]
pub struct EngineFactory {
    info: EngineInfo,
    build: Arc<BuildFn>,
}

impl EngineFactory {
    /// Creates a factory from metadata and a build function returning a
    /// boxed engine — the extension point for out-of-tree variants. The
    /// built engine rides in [`EngineDispatch::Custom`], i.e. it keeps
    /// virtual dispatch; only the closed built-in set gets the static path.
    pub fn new(
        info: EngineInfo,
        build: impl Fn(&SystemConfig) -> Box<dyn TxEngine> + Send + Sync + 'static,
    ) -> Self {
        EngineFactory {
            info,
            build: Arc::new(move |cfg| EngineDispatch::Custom(build(cfg))),
        }
    }

    /// Creates a factory that builds a specific [`EngineDispatch`] variant
    /// directly — how the built-in catalogue stays on the static-dispatch
    /// path.
    pub fn new_dispatch(
        info: EngineInfo,
        build: impl Fn(&SystemConfig) -> EngineDispatch + Send + Sync + 'static,
    ) -> Self {
        EngineFactory {
            info,
            build: Arc::new(build),
        }
    }

    /// The factory's metadata.
    pub fn info(&self) -> &EngineInfo {
        &self.info
    }

    /// The factory's registry id.
    pub fn id(&self) -> &EngineId {
        &self.info.id
    }

    /// Builds a fresh engine for `cfg`.
    pub fn build(&self, cfg: &SystemConfig) -> EngineDispatch {
        (self.build)(cfg)
    }
}

impl fmt::Debug for EngineFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineFactory")
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// An ordered collection of named engine factories.
#[derive(Debug, Clone, Default)]
pub struct EngineRegistry {
    entries: Vec<EngineFactory>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        EngineRegistry::default()
    }

    /// The built-in catalogue: the six evaluated designs under their
    /// canonical ids plus the named DHTM variants used by the paper's
    /// ablations ("dhtm-instant", "dhtm-word", "dhtm-no-overflow").
    pub fn builtin() -> Self {
        let mut r = EngineRegistry::empty();
        let must = |res: Result<(), RegistryError>| res.expect("builtin ids are unique");
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::SoftwareOnly),
            |cfg| EngineDispatch::So(SoEngine::new(cfg)),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::SdTm),
            |cfg| EngineDispatch::SdTm(SdTmEngine::new(cfg)),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::Atom),
            |cfg| EngineDispatch::Atom(AtomEngine::new(cfg)),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::LogTmAtom),
            |cfg| EngineDispatch::LogTmAtom(LogTmAtomEngine::new(cfg)),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::Dhtm),
            |cfg| EngineDispatch::Dhtm(DhtmEngine::new(cfg)),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo::for_design(DesignKind::NonPersistent),
            |cfg| EngineDispatch::Np(NpEngine::new(cfg)),
        )));
        must(
            r.register(EngineFactory::new_dispatch(
                EngineInfo {
                    id: EngineId::new("dhtm-instant"),
                    label: "DHTM-instant".to_string(),
                    description:
                        "DHTM with instantaneous critical-path writes (Section VI-D ablation)"
                            .to_string(),
                    ..EngineInfo::for_design(DesignKind::Dhtm)
                },
                |cfg| {
                    EngineDispatch::Dhtm(DhtmEngine::with_options(
                        cfg,
                        DhtmOptions::instant_writes(),
                    ))
                },
            )),
        );
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo {
                id: EngineId::new("dhtm-word"),
                label: "DHTM-word".to_string(),
                description:
                    "DHTM with word-granular logging, no coalescing (Figure 2b)".to_string(),
                ..EngineInfo::for_design(DesignKind::Dhtm)
            },
            |cfg| EngineDispatch::Dhtm(DhtmEngine::with_options(cfg, DhtmOptions::word_granular())),
        )));
        must(r.register(EngineFactory::new_dispatch(
            EngineInfo {
                id: EngineId::new("dhtm-no-overflow"),
                label: "DHTM-noovf".to_string(),
                description: "L1-limited DHTM: write-set overflow to the LLC disabled".to_string(),
                ..EngineInfo::for_design(DesignKind::Dhtm)
            },
            |cfg| {
                EngineDispatch::Dhtm(DhtmEngine::with_options(
                    cfg,
                    DhtmOptions::without_overflow(),
                ))
            },
        )));
        r
    }

    /// Registers a factory.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::DuplicateId`] if the id is already taken —
    /// silently shadowing an engine would corrupt result labelling — and
    /// [`RegistryError::InvalidId`] if the id is not a well-formed engine
    /// name. Ids end up verbatim inside spec files, content hashes and
    /// report columns, so they are restricted to non-empty
    /// `[A-Za-z0-9._-]` (no quotes, whitespace, `#` or escapes that would
    /// break the TOML/JSON round-trip contract).
    pub fn register(&mut self, factory: EngineFactory) -> Result<(), RegistryError> {
        let id = factory.id();
        let well_formed = !id.as_str().is_empty()
            && id
                .as_str()
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
        if !well_formed {
            return Err(RegistryError::InvalidId(id.clone()));
        }
        if self.get(id).is_some() {
            return Err(RegistryError::DuplicateId(id.clone()));
        }
        self.entries.push(factory);
        Ok(())
    }

    /// Looks up a factory by id.
    pub fn get(&self, id: &EngineId) -> Option<&EngineFactory> {
        self.entries.iter().find(|e| e.id() == id)
    }

    /// Builds an engine by id.
    ///
    /// # Errors
    ///
    /// Returns [`RegistryError::UnknownEngine`] naming the id and listing
    /// what is registered.
    pub fn build(
        &self,
        id: &EngineId,
        cfg: &SystemConfig,
    ) -> Result<EngineDispatch, RegistryError> {
        self.get(id)
            .map(|f| f.build(cfg))
            .ok_or_else(|| RegistryError::UnknownEngine(id.clone()))
    }

    /// Iterates over the registered factories in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &EngineFactory> {
        self.entries.iter()
    }

    /// Iterates the registered ids in registration order, borrowing — the
    /// form for hot or per-cell paths; [`EngineRegistry::ids`] is the
    /// allocating convenience for tests and one-shot reports.
    pub fn ids_iter(&self) -> impl Iterator<Item = &EngineId> {
        self.entries.iter().map(|e| e.id())
    }

    /// The registered ids, in registration order. Allocates (a `Vec` and a
    /// `String` clone per id): fine for report headers and tests, wrong in
    /// a loop — iterate [`EngineRegistry::ids_iter`] there instead.
    pub fn ids(&self) -> Vec<EngineId> {
        self.ids_iter().cloned().collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Errors from registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// An engine with this id is already registered.
    DuplicateId(EngineId),
    /// No engine with this id is registered.
    UnknownEngine(EngineId),
    /// The id contains characters outside `[A-Za-z0-9._-]` (or is empty)
    /// and would break spec serialisation.
    InvalidId(EngineId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateId(id) => {
                write!(f, "engine '{id}' is already registered")
            }
            RegistryError::UnknownEngine(id) => {
                write!(f, "no engine '{id}' is registered")
            }
            RegistryError::InvalidId(id) => {
                write!(
                    f,
                    "invalid engine id '{id}': ids must be non-empty [A-Za-z0-9._-]"
                )
            }
        }
    }
}

impl std::error::Error for RegistryError {}

fn global_lock() -> &'static RwLock<EngineRegistry> {
    static GLOBAL: OnceLock<RwLock<EngineRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(EngineRegistry::builtin()))
}

/// Registers a factory in the process-wide registry every harness and crash
/// entry point resolves through — the public extension point for
/// out-of-tree engine variants.
///
/// # Errors
///
/// Returns [`RegistryError::DuplicateId`] if the id is taken.
pub fn register_global(factory: EngineFactory) -> Result<(), RegistryError> {
    global_lock()
        .write()
        .expect("engine registry poisoned")
        .register(factory)
}

/// Resolves an id against the process-wide registry. The returned factory
/// is a cheap clone and stays valid regardless of later registrations.
pub fn resolve(id: &EngineId) -> Option<EngineFactory> {
    global_lock()
        .read()
        .expect("engine registry poisoned")
        .get(id)
        .cloned()
}

/// Snapshot of the process-wide registry (builtin entries plus everything
/// registered via [`register_global`] so far).
pub fn global_snapshot() -> EngineRegistry {
    global_lock()
        .read()
        .expect("engine registry poisoned")
        .clone()
}

/// The table label for an engine id: the registered label, or the raw id
/// for unregistered engines (reports should never panic over a name).
///
/// Clones one `String` under the registry read lock — it no longer clones
/// the whole factory on the way (the old `resolve(id)` detour). Still a
/// per-call allocation, so report rows should cache the result rather than
/// call this per event.
pub fn label_of(id: &EngineId) -> String {
    global_lock()
        .read()
        .expect("engine registry poisoned")
        .get(id)
        .map_or_else(|| id.to_string(), |f| f.info().label.clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_every_design_under_its_canonical_id() {
        let r = EngineRegistry::builtin();
        let cfg = SystemConfig::small_test();
        for design in DesignKind::ALL {
            let id = EngineId::from(design);
            let f = r.get(&id).expect("design registered");
            assert_eq!(f.info().design, design);
            assert_eq!(f.info().label, design.label());
            assert_eq!(f.info().durable, design.is_durable());
            assert_eq!(f.build(&cfg).design(), design);
        }
        assert_eq!(r.len(), DesignKind::ALL.len() + 3, "three DHTM variants");
    }

    #[test]
    fn variants_report_their_base_design() {
        let r = EngineRegistry::builtin();
        let cfg = SystemConfig::small_test();
        for name in ["dhtm-instant", "dhtm-word", "dhtm-no-overflow"] {
            let f = r.get(&EngineId::new(name)).expect("variant registered");
            assert_eq!(f.info().design, DesignKind::Dhtm);
            assert_eq!(f.build(&cfg).design(), DesignKind::Dhtm);
            assert_ne!(f.info().label, "DHTM", "variants need distinct labels");
        }
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = EngineRegistry::builtin();
        let err = r
            .register(EngineFactory::new(
                EngineInfo::for_design(DesignKind::Dhtm),
                |cfg| Box::new(DhtmEngine::new(cfg)),
            ))
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateId(DesignKind::Dhtm.into()));
    }

    #[test]
    fn malformed_ids_are_rejected_at_registration() {
        // Ids land verbatim in TOML/JSON spec files; quotes, spaces and
        // comment characters would break the round-trip contract.
        for bad in ["", "dhtm \"v2\"", "dhtm v2", "dhtm#4", "dhtm\\x"] {
            let mut r = EngineRegistry::empty();
            let err = r
                .register(EngineFactory::new(
                    EngineInfo {
                        id: EngineId::new(bad),
                        ..EngineInfo::for_design(DesignKind::Dhtm)
                    },
                    |cfg| Box::new(DhtmEngine::new(cfg)),
                ))
                .unwrap_err();
            assert!(matches!(err, RegistryError::InvalidId(_)), "{bad:?}");
        }
    }

    #[test]
    fn unknown_engine_errors_and_label_falls_back_to_id() {
        let r = EngineRegistry::builtin();
        let ghost = EngineId::new("ghost");
        assert!(matches!(
            r.build(&ghost, &SystemConfig::small_test()),
            Err(RegistryError::UnknownEngine(_))
        ));
        assert_eq!(label_of(&ghost), "ghost");
        assert_eq!(label_of(&DesignKind::Dhtm.into()), "DHTM");
    }

    #[test]
    fn global_registration_is_visible_to_resolution() {
        let id = EngineId::new("so-test-variant");
        register_global(EngineFactory::new(
            EngineInfo {
                id: id.clone(),
                label: "SO*".to_string(),
                description: "test variant".to_string(),
                ..EngineInfo::for_design(DesignKind::SoftwareOnly)
            },
            |cfg| Box::new(SoEngine::new(cfg)),
        ))
        .unwrap();
        let f = resolve(&id).expect("globally visible");
        assert_eq!(f.info().label, "SO*");
        assert_eq!(
            f.build(&SystemConfig::small_test()).design(),
            DesignKind::SoftwareOnly
        );
        // Re-registering the same id must fail.
        assert!(register_global(EngineFactory::new(
            EngineInfo {
                id: id.clone(),
                label: "SO**".to_string(),
                description: String::new(),
                ..EngineInfo::for_design(DesignKind::SoftwareOnly)
            },
            |cfg| Box::new(SoEngine::new(cfg)),
        ))
        .is_err());
    }

    #[test]
    fn factories_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineFactory>();
        assert_send_sync::<EngineRegistry>();
    }
}
