//! The sdTM baseline (PHyTM-like): an RTM-like HTM for atomic visibility
//! combined with *software* logging for atomic durability.
//!
//! Because the log entries are written by ordinary stores executed inside the
//! hardware transaction, every logged cache line joins the transaction's
//! write set (Figure 1b of the paper): the write-set footprint roughly
//! doubles, which increases capacity aborts, and the log lines must be
//! flushed to persistent memory on the commit critical path.

use std::collections::BTreeMap;

use dhtm_cache::lineset::LineSet;
use dhtm_htm::rtm::RtmEngine;
use dhtm_nvm::record::LogRecord;
use dhtm_types::addr::Address;
use dhtm_types::config::SystemConfig;
use dhtm_types::ids::{CoreId, ThreadId, TxId};
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::{AbortReason, TxStats};

use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::LockId;
use dhtm_sim::machine::Machine;

/// Base simulated address of the per-thread software log areas. Placed far
/// above any workload data so the log stores never alias application lines.
const LOG_AREA_BASE: u64 = 1 << 44;
/// Address stride separating the log areas of different cores.
const LOG_AREA_STRIDE: u64 = 1 << 32;

#[derive(Debug, Clone, Default)]
struct SdTmCore {
    tx: TxId,
    logged_lines: LineSet,
    written_lines: LineSet,
    /// Word values stored by the current transaction while on the fallback
    /// path (the fallback runs write-aside: the durable log, not the cache,
    /// carries the stores until commit).
    fallback_values: BTreeMap<Address, u64>,
    /// Durability horizon of the streamed fallback log records; the commit
    /// fence waits for it.
    fallback_log_horizon: u64,
    log_entries: u64,
    begin_now: u64,
}

/// The sdTM (HTM + software logging) engine.
#[derive(Debug)]
pub struct SdTmEngine {
    htm: RtmEngine,
    cores: Vec<SdTmCore>,
    log_entry_setup: u64,
    persist_fence: u64,
}

impl SdTmEngine {
    /// Creates an sdTM engine for machines built from `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        SdTmEngine {
            htm: RtmEngine::new(cfg),
            cores: Vec::new(),
            log_entry_setup: cfg.software.log_entry_setup,
            persist_fence: cfg.software.persist_fence,
        }
    }

    fn log_slot_address(&self, core: CoreId, entry: u64) -> Address {
        Address::new(LOG_AREA_BASE + core.get() as u64 * LOG_AREA_STRIDE + entry * 64)
    }
}

impl TxEngine for SdTmEngine {
    fn design(&self) -> DesignKind {
        DesignKind::SdTm
    }

    fn init(&mut self, machine: &mut Machine) {
        self.htm.init(machine);
        self.cores = vec![SdTmCore::default(); machine.num_cores()];
    }

    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        let out = self.htm.begin(machine, core, lock_set, now);
        if out.is_done() {
            let c = &mut self.cores[core.get()];
            c.tx = machine.tx_ids.allocate();
            c.logged_lines.clear();
            c.written_lines.clear();
            c.fallback_values.clear();
            c.fallback_log_horizon = 0;
            c.log_entries = 0;
            c.begin_now = now;
        }
        out
    }

    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        self.htm.read(machine, core, addr, now)
    }

    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        let data_out = self.htm.write(machine, core, addr, value, now);
        let StepOutcome::Done { at } = data_out else {
            return data_out;
        };
        let line = addr.line();
        self.cores[core.get()].written_lines.insert(line);

        if self.htm.in_fallback(core) {
            // Fallback path (global lock): stores are not tracked by the HTM
            // write set, so the durability story is the plain software one —
            // a word-granular redo record streamed to the log (the commit
            // fence waits for its durability point), with the cache kept
            // write-aside (clean) so an eviction can never push uncommitted
            // data towards persistent memory.
            self.cores[core.get()].fallback_values.insert(addr, value);
            if let Some(entry) = machine.mem.l1_mut(core).entry_mut(line) {
                entry.dirty = false;
            }
            let tx = self.cores[core.get()].tx;
            let record = LogRecord::redo_word(tx, line, addr.word_index().get(), value);
            let bytes = record.size_bytes();
            let thread = ThreadId::from(core);
            if machine.mem.domain_mut().append_log(thread, record).is_err() {
                // The software log is full: the store's only durable copy
                // would be this record, so the transaction must abort. Its
                // records are purged (write-aside: nothing is in place) and
                // the clean cached lines holding aborted values discarded.
                machine.mem.domain_mut().purge_log_tx(thread, tx);
                machine.mem.domain_mut().reclaim_log(thread);
                for l in self.cores[core.get()]
                    .fallback_values
                    .keys()
                    .map(|a| a.line())
                {
                    machine.mem.invalidate_l1_line(core, l);
                }
                machine.mem.invalidate_l1_line(core, line);
                return self
                    .htm
                    .abort_current(machine, core, at, AbortReason::LogOverflow);
            }
            self.cores[core.get()].log_entries += 1;
            let setup_done = at + self.log_entry_setup;
            let durable = machine.mem.persist_log_bytes(setup_done, bytes);
            let c = &mut self.cores[core.get()];
            c.fallback_log_horizon = c.fallback_log_horizon.max(durable);
            return StepOutcome::done(setup_done);
        }

        let needs_log_entry = self.cores[core.get()].logged_lines.insert(line);
        if !needs_log_entry {
            return StepOutcome::done(at);
        }
        // Compose a software log entry inside the transaction: an ordinary
        // store to the per-thread log area, which joins the HTM write set.
        let entry_idx = self.cores[core.get()].log_entries;
        self.cores[core.get()].log_entries += 1;
        let slot = self.log_slot_address(core, entry_idx);
        let log_out = self
            .htm
            .write(machine, core, slot, value, at + self.log_entry_setup);
        match log_out {
            StepOutcome::Done { at } => StepOutcome::done(at),
            other => other,
        }
    }

    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        // The software log (the log-area lines plus the commit record) must be
        // durable before the hardware transaction can be allowed to become
        // visible-and-durable; flush it synchronously.
        let thread = ThreadId::from(core);
        let tx = self.cores[core.get()].tx;
        let fallback = self.htm.in_fallback(core);
        let mut durable = now.max(self.cores[core.get()].fallback_log_horizon);
        if !fallback {
            // Hardware path: compose the line-granular redo entries from the
            // resident write set, in ascending line order as the shadow set
            // has always iterated. (The fallback path already streamed
            // word-granular records synchronously at each store.)
            for line in self.cores[core.get()].written_lines.iter() {
                let data = machine
                    .mem
                    .l1(core)
                    .entry(line)
                    .map(|e| e.data)
                    .or_else(|| machine.mem.llc().entry(line).map(|e| e.data))
                    .unwrap_or_else(|| machine.mem.domain().read_line(line));
                let record = LogRecord::redo(tx, line, data);
                let bytes = record.size_bytes();
                if machine.mem.domain_mut().append_log(thread, record).is_ok() {
                    durable = durable.max(machine.mem.persist_log_bytes(now, bytes));
                }
            }
        }
        let commit_rec = LogRecord::commit(tx);
        let bytes = commit_rec.size_bytes();
        let _ = machine.mem.domain_mut().append_log(thread, commit_rec);
        durable = durable.max(machine.mem.persist_log_bytes(durable, bytes)) + self.persist_fence;

        let htm_out = self.htm.commit(machine, core, durable);
        let StepOutcome::Done { at } = htm_out else {
            // The HTM transaction aborted at commit (e.g. it was doomed): the
            // log entries written above belong to an uncommitted transaction
            // and are ignored by recovery; reclaim them.
            machine.mem.domain_mut().purge_log_tx(thread, tx);
            return htm_out;
        };

        // Data write-back is lazy: charge bandwidth, do not wait.
        let mut completion = at;
        if fallback {
            // Write-aside fallback: lines may have left the (clean) cache at
            // any point, so each in-place image is composed from the
            // persistent copy overlaid with the transaction's stores.
            for line in self.cores[core.get()].written_lines.iter() {
                let done = machine.mem.persist_composed_line(
                    core,
                    line,
                    &self.cores[core.get()].fallback_values,
                    at,
                );
                completion = completion.max(done);
            }
        } else {
            for line in self.cores[core.get()].written_lines.iter() {
                if let Some(done) = machine.mem.l1_writeback_line_to_memory(core, line, at) {
                    completion = completion.max(done);
                }
            }
        }
        let _ = machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::complete(tx));
        machine.mem.domain_mut().reclaim_log(thread);
        let _ = completion; // data persistence happens in the background
        StepOutcome::done(at)
    }

    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        // The HTM's view includes the log-area lines — exactly the doubled
        // write set of Figure 1b.
        self.htm.last_tx_stats(core)
    }

    fn fallback_commits(&self) -> u64 {
        self.htm.fallback_commits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::recovery::RecoveryManager;
    use dhtm_types::stats::AbortReason;

    fn setup() -> (Machine, SdTmEngine) {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = SdTmEngine::new(&cfg);
        e.init(&mut m);
        (m, e)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn committed_sdtm_transaction_is_durable() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 33, 10);
        assert!(e.commit(&mut m, c(0), 3000).is_done());
        assert_eq!(m.mem.domain().read_word(addr), 33);
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(addr), 33);
    }

    #[test]
    fn software_logging_doubles_the_write_set() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        for i in 0..3u64 {
            e.write(&mut m, c(0), Address::new(0x3000 + i * 64), i, 10 + i);
        }
        e.commit(&mut m, c(0), 10_000);
        let stats = e.last_tx_stats(c(0));
        // Three data lines + three log lines.
        assert_eq!(stats.write_set_lines, 6);
    }

    #[test]
    fn inflated_write_set_aborts_earlier_than_plain_htm() {
        // With a 2-way L1 and log lines added to the write set, sdTM hits a
        // capacity abort with fewer data lines than the raw HTM would.
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        let mut aborted = false;
        for i in 0..3u64 {
            // Also touch the matching log-area set by writing many lines.
            let out = e.write(
                &mut m,
                c(0),
                Address::new(0x30000 + i * set_stride),
                i,
                100 + i,
            );
            if let StepOutcome::Aborted { reason, .. } = out {
                assert!(matches!(
                    reason,
                    AbortReason::Capacity | AbortReason::Conflict
                ));
                aborted = true;
                break;
            }
        }
        assert!(
            aborted,
            "write-set inflation should trigger a capacity abort"
        );
    }

    #[test]
    fn conflicting_transactions_abort_like_rtm() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x5000);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 1, 10);
        e.begin(&mut m, c(1), &[], 0);
        let out = e.write(&mut m, c(1), addr, 2, 500);
        assert!(matches!(out, StepOutcome::Aborted { .. }));
    }
}
