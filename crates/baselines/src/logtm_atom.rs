//! The LogTM-ATOM baseline: a LogTM-style eager HTM for atomic visibility
//! integrated with ATOM-style hardware undo logging for atomic durability.
//!
//! This combination is not prior work — the paper constructs it as the
//! strongest "eager everything" competitor (Section V). Its characteristics:
//!
//! * conflicts are resolved by *stalling* the requester (NACKs) rather than
//!   immediately aborting, with a bounded number of retries to avoid
//!   deadlock;
//! * the write set may overflow the L1 (sticky directory state, like DHTM);
//! * versioning is eager: before-images go to a hardware undo log, and the
//!   write set must be flushed in place on the commit critical path — the
//!   commit-latency disadvantage DHTM's redo logging removes;
//! * aborts are expensive: the undo log must be applied before the
//!   transaction can retry.

use dhtm_cache::l1::L1Entry;
use dhtm_htm::arbiter::{ArbiterConfig, HtmArbiter};
use dhtm_htm::tx_state::{HtmCoreState, TxStatus};
use dhtm_nvm::record::LogRecord;
use dhtm_types::addr::{Address, LineAddr};
use dhtm_types::config::SystemConfig;
use dhtm_types::ids::{CoreId, ThreadId};
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::{AbortReason, TxStats};

use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::LockId;
use dhtm_sim::machine::Machine;

/// Cycles of bookkeeping at begin/commit.
const TX_BOOKKEEPING: u64 = 5;
/// Cycles between NACK retries.
const NACK_RETRY: u64 = 150;
/// Consecutive NACKs on the same operation before the requester gives up and
/// aborts itself (deadlock avoidance).
const NACK_LIMIT: u32 = 30;

/// The LogTM-ATOM engine.
#[derive(Debug)]
pub struct LogTmAtomEngine {
    states: Vec<HtmCoreState>,
    undo_horizon: Vec<u64>,
    nack_streak: Vec<u32>,
    policy: dhtm_types::policy::ConflictPolicy,
    signature_bits: usize,
    /// Reusable line buffer for the commit flush and abort invalidation
    /// walks, so neither path allocates per transaction.
    scratch_lines: Vec<LineAddr>,
    /// Reusable buffer for the abort path's undo walk: `(line,
    /// before-image)` pairs staged oldest-first, applied newest-first.
    undo_scratch: Vec<(LineAddr, [u64; 8])>,
}

impl LogTmAtomEngine {
    /// Creates a LogTM-ATOM engine for machines built from `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        LogTmAtomEngine {
            states: Vec::new(),
            undo_horizon: Vec::new(),
            nack_streak: Vec::new(),
            policy: cfg.conflict_policy,
            signature_bits: cfg.read_signature_bits,
            scratch_lines: Vec::new(),
            undo_scratch: Vec::new(),
        }
    }

    /// Immutable view of a core's transactional state.
    pub fn state(&self, core: CoreId) -> &HtmCoreState {
        &self.states[core.get()]
    }

    fn arbiter_config(&self) -> ArbiterConfig {
        ArbiterConfig::logtm(self.policy)
    }

    fn append_undo(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        line: LineAddr,
        old: [u64; 8],
        now: u64,
    ) -> Result<(), AbortReason> {
        let tx = self.states[core.get()].tx;
        let record = LogRecord::undo(tx, line, old);
        let bytes = record.size_bytes();
        let thread = ThreadId::from(core);
        if machine.mem.domain_mut().append_log(thread, record).is_err() {
            return Err(AbortReason::LogOverflow);
        }
        let durable = machine.mem.persist_log_bytes(now, bytes);
        self.undo_horizon[core.get()] = self.undo_horizon[core.get()].max(durable);
        self.states[core.get()].log_records += 1;
        Ok(())
    }

    /// Applies the undo log and rolls the transaction back; eager versioning
    /// makes this expensive (one in-place write per logged line).
    fn do_abort(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        now: u64,
        reason: AbortReason,
    ) -> StepOutcome {
        let thread = ThreadId::from(core);
        let tx = self.states[core.get()].tx;
        let mut at = now + TX_BOOKKEEPING;

        // Walk the undo log newest-first, restoring before-images in place.
        // Staged through the reusable scratch buffer (the restore mutates
        // the machine the log borrows from); same records, same order.
        self.undo_scratch.clear();
        self.undo_scratch.extend(
            machine
                .mem
                .domain()
                .log(thread)
                .iter()
                .filter(|r| r.tx == tx)
                .filter_map(|r| match r.kind {
                    dhtm_nvm::record::RecordKind::Undo { line, data } => Some((line, data)),
                    _ => None,
                }),
        );
        for &(line, data) in self.undo_scratch.iter().rev() {
            machine.mem.invalidate_l1_line(core, line);
            machine.mem.invalidate_llc_line(line);
            // The undo writes are issued here (consuming bandwidth) but
            // the core only pays a fixed per-line handler cost; the
            // writes drain in the background before the retry commits.
            machine.mem.persist_data_line(at, line, data);
            at += machine.mem.latency().llc_hit;
        }
        // Clear any remaining speculative L1 state and the log.
        machine
            .mem
            .l1_mut(core)
            .flash_invalidate_write_set_into(&mut self.scratch_lines);
        for &line in &self.scratch_lines {
            machine.mem.notify_clean_eviction(core, line);
        }
        machine.mem.l1_mut(core).flash_clear_read_bits();
        let _ = machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::abort(tx));
        machine.mem.domain_mut().reclaim_log(thread);
        machine.mem.domain_mut().purge_log_tx(thread, tx);

        self.undo_horizon[core.get()] = 0;
        self.nack_streak[core.get()] = 0;
        self.states[core.get()].reset_after_abort();
        StepOutcome::Aborted {
            at,
            retry_at: at,
            reason,
        }
    }

    fn handle_victim(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        line: LineAddr,
        entry: &L1Entry,
        now: u64,
    ) {
        if entry.write_bit {
            // Eager versioning: the speculative data may leave the L1; the
            // undo log protects recoverability and the sticky directory state
            // keeps conflict detection working.
            machine
                .mem
                .writeback_to_llc(core, line, entry.data, now, true);
            self.states[core.get()].overflowed.insert(line);
        } else if entry.read_bit {
            self.states[core.get()].signature.insert(line);
            if entry.dirty {
                machine
                    .mem
                    .writeback_to_llc(core, line, entry.data, now, true);
            }
        } else {
            machine.mem.evict_nontransactional(core, line, entry, now);
        }
    }

    fn on_nack(&mut self, machine: &mut Machine, core: CoreId, done: u64) -> StepOutcome {
        self.nack_streak[core.get()] += 1;
        if self.nack_streak[core.get()] > NACK_LIMIT {
            return self.do_abort(machine, core, done, AbortReason::Conflict);
        }
        StepOutcome::Stall {
            retry_at: done + NACK_RETRY,
        }
    }
}

impl TxEngine for LogTmAtomEngine {
    fn design(&self) -> DesignKind {
        DesignKind::LogTmAtom
    }

    fn init(&mut self, machine: &mut Machine) {
        let n = machine.num_cores();
        self.states = (0..n)
            .map(|_| HtmCoreState::new(self.signature_bits))
            .collect();
        self.undo_horizon = vec![0; n];
        self.nack_streak = vec![0; n];
    }

    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        _lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        let start = now.max(self.states[core.get()].next_begin_at);
        let tx = machine.tx_ids.allocate();
        self.states[core.get()].begin(tx, start);
        self.undo_horizon[core.get()] = 0;
        self.nack_streak[core.get()] = 0;
        StepOutcome::done(start + TX_BOOKKEEPING)
    }

    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        let line = addr.line();
        let cfg = self.arbiter_config();
        let out = {
            let mut arb = HtmArbiter::new(&mut self.states, cfg, true);
            machine.mem.load(core, line, now, &mut arb)
        };
        if out.aborted_by_conflict {
            return self.do_abort(machine, core, now, AbortReason::Conflict);
        }
        if out.nacked {
            return self.on_nack(machine, core, out.done);
        }
        self.nack_streak[core.get()] = 0;
        if let Some((vline, ventry)) = out.evicted_victim {
            self.handle_victim(machine, core, vline, &ventry, now);
        }
        let entry = machine.mem.l1_mut(core).entry_mut(line).expect("filled");
        entry.read_bit = true;
        if out.reread_own_overflow {
            entry.write_bit = true;
        }
        self.states[core.get()].record_load(line);
        StepOutcome::done(out.done)
    }

    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        let line = addr.line();
        // Capture the before-image on the first store to each line.
        let old_data = if self.states[core.get()].in_write_set(line) {
            None
        } else {
            Some(
                machine
                    .mem
                    .l1(core)
                    .entry(line)
                    .map(|e| e.data)
                    .or_else(|| machine.mem.llc().entry(line).map(|e| e.data))
                    .unwrap_or_else(|| machine.mem.domain().read_line(line)),
            )
        };
        let cfg = self.arbiter_config();
        let out = {
            let mut arb = HtmArbiter::new(&mut self.states, cfg, true);
            machine.mem.store(core, line, now, &mut arb)
        };
        if out.aborted_by_conflict {
            return self.do_abort(machine, core, now, AbortReason::Conflict);
        }
        if out.nacked {
            return self.on_nack(machine, core, out.done);
        }
        self.nack_streak[core.get()] = 0;
        if let Some((vline, ventry)) = out.evicted_victim {
            self.handle_victim(machine, core, vline, &ventry, now);
        }
        if let Some(old) = old_data {
            if let Err(reason) = self.append_undo(machine, core, line, old, now) {
                return self.do_abort(machine, core, out.done, reason);
            }
        }
        machine.mem.write_word_in_l1(core, addr, value);
        machine
            .mem
            .l1_mut(core)
            .entry_mut(line)
            .expect("filled")
            .write_bit = true;
        self.states[core.get()].record_store(line);
        StepOutcome::done(out.done)
    }

    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        if let Some(reason) = self.states[core.get()].doomed {
            return self.do_abort(machine, core, now, reason);
        }
        let thread = ThreadId::from(core);
        let tx = self.states[core.get()].tx;

        // Undo-based durable commit: wait for the undo log *and* the in-place
        // flush of the whole write set (resident + overflowed).
        let mut flush_done = now.max(self.undo_horizon[core.get()]);
        self.scratch_lines.clear();
        self.scratch_lines
            .extend(machine.mem.l1(core).write_set_iter());
        for i in 0..self.scratch_lines.len() {
            let line = self.scratch_lines[i];
            if let Some(done) = machine.mem.l1_writeback_line_to_memory(core, line, now) {
                flush_done = flush_done.max(done);
            }
            if let Some(e) = machine.mem.l1_mut(core).entry_mut(line) {
                e.write_bit = false;
            }
        }
        // Overflowed lines flush in ascending line order — the order the
        // shadow set has always iterated.
        for line in self.states[core.get()].overflowed.iter() {
            if let Some(done) = machine.mem.llc_writeback_line_to_memory(line, now) {
                flush_done = flush_done.max(done);
            }
        }
        let commit_rec = LogRecord::commit(tx);
        let bytes = commit_rec.size_bytes();
        let _ = machine.mem.domain_mut().append_log(thread, commit_rec);
        let commit_done = machine.mem.persist_log_bytes(flush_done, bytes);
        let _ = machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::complete(tx));
        machine.mem.domain_mut().reclaim_log(thread);

        machine.mem.l1_mut(core).flash_clear_read_bits();
        self.states[core.get()].snapshot_stats(commit_done);
        self.states[core.get()].reset_after_commit(commit_done);
        self.states[core.get()].status = TxStatus::Idle;
        StepOutcome::done(commit_done)
    }

    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        self.states[core.get()].last_stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::recovery::RecoveryManager;

    fn setup() -> (Machine, LogTmAtomEngine) {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = LogTmAtomEngine::new(&cfg);
        e.init(&mut m);
        (m, e)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn committed_transaction_is_durable() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 5, 10);
        assert!(e.commit(&mut m, c(0), 1000).is_done());
        assert_eq!(m.mem.domain().read_word(addr), 5);
    }

    #[test]
    fn conflicting_request_is_nacked_then_gives_up() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 1, 10);
        e.begin(&mut m, c(1), &[], 0);
        // First attempts are NACKed (stall), eventually the requester aborts.
        let mut now = 500;
        let mut outcome = e.write(&mut m, c(1), addr, 2, now);
        let mut stalls = 0;
        while let StepOutcome::Stall { retry_at } = outcome {
            stalls += 1;
            now = retry_at;
            outcome = e.write(&mut m, c(1), addr, 2, now);
        }
        assert!(stalls >= 1, "requester should be NACKed at least once");
        assert!(matches!(outcome, StepOutcome::Aborted { .. }));
        // The holder was never disturbed.
        assert!(e.commit(&mut m, c(0), now + 10_000).is_done());
    }

    #[test]
    fn write_set_overflow_does_not_abort() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[], 0);
        let set_stride = 16 * 64u64;
        for i in 0..3u64 {
            assert!(e
                .write(
                    &mut m,
                    c(0),
                    Address::new(0x10000 + i * set_stride),
                    i,
                    100 + i
                )
                .is_done());
        }
        assert_eq!(e.state(c(0)).overflowed.len(), 1);
        assert!(e.commit(&mut m, c(0), 10_000).is_done());
    }

    #[test]
    fn abort_applies_the_undo_log() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        m.mem.domain_mut().write_word(addr, 77);
        e.begin(&mut m, c(0), &[], 0);
        e.write(&mut m, c(0), addr, 1, 10);
        e.states[0].doomed = Some(AbortReason::Conflict);
        let out = e.read(&mut m, c(0), Address::new(0x9000), 100);
        assert!(matches!(out, StepOutcome::Aborted { .. }));
        // The before-image was restored in place.
        assert_eq!(m.mem.domain().read_word(addr), 77);
        // And a crash right after the abort keeps the old value.
        let mut crashed = m.mem.domain().crash_snapshot();
        RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(crashed.memory().read_word(addr), 77);
    }

    #[test]
    fn commit_latency_exceeds_dhtm_for_same_write_set() {
        // The structural claim behind the paper's DHTM-vs-LogTM-ATOM gap:
        // with identical write sets, LogTM-ATOM's commit (data flush in the
        // critical path) finishes later than DHTM's (log-only wait).
        let cfg = SystemConfig::small_test();
        let commit_at = |use_dhtm: bool| -> u64 {
            let mut m = Machine::new(cfg.clone());
            let mut dhtm_e = dhtm::DhtmEngine::new(&cfg);
            let mut logtm_e = LogTmAtomEngine::new(&cfg);
            let e: &mut dyn TxEngine = if use_dhtm {
                dhtm_e.init(&mut m);
                &mut dhtm_e
            } else {
                logtm_e.init(&mut m);
                &mut logtm_e
            };
            e.begin(&mut m, c(0), &[], 0);
            let mut now = 10;
            for i in 0..6u64 {
                if let StepOutcome::Done { at } =
                    e.write(&mut m, c(0), Address::new(0x4000 + i * 64), i, now)
                {
                    now = at;
                }
            }
            match e.commit(&mut m, c(0), now) {
                StepOutcome::Done { at } => at - now,
                other => panic!("{other:?}"),
            }
        };
        let dhtm_latency = commit_at(true);
        let logtm_latency = commit_at(false);
        assert!(
            logtm_latency > dhtm_latency,
            "LogTM-ATOM commit ({logtm_latency}) should exceed DHTM commit ({dhtm_latency})"
        );
    }
}
