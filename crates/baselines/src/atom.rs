//! The ATOM baseline (HPCA 2017): locks for atomic visibility, hardware
//! *undo* logging for atomic durability.
//!
//! ATOM removes the software-logging overhead of SO by writing undo records
//! (before-images) in hardware, off the critical path. Its remaining cost —
//! the one DHTM's redo logging eliminates — is that an undo-logged
//! transaction cannot commit until its write set has been flushed in place to
//! persistent memory, so the data-flush latency sits on the commit critical
//! path (Section VI-A of the paper).

use dhtm_cache::lineset::LineSet;
use dhtm_coherence::probe::NoConflicts;
use dhtm_nvm::record::LogRecord;
use dhtm_types::addr::{Address, LineAddr};
use dhtm_types::config::SystemConfig;
use dhtm_types::ids::{CoreId, ThreadId, TxId};
use dhtm_types::policy::DesignKind;
use dhtm_types::stats::{AbortReason, TxStats};

use dhtm_sim::engine::{StepOutcome, TxEngine};
use dhtm_sim::locks::{LockId, LockTable};
use dhtm_sim::machine::Machine;

/// Cycles a core spins before re-checking a contended lock.
const LOCK_SPIN: u64 = 60;

#[derive(Debug, Clone, Default)]
struct AtomCore {
    tx: TxId,
    undo_logged: LineSet,
    written_lines: LineSet,
    read_lines: LineSet,
    loads: usize,
    stores: usize,
    log_records: usize,
    undo_persist_horizon: u64,
    begin_cycle: u64,
    next_begin_at: u64,
    last_stats: TxStats,
}

/// The ATOM (locks + hardware undo logging) engine.
#[derive(Debug)]
pub struct AtomEngine {
    cores: Vec<AtomCore>,
    locks: LockTable,
    lock_acquire: u64,
    lock_release: u64,
    /// Reusable buffer for the abort path's undo walk: `(line,
    /// before-image)` pairs staged oldest-first, applied newest-first.
    undo_scratch: Vec<(LineAddr, [u64; 8])>,
}

impl AtomEngine {
    /// Creates an ATOM engine for machines built from `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        AtomEngine {
            cores: Vec::new(),
            locks: LockTable::new(),
            lock_acquire: cfg.software.lock_acquire,
            lock_release: cfg.software.lock_release,
            undo_scratch: Vec::new(),
        }
    }

    fn plain_access(
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        write: bool,
        now: u64,
    ) -> u64 {
        let line = addr.line();
        let out = if write {
            machine.mem.store(core, line, now, &mut NoConflicts)
        } else {
            machine.mem.load(core, line, now, &mut NoConflicts)
        };
        if let Some((vline, ventry)) = out.evicted_victim {
            machine
                .mem
                .evict_nontransactional(core, vline, &ventry, now);
        }
        out.done
    }

    /// Aborts the transaction on `core`: the undo-logging hardware walks the
    /// log newest-first restoring before-images in place (eager versioning
    /// may have let dirty lines escape to the LLC or memory), the attempt's
    /// speculative cache state is discarded, and the log space is reclaimed
    /// under an abort marker. Without the rollback, a crash after the abort
    /// would leave the attempt's eagerly-written data unprotected in place.
    fn do_abort(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        now: u64,
        reason: AbortReason,
    ) -> StepOutcome {
        let thread = ThreadId::from(core);
        let tx = self.cores[core.get()].tx;
        let mut at = now;
        // Stage the undo walk through the reusable scratch buffer (the
        // restore mutates the machine the log borrows from), then apply it
        // newest-first; same records, same order.
        self.undo_scratch.clear();
        self.undo_scratch.extend(
            machine
                .mem
                .domain()
                .log(thread)
                .iter()
                .filter(|r| r.tx == tx)
                .filter_map(|r| match r.kind {
                    dhtm_nvm::record::RecordKind::Undo { line, data } => Some((line, data)),
                    _ => None,
                }),
        );
        for &(line, data) in self.undo_scratch.iter().rev() {
            machine.mem.invalidate_l1_line(core, line);
            machine.mem.invalidate_llc_line(line);
            machine.mem.persist_data_line(at, line, data);
            at += machine.mem.latency().llc_hit;
        }
        // Discard whatever speculative state remains in the L1, in
        // ascending line order as the shadow set has always iterated.
        for line in self.cores[core.get()].written_lines.iter() {
            machine.mem.invalidate_l1_line(core, line);
        }
        if machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::abort(tx))
            .is_err()
        {
            machine.mem.domain_mut().purge_log_tx(thread, tx);
        }
        machine.mem.domain_mut().reclaim_log(thread);
        self.locks.release_all(core);
        StepOutcome::Aborted {
            at,
            retry_at: at,
            reason,
        }
    }
}

impl TxEngine for AtomEngine {
    fn design(&self) -> DesignKind {
        DesignKind::Atom
    }

    fn init(&mut self, machine: &mut Machine) {
        self.cores = vec![AtomCore::default(); machine.num_cores()];
        self.locks = LockTable::new();
    }

    fn begin(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        lock_set: &[LockId],
        now: u64,
    ) -> StepOutcome {
        let start = now.max(self.cores[core.get()].next_begin_at);
        if !self.locks.try_acquire_all(core, lock_set) {
            return StepOutcome::Stall {
                retry_at: start + LOCK_SPIN,
            };
        }
        let c = &mut self.cores[core.get()];
        c.tx = machine.tx_ids.allocate();
        c.undo_logged.clear();
        c.written_lines.clear();
        c.read_lines.clear();
        c.loads = 0;
        c.stores = 0;
        c.log_records = 0;
        c.undo_persist_horizon = 0;
        c.begin_cycle = start;
        StepOutcome::done(start + self.lock_acquire * lock_set.len().max(1) as u64)
    }

    fn read(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        now: u64,
    ) -> StepOutcome {
        let done = Self::plain_access(machine, core, addr, false, now);
        let c = &mut self.cores[core.get()];
        c.loads += 1;
        c.read_lines.insert(addr.line());
        StepOutcome::done(done)
    }

    fn write(
        &mut self,
        machine: &mut Machine,
        core: CoreId,
        addr: Address,
        value: u64,
        now: u64,
    ) -> StepOutcome {
        let line = addr.line();
        // Capture the before-image *before* the store updates the line.
        let old_data = if self.cores[core.get()].undo_logged.contains(line) {
            None
        } else {
            Some(
                machine
                    .mem
                    .l1(core)
                    .entry(line)
                    .map(|e| e.data)
                    .or_else(|| machine.mem.llc().entry(line).map(|e| e.data))
                    .unwrap_or_else(|| machine.mem.domain().read_line(line)),
            )
        };
        let done = Self::plain_access(machine, core, addr, true, now);
        machine.mem.write_word_in_l1(core, addr, value);

        let tx = self.cores[core.get()].tx;
        if let Some(old) = old_data {
            // Hardware writes the undo record off the critical path; only the
            // bandwidth and its durability point are tracked (commit must
            // wait for it).
            let record = LogRecord::undo(tx, line, old);
            let bytes = record.size_bytes();
            let thread = ThreadId::from(core);
            if machine.mem.domain_mut().append_log(thread, record).is_err() {
                machine.mem.domain_mut().reclaim_log(thread);
                // The store already dirtied the line in the L1 but its undo
                // record never became durable and the line is not yet in
                // `written_lines` — discard it explicitly so the unprotected
                // speculative data cannot survive the abort (the pre-image
                // still lives in the LLC or in place).
                machine.mem.invalidate_l1_line(core, line);
                return self.do_abort(machine, core, done, AbortReason::LogOverflow);
            }
            let durable = machine.mem.persist_log_bytes(now, bytes);
            let c = &mut self.cores[core.get()];
            c.undo_logged.insert(line);
            c.log_records += 1;
            c.undo_persist_horizon = c.undo_persist_horizon.max(durable);
        }
        let c = &mut self.cores[core.get()];
        c.stores += 1;
        c.written_lines.insert(line);
        StepOutcome::done(done)
    }

    fn commit(&mut self, machine: &mut Machine, core: CoreId, now: u64) -> StepOutcome {
        let thread = ThreadId::from(core);
        let tx = self.cores[core.get()].tx;

        // Undo logging: the write set must be durable in place *before* the
        // transaction can commit and release its locks — this flush is the
        // commit critical path that DHTM avoids. A written line may have
        // been evicted from the L1 mid-transaction (eager versioning lets
        // dirty lines escape); its latest copy then lives in the LLC and
        // must be flushed from there — and a line absent from both caches
        // was already written in place by the eviction chain.
        let mut flush_done = now.max(self.cores[core.get()].undo_persist_horizon);
        // Ascending line order — the order the shadow set has always
        // iterated; it determines the flush schedule.
        for line in self.cores[core.get()].written_lines.iter() {
            if let Some(done) = machine.mem.l1_writeback_line_to_memory(core, line, now) {
                flush_done = flush_done.max(done);
            } else if let Some(done) = machine.mem.llc_writeback_line_to_memory(line, now) {
                flush_done = flush_done.max(done);
            }
        }
        let commit_rec = LogRecord::commit(tx);
        let bytes = commit_rec.size_bytes();
        let _ = machine.mem.domain_mut().append_log(thread, commit_rec);
        let commit_done = machine.mem.persist_log_bytes(flush_done, bytes);
        let _ = machine
            .mem
            .domain_mut()
            .append_log(thread, LogRecord::complete(tx));
        machine.mem.domain_mut().reclaim_log(thread);

        self.locks.release_all(core);
        let release_done = commit_done + self.lock_release;
        let c = &mut self.cores[core.get()];
        c.next_begin_at = release_done;
        c.last_stats = TxStats {
            read_set_lines: c.read_lines.len(),
            write_set_lines: c.written_lines.len(),
            stores: c.stores,
            loads: c.loads,
            log_records: c.log_records,
            cycles: release_done.saturating_sub(c.begin_cycle),
            aborts_before_commit: 0,
        };
        StepOutcome::done(release_done)
    }

    fn last_tx_stats(&mut self, core: CoreId) -> TxStats {
        self.cores[core.get()].last_stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_nvm::recovery::RecoveryManager;

    fn setup() -> (Machine, AtomEngine) {
        let cfg = SystemConfig::small_test();
        let mut m = Machine::new(cfg.clone());
        let mut e = AtomEngine::new(&cfg);
        e.init(&mut m);
        (m, e)
    }

    fn c(i: usize) -> CoreId {
        CoreId::new(i)
    }

    #[test]
    fn committed_atom_transaction_is_durable_in_place() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        e.write(&mut m, c(0), addr, 21, 10);
        let out = e.commit(&mut m, c(0), 1000);
        assert!(out.is_done());
        assert_eq!(m.mem.domain().read_word(addr), 21);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_via_undo_log() {
        let (mut m, mut e) = setup();
        let addr = Address::new(0x3000);
        m.mem.domain_mut().write_word(addr, 7);
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        e.write(&mut m, c(0), addr, 99, 10);
        // Simulate the eager case where the dirty line reached memory before
        // the crash (e.g. an eviction): write it in place, then crash.
        let line = addr.line();
        let data = m.mem.l1(c(0)).entry(line).unwrap().data;
        m.mem.domain_mut().write_line(line, data);
        let mut crashed = m.mem.domain().crash_snapshot();
        let report = RecoveryManager::new().recover(&mut crashed).unwrap();
        assert_eq!(report.rolled_back_transactions, 1);
        assert_eq!(
            crashed.memory().read_word(addr),
            7,
            "undo restores old value"
        );
    }

    #[test]
    fn commit_waits_for_data_flush() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        let mut last_store = 0;
        for i in 0..4u64 {
            if let StepOutcome::Done { at } =
                e.write(&mut m, c(0), Address::new(0x3000 + i * 64), i, 10)
            {
                last_store = at;
            }
        }
        let StepOutcome::Done { at } = e.commit(&mut m, c(0), last_store) else {
            panic!()
        };
        // Commit cannot finish before at least one NVM write of data.
        assert!(at >= last_store + m.mem.latency().nvm_write);
    }

    #[test]
    fn stores_do_not_wait_for_the_undo_log() {
        let (mut m, mut e) = setup();
        e.begin(&mut m, c(0), &[LockId(1)], 0);
        // First store misses to memory; its completion should reflect the
        // read miss, not an added synchronous NVM *write* (undo logging is
        // off the critical path). A second store to the same line is an L1
        // hit and must be fast.
        e.write(&mut m, c(0), Address::new(0x3000), 1, 10);
        let StepOutcome::Done { at } = e.write(&mut m, c(0), Address::new(0x3008), 2, 2000) else {
            panic!()
        };
        assert!(at - 2000 <= m.mem.latency().l1_hit + 1);
    }

    #[test]
    fn locks_serialize_conflicting_transactions() {
        let (mut m, mut e) = setup();
        assert!(e.begin(&mut m, c(0), &[LockId(3)], 0).is_done());
        assert!(matches!(
            e.begin(&mut m, c(1), &[LockId(3)], 0),
            StepOutcome::Stall { .. }
        ));
    }
}
