//! Smoke test: every figure/table reproduction binary under `src/bin/` runs
//! to completion in quick mode (`DHTM_BENCH_QUICK=1`, which swaps in
//! `SystemConfig::small_test` and ~20x smaller commit targets). This guards
//! the paper-reproduction entry points: a binary that panics, deadlocks or
//! prints nothing is a broken figure.

use std::process::Command;

fn run_quick(name: &str, exe: &str) {
    let output = Command::new(exe)
        .env("DHTM_BENCH_QUICK", "1")
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {name} ({exe}): {e}"));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "{name} exited with {:?}\nstdout:\n{stdout}\nstderr:\n{stderr}",
        output.status.code(),
    );
    assert!(
        stdout.lines().count() >= 2,
        "{name} printed almost nothing:\n{stdout}"
    );
}

macro_rules! bin_smoke_tests {
    ($($test_name:ident => $bin:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test_name() {
                run_quick($bin, env!(concat!("CARGO_BIN_EXE_", $bin)));
            }
        )+
    };
}

bin_smoke_tests! {
    fig5_throughput_runs => "fig5_throughput",
    fig6_log_buffer_runs => "fig6_log_buffer",
    table2_hw_overhead_runs => "table2_hw_overhead",
    table4_write_sets_runs => "table4_write_sets",
    table5_abort_rates_runs => "table5_abort_rates",
    table6_oltp_runs => "table6_oltp",
    table7_bandwidth_runs => "table7_bandwidth",
    ablation_instant_writes_runs => "ablation_instant_writes",
    crash_matrix_runs => "crash_matrix",
}

/// The perf-trajectory binary runs, writes valid-looking JSON where asked
/// (not at the repo root — the checked-in trajectory must stay untouched by
/// tests), and its regression gate accepts its own fresh output.
#[test]
fn perf_trajectory_runs_and_self_checks() {
    let exe = env!("CARGO_BIN_EXE_perf_trajectory");
    let out = std::env::temp_dir().join(format!("bench_smoke_{}.json", std::process::id()));
    let output = Command::new(exe)
        .args([
            "--out",
            out.to_str().unwrap(),
            "--repeat",
            "1",
            "--point",
            "smoke",
        ])
        .output()
        .expect("spawn perf_trajectory");
    assert!(
        output.status.success(),
        "perf_trajectory failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let json = std::fs::read_to_string(&out).expect("trajectory file written");
    assert!(json.contains("\"aggregate_steps_per_sec\""));
    assert!(json.contains("\"point\": \"smoke\""));
    assert!(json.contains("\"engine\": \"DHTM\""));

    // Re-run with the fresh file as the reference: same machine, same
    // matrix — the gate must pass.
    let gate = Command::new(exe)
        .args([
            "--out",
            out.to_str().unwrap(),
            "--check",
            out.to_str().unwrap(),
            "--repeat",
            "1",
            "--tolerance",
            "60",
        ])
        .output()
        .expect("spawn perf_trajectory --check");
    assert!(
        gate.status.success(),
        "self-check gate failed:\n{}",
        String::from_utf8_lossy(&gate.stderr)
    );
    let _ = std::fs::remove_file(&out);
}

/// With no `--out`/`--point`, `perf_trajectory` derives both by continuing
/// the trajectory: one past the highest `BENCH_PR<N>.json` in its working
/// directory. Junk names that match the shape but are not numbered points
/// (`BENCH_PRbackup.json`, `BENCH_PR9_old.json`) must not confuse the
/// numbering — they are skipped with a warning on stderr.
#[test]
fn perf_trajectory_derives_next_point_from_existing_files() {
    let exe = env!("CARGO_BIN_EXE_perf_trajectory");
    let dir = std::env::temp_dir().join(format!("bench_next_point_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    for name in [
        "BENCH_PR2.json",
        "BENCH_PR6.json",
        "BENCH_PRbackup.json",
        "BENCH_PR9_old.json",
    ] {
        std::fs::write(dir.join(name), "{}\n").expect("plant trajectory file");
    }
    let output = Command::new(exe)
        .current_dir(&dir)
        .args(["--repeat", "1"])
        .output()
        .expect("spawn perf_trajectory");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "perf_trajectory failed:\n{stderr}");
    let json = std::fs::read_to_string(dir.join("BENCH_PR7.json"))
        .expect("derived default BENCH_PR7.json written (highest point is PR6)");
    assert!(
        json.contains("\"point\": \"PR7\""),
        "derived label:\n{json}"
    );
    assert!(json.contains("\"aggregate_steps_per_sec\""));
    for junk in ["BENCH_PRbackup.json", "BENCH_PR9_old.json"] {
        assert!(
            stderr.contains(junk),
            "junk name {junk} should be warned about on stderr:\n{stderr}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
