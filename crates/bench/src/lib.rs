//! # dhtm-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (Section VI). Each experiment is a small binary under
//! `src/bin/` that prints the same rows/series the paper reports, normalised
//! to the SO baseline exactly as the paper does:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig5_throughput` | Figure 5 — micro-benchmark throughput of sdTM/ATOM/LogTM-ATOM/DHTM normalised to SO |
//! | `table5_abort_rates` | Table V — abort rates of sdTM and DHTM |
//! | `fig6_log_buffer` | Figure 6 — sensitivity to the log-buffer size (hash) |
//! | `table6_oltp` | Table VI — TATP and TPC-C throughput of ATOM and DHTM normalised to SO |
//! | `table7_bandwidth` | Table VII — NP and DHTM vs SO under 1×/2×/10× memory bandwidth (hash) |
//! | `ablation_instant_writes` | §VI-D — idealised instant-write DHTM |
//! | `table4_write_sets` | Table IV — workload write-set sizes |
//! | `table2_hw_overhead` | Table II — hardware overhead |
//!
//! Shared plumbing lives in this library crate: building engines and
//! workloads by name, running one (design, workload) pair, and formatting
//! normalised results.

#![warn(missing_docs)]

use dhtm_baselines::build_engine;
use dhtm_sim::driver::{RunLimits, SimulationResult, Simulator};
use dhtm_sim::machine::Machine;
use dhtm_sim::workload::Workload;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;
use dhtm_workloads::{micro_by_name, TatpWorkload, TpccWorkload};

/// Seed used by all experiments (results are deterministic given the seed).
pub const EXPERIMENT_SEED: u64 = 0x15CA_2018;

/// True when the `DHTM_BENCH_QUICK` environment variable is set (to anything
/// but `0`): experiments then run on [`SystemConfig::small_test`] with
/// sharply reduced commit targets so that every figure/table binary finishes
/// in seconds. The bin smoke tests use this; real reproductions must leave
/// it unset.
pub fn quick_mode() -> bool {
    std::env::var_os("DHTM_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// The machine configuration every experiment binary should simulate: the
/// paper's Table III machine, or the small test machine in
/// [`quick_mode`].
pub fn experiment_config() -> SystemConfig {
    if quick_mode() {
        SystemConfig::small_test()
    } else {
        SystemConfig::isca18_baseline()
    }
}

/// The six micro-benchmark names in the paper's order.
pub const MICRO_NAMES: [&str; 6] = ["queue", "hash", "sdg", "sps", "btree", "rbtree"];

/// Builds a workload by name ("queue".."rbtree", "tatp", "tpcc").
///
/// # Panics
///
/// Panics if the name is unknown.
pub fn workload_by_name(name: &str, seed: u64) -> Box<dyn Workload> {
    match name {
        "tatp" => Box::new(TatpWorkload::new(seed)),
        "tpcc" => Box::new(TpccWorkload::new(seed)),
        other => micro_by_name(other, seed).unwrap_or_else(|| panic!("unknown workload {other}")),
    }
}

/// Commit targets appropriate for each workload class (OLTP transactions are
/// an order of magnitude larger than the micro-benchmark batches). In
/// [`quick_mode`] the targets shrink ~20x so the smoke tests stay fast.
pub fn default_commits_for(workload: &str) -> u64 {
    let base: u64 = match workload {
        "tpcc" => 64,
        "tatp" => 160,
        _ => 400,
    };
    if quick_mode() {
        (base / 20).max(3)
    } else {
        base
    }
}

/// Runs one (design, workload) pair on a fresh machine and returns the
/// simulation result.
pub fn run_pair(
    design: DesignKind,
    workload_name: &str,
    cfg: &SystemConfig,
    commits: u64,
) -> SimulationResult {
    let mut machine = Machine::new(cfg.clone());
    let mut engine = build_engine(design, cfg);
    let mut workload = workload_by_name(workload_name, EXPERIMENT_SEED);
    let limits = RunLimits::evaluation().with_target_commits(commits);
    Simulator::new().run(&mut machine, engine.as_mut(), workload.as_mut(), &limits)
}

/// Runs `designs` on `workload_name` and returns `(design, result)` pairs.
pub fn run_designs(
    designs: &[DesignKind],
    workload_name: &str,
    cfg: &SystemConfig,
) -> Vec<(DesignKind, SimulationResult)> {
    let commits = default_commits_for(workload_name);
    designs
        .iter()
        .map(|&d| (d, run_pair(d, workload_name, cfg, commits)))
        .collect()
}

/// Throughput of `design` normalised to the SO result in the same set.
pub fn normalised_throughput(
    results: &[(DesignKind, SimulationResult)],
    design: DesignKind,
) -> f64 {
    let so = results
        .iter()
        .find(|(d, _)| *d == DesignKind::SoftwareOnly)
        .map(|(_, r)| r.throughput())
        .unwrap_or(1.0);
    let target = results
        .iter()
        .find(|(d, _)| *d == design)
        .map(|(_, r)| r.throughput())
        .unwrap_or(0.0);
    if so > 0.0 {
        target / so
    } else {
        0.0
    }
}

/// Prints a markdown-style table row.
pub fn print_row(label: &str, values: &[String]) {
    println!("| {:<12} | {} |", label, values.join(" | "));
}

/// Geometric mean helper used for "Ave." columns.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_resolve_by_name() {
        for name in MICRO_NAMES.iter().chain(["tatp", "tpcc"].iter()) {
            assert_eq!(workload_by_name(name, 1).name(), *name);
        }
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn quick_pair_run_produces_commits() {
        let cfg = SystemConfig::small_test();
        let res = run_pair(DesignKind::Dhtm, "hash", &cfg, 20);
        assert_eq!(res.stats.committed, 20);
        assert!(res.throughput() > 0.0);
    }

    #[test]
    fn normalisation_is_relative_to_so() {
        let cfg = SystemConfig::small_test();
        let results = vec![
            (
                DesignKind::SoftwareOnly,
                run_pair(DesignKind::SoftwareOnly, "hash", &cfg, 10),
            ),
            (
                DesignKind::Dhtm,
                run_pair(DesignKind::Dhtm, "hash", &cfg, 10),
            ),
        ];
        let so_norm = normalised_throughput(&results, DesignKind::SoftwareOnly);
        assert!((so_norm - 1.0).abs() < 1e-9);
        assert!(normalised_throughput(&results, DesignKind::Dhtm) > 0.0);
    }
}
