#![forbid(unsafe_code)]
//! # dhtm-bench
//!
//! The figure/table reproduction entry points for the paper's evaluation
//! (Section VI). Each experiment is a thin binary under `src/bin/` that
//! runs its [`dhtm_harness`] experiment definition — the declarative
//! matrix, worker-pool sharding and JSON/CSV export all live there — and
//! prints the same rows/series the paper reports, normalised to the SO
//! baseline exactly as the paper does:
//!
//! | Binary | Harness experiment | Reproduces |
//! |---|---|---|
//! | `fig5_throughput` | `fig5` | Figure 5 — micro-benchmark throughput of sdTM/ATOM/LogTM-ATOM/DHTM normalised to SO |
//! | `table5_abort_rates` | `table5` | Table V — abort rates of sdTM and DHTM |
//! | `fig6_log_buffer` | `fig6` | Figure 6 — sensitivity to the log-buffer size (hash) |
//! | `table6_oltp` | `table6` | Table VI — TATP and TPC-C throughput of ATOM and DHTM normalised to SO |
//! | `table7_bandwidth` | `table7` | Table VII — NP and DHTM vs SO under 1×/2×/10× memory bandwidth (hash) |
//! | `ablation_instant_writes` | `ablation` | §VI-D — idealised instant-write DHTM |
//! | `table4_write_sets` | `table4` | Table IV — workload write-set sizes |
//! | `table2_hw_overhead` | `table2` | Table II — hardware overhead |
//!
//! Every binary accepts the shared harness CLI (`--jobs N`,
//! `--format table|json|csv`, `--out PATH`); the `dhtm_experiments` binary
//! in `dhtm_harness` runs the whole suite at once. This crate re-exports
//! the harness's shared plumbing so existing callers (criterion benches,
//! integration tests) keep their import paths.

#![warn(missing_docs)]

pub use dhtm_harness::report::{geometric_mean, print_row};
pub use dhtm_harness::{
    default_commits_for, experiment_config, normalised_throughput, quick_mode, run_designs,
    run_pair, workload_by_name, ALL_WORKLOADS, EXPERIMENT_SEED, MICRO_NAMES,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::config::SystemConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn reexported_helpers_are_wired_to_the_harness() {
        for name in MICRO_NAMES.iter().chain(["tatp", "tpcc"].iter()) {
            assert_eq!(workload_by_name(name, 1).unwrap().name(), *name);
        }
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        let cfg = SystemConfig::small_test();
        let res = run_pair(DesignKind::Dhtm, "hash", &cfg, 10);
        assert_eq!(res.stats.committed, 10);
    }
}
