//! Table VII: NP and DHTM throughput normalised to SO for the hash benchmark
//! under 1x, 2x and 10x the baseline memory bandwidth (5.3 GB/s).
//! Runs the `table7` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("table7");
}
