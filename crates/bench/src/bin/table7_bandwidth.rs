//! Table VII: NP and DHTM throughput normalised to SO for the hash benchmark
//! under 1x, 2x and 10x the baseline memory bandwidth (5.3 GB/s).

use dhtm_bench::{normalised_throughput, print_row, run_designs};
use dhtm_types::policy::DesignKind;

fn main() {
    println!("# Table VII: hash throughput normalised to SO under bandwidth scaling");
    println!("# Paper reference: NP 2.9 / 3.0 / 3.3   DHTM 1.9 / 2.4 / 3.0  (1x / 2x / 10x)");
    let designs = [
        DesignKind::SoftwareOnly,
        DesignKind::NonPersistent,
        DesignKind::Dhtm,
    ];
    print_row("design", &["1x".into(), "2x".into(), "10x".into()]);
    let mut rows: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
    for mult in [1.0, 2.0, 10.0] {
        let cfg = dhtm_bench::experiment_config().with_bandwidth_multiplier(mult);
        let results = run_designs(&designs, "hash", &cfg);
        rows[0].push(format!(
            "{:.2}",
            normalised_throughput(&results, DesignKind::NonPersistent)
        ));
        rows[1].push(format!(
            "{:.2}",
            normalised_throughput(&results, DesignKind::Dhtm)
        ));
    }
    print_row("NP", &rows[0]);
    print_row("DHTM", &rows[1]);
}
