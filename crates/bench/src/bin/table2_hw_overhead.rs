//! Table II: the hardware state DHTM adds on top of an RTM-like HTM.

use dhtm::hw_overhead::{hardware_overhead, total_overhead_bytes};
use dhtm_types::config::SystemConfig;

fn main() {
    let cfg = SystemConfig::isca18_baseline();
    println!("# Table II: DHTM hardware overhead (per core, 64-entry log buffer)");
    println!("| {:<28} | {:<42} | bits |", "register", "description");
    for reg in hardware_overhead(&cfg) {
        println!("| {:<28} | {:<42} | {} |", reg.name, reg.description, reg.bits);
    }
    println!("total: {} bytes per core", total_overhead_bytes(&cfg));
}
