//! Table II: the hardware state DHTM adds on top of an RTM-like HTM.
//! Pure register-size arithmetic (no simulation); routed through the
//! `table2` harness experiment for the shared CLI.

fn main() {
    dhtm_harness::experiments::run_cli("table2");
}
