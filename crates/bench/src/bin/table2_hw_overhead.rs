//! Table II: the hardware state DHTM adds on top of an RTM-like HTM.

use dhtm::hw_overhead::{hardware_overhead, total_overhead_bytes};
use dhtm_types::config::SystemConfig;

fn main() {
    // Pure register-size arithmetic, no simulation: always report the
    // paper's Table III machine regardless of quick mode.
    let cfg = SystemConfig::isca18_baseline();
    println!(
        "# Table II: DHTM hardware overhead (per core, {}-entry log buffer)",
        cfg.log_buffer_entries
    );
    println!("| {:<28} | {:<42} | bits |", "register", "description");
    for reg in hardware_overhead(&cfg) {
        println!(
            "| {:<28} | {:<42} | {} |",
            reg.name, reg.description, reg.bits
        );
    }
    println!("total: {} bytes per core", total_overhead_bytes(&cfg));
}
