//! `perf_trajectory` — the simulator's own performance, recorded per PR.
//!
//! Runs the quick-mode perf matrix (every engine × two micro-benchmarks on
//! the small test machine) through the harness, measures wall-clock per
//! engine and reports the simulator's throughput in *driver steps per
//! second* (`RunStats::steps` over elapsed time). The result is written as
//! JSON at the repo root: each PR appends a point to the trajectory, so
//! "did this PR make the simulator faster or slower?" has a recorded answer
//! instead of a guess. By default the output name and point label continue
//! the trajectory — one past the highest `BENCH_PR<N>.json` already in the
//! working directory — so recording a new point is just `perf_trajectory`
//! with no arguments.
//!
//! Simulated results are asserted, not measured: every cell must commit its
//! full target, so a perf number can never come from a silently truncated
//! run. With `--check REF.json` the run fails (exit 1) if its aggregate
//! steps/sec regresses more than `--tolerance` percent (default 25) below
//! the reference file's — the CI `perf` job points this at the checked-in
//! trajectory file. The reference may be a glob with one `*` (e.g.
//! `--check 'BENCH_PR*.json'`): the match with the highest embedded number
//! wins, so the gate always compares against the newest checked-in point
//! and the CI workflow never needs editing when a PR records a new file.
//! The reference number is hardware-sensitive: refresh the checked-in file
//! when the CI runner class changes.
//!
//! Usage: `perf_trajectory [--out PATH] [--check REF.json|'BENCH_PR*.json']
//! [--tolerance PCT] [--repeat N] [--point NAME]`

use std::path::PathBuf;
use std::time::Instant;

use dhtm_harness::matrix::{CommitSpec, ConfigVariant, Matrix};
use dhtm_harness::runner::{run_matrix, Row};
use dhtm_types::policy::DesignKind;

/// Workloads of the perf matrix: one pointer-chasing and one queue-shaped
/// micro-benchmark — together they exercise the cache, channel, log and
/// conflict paths the data-structure work targets.
const WORKLOADS: [&str; 2] = ["hash", "queue"];
/// Commit target per cell: small enough for seconds-long CI runs, large
/// enough that steady-state dominates setup.
const COMMITS: u64 = 30;

/// `out`/`point` stay `None` until the defaults are derived in `main` —
/// deriving scans the working directory, which only the final values
/// should do (not `--help`, not a parse error).
struct Opts {
    out: Option<PathBuf>,
    check: Option<String>,
    tolerance_percent: f64,
    repeat: usize,
    point: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            out: None,
            check: None,
            tolerance_percent: 25.0,
            repeat: 3,
            point: None,
        }
    }
}

const USAGE: &str = "options:
  --out PATH        where to write the trajectory JSON (default: one past the
                    highest BENCH_PR<N>.json in the working directory)
  --check REF       fail if aggregate steps/sec regresses > tolerance vs REF;
                    REF may contain one '*' (e.g. 'BENCH_PR*.json') — the
                    match with the highest embedded number is used
  --tolerance PCT   allowed regression in percent (default 25)
  --repeat N        timing repetitions per engine, fastest wins (default 3)
  --point NAME      trajectory point label (default: PR<N>, matching --out)
  --help            print this help";

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--check" => opts.check = Some(value("--check")?),
            "--tolerance" => {
                let v = value("--tolerance")?;
                opts.tolerance_percent = v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && (0.0..100.0).contains(t))
                    .ok_or_else(|| {
                        format!("--tolerance needs a percentage in [0,100), got '{v}'")
                    })?;
            }
            "--repeat" => {
                let v = value("--repeat")?;
                opts.repeat = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--repeat needs a positive integer, got '{v}'"))?;
            }
            "--point" => opts.point = Some(value("--point")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// One engine's measured trajectory entry.
struct EnginePoint {
    label: String,
    cells: usize,
    steps: u64,
    committed: u64,
    wall_secs: f64,
}

impl EnginePoint {
    fn steps_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.steps as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// The fixed perf matrix for one engine: quick-mode machine, fixed commit
/// targets, serial execution (timing needs an unshared core).
fn engine_matrix(design: DesignKind) -> Matrix {
    Matrix::new()
        .engines([design])
        .workloads(WORKLOADS)
        .config(ConfigVariant::small())
        .commits(CommitSpec::Fixed(COMMITS))
}

fn measure_engine(design: DesignKind, repeat: usize) -> EnginePoint {
    let matrix = engine_matrix(design);
    let mut best: Option<(f64, Vec<Row>)> = None;
    for _ in 0..repeat {
        let start = Instant::now();
        let rows = run_matrix(&matrix, 1);
        let wall = start.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| wall < *b) {
            best = Some((wall, rows));
        }
    }
    let (wall_secs, rows) = best.expect("repeat >= 1");
    for row in &rows {
        assert_eq!(
            row.stats.committed, row.target_commits,
            "cell {}/{} did not reach its commit target — the perf number \
             would be measuring a truncated run",
            row.engine, row.workload
        );
    }
    EnginePoint {
        label: rows.first().map_or_else(String::new, |r| r.engine.clone()),
        cells: rows.len(),
        steps: rows.iter().map(|r| r.stats.steps).sum(),
        committed: rows.iter().map(|r| r.stats.committed).sum(),
        wall_secs,
    }
}

fn render_json(point: &str, engines: &[EnginePoint]) -> String {
    use std::fmt::Write as _;
    let total_steps: u64 = engines.iter().map(|e| e.steps).sum();
    let total_wall: f64 = engines.iter().map(|e| e.wall_secs).sum();
    let aggregate = if total_wall > 0.0 {
        total_steps as f64 / total_wall
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"dhtm-perf-trajectory-v1\",");
    let _ = writeln!(out, "  \"point\": \"{point}\",");
    let _ = writeln!(out, "  \"mode\": \"quick\",");
    let _ = writeln!(
        out,
        "  \"matrix\": \"{} engines x {} x small, {} commits/cell\",",
        engines.len(),
        WORKLOADS.join("+"),
        COMMITS
    );
    let _ = writeln!(out, "  \"engines\": [");
    for (i, e) in engines.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"cells\": {}, \"steps\": {}, \
             \"committed\": {}, \"wall_ms\": {:.3}, \"steps_per_sec\": {:.1}}}{}",
            e.label,
            e.cells,
            e.steps,
            e.committed,
            e.wall_secs * 1e3,
            e.steps_per_sec(),
            if i + 1 < engines.len() { "," } else { "" },
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"total_steps\": {total_steps},");
    let _ = writeln!(out, "  \"total_wall_ms\": {:.3},", total_wall * 1e3);
    let _ = writeln!(out, "  \"aggregate_steps_per_sec\": {aggregate:.1}");
    out.push_str("}\n");
    out
}

/// Extracts `"<key>": <number>` from trajectory JSON without a JSON parser
/// (the repo vendors no serde).
fn scrape_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(key)? + key.len();
    let tail = &text[at..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || ".-+eE ".contains(c)))
        .unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

fn reference_steps_per_sec(text: &str) -> Option<f64> {
    scrape_number(text, "\"aggregate_steps_per_sec\":")
}

/// The per-engine `(label, steps_per_sec)` breakdown of a trajectory file,
/// in file order.
fn reference_engine_rates(text: &str) -> Vec<(String, f64)> {
    let mut rates = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find("\"engine\": \"") {
        let tail = &rest[at + "\"engine\": \"".len()..];
        let Some(name_end) = tail.find('"') else {
            break;
        };
        let name = &tail[..name_end];
        let object = &tail[name_end..];
        let object_end = object.find('}').unwrap_or(object.len());
        if let Some(rate) = scrape_number(&object[..object_end], "\"steps_per_sec\":") {
            rates.push((name.to_string(), rate));
        }
        rest = &object[object_end..];
    }
    rates
}

/// Parses the wildcard portion of a matched file name as a trajectory
/// number: the whole string must be ASCII digits. A stray `backup` or
/// `9_old` in the wildcard means the file is *not* a trajectory point and
/// must not compete for "newest" — an earlier version scraped out whatever
/// digits it found (so `BENCH_PR9_old.json` outranked `BENCH_PR6.json`)
/// and treated digit-free junk as point 0.
fn parse_pure_number(wild: &str) -> Option<u64> {
    if wild.is_empty() || !wild.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    wild.parse().ok()
}

/// Picks the file name whose wildcard portion carries the highest number
/// (`BENCH_PR10.json` beats `BENCH_PR6.json` despite sorting lower
/// lexicographically). Matches whose wildcard portion is not purely a
/// number are skipped with a warning on stderr.
fn best_numbered_match(
    names: impl IntoIterator<Item = String>,
    prefix: &str,
    suffix: &str,
) -> Option<(u64, String)> {
    let mut best: Option<(u64, String)> = None;
    for fname in names {
        if fname.len() < prefix.len() + suffix.len()
            || !fname.starts_with(prefix)
            || !fname.ends_with(suffix)
        {
            continue;
        }
        let wild = &fname[prefix.len()..fname.len() - suffix.len()];
        let Some(number) = parse_pure_number(wild) else {
            eprintln!(
                "warning: ignoring '{fname}' — '{wild}' is not a number, \
                 so it cannot be a trajectory point"
            );
            continue;
        };
        let candidate = (number, fname);
        if best.as_ref().is_none_or(|b| candidate > *b) {
            best = Some(candidate);
        }
    }
    best
}

/// The file names in `dir` (non-UTF-8 names skipped; a missing or
/// unreadable dir is just empty).
fn dir_file_names(dir: &std::path::Path) -> Vec<String> {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.file_name().into_string().ok())
                .collect()
        })
        .unwrap_or_default()
}

/// One past the highest `BENCH_PR<N>.json` in the working directory — the
/// derived default for `--out`/`--point`, so "record this PR's point" never
/// needs an edited command line (an earlier version hard-coded the previous
/// PR's file name as the default, silently overwriting the checked-in
/// point). Falls back to 1 in a directory with no trajectory points.
fn next_trajectory_number() -> u64 {
    best_numbered_match(
        dir_file_names(std::path::Path::new(".")),
        "BENCH_PR",
        ".json",
    )
    .map_or(1, |(n, _)| n + 1)
}

/// Resolves a `--check` reference that may contain one `*` wildcard in its
/// file name. Among the matches, the one with the highest number in the
/// wildcard portion wins — "the newest checked-in trajectory point"
/// without hard-coding any PR number into CI.
fn resolve_reference(pattern: &str) -> PathBuf {
    if !pattern.contains('*') {
        return PathBuf::from(pattern);
    }
    let path = std::path::Path::new(pattern);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or_else(|| panic!("reference pattern '{pattern}' has no file name"));
    let star = name.find('*').expect("pattern checked for '*'");
    let (prefix, suffix) = (&name[..star], &name[star + 1..]);
    assert!(
        !suffix.contains('*'),
        "reference pattern '{pattern}' may contain at most one '*'"
    );
    let entries = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("cannot list reference dir {}: {e}", dir.display()));
    let names = entries
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok());
    let (_, fname) = best_numbered_match(names, prefix, suffix)
        .unwrap_or_else(|| panic!("no numbered file matches reference pattern '{pattern}'"));
    dir.join(fname)
}

fn main() {
    let opts = match parse_opts() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(if msg == USAGE { 0 } else { 2 });
        }
    };
    // Derive whichever of --out/--point was not given from the trajectory
    // itself: one past the highest BENCH_PR<N>.json already present.
    let next = (opts.out.is_none() || opts.point.is_none()).then(next_trajectory_number);
    let out = opts
        .out
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_PR{}.json", next.expect("derived"))));
    let point = opts
        .point
        .unwrap_or_else(|| format!("PR{}", next.expect("derived")));

    // Read the reference before writing, so a `--check` pattern that also
    // matches `--out` compares against the checked-in point and then
    // replaces it.
    let reference = opts.check.as_deref().map(|pattern| {
        let path = resolve_reference(pattern);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read reference {}: {e}", path.display()));
        let aggregate = reference_steps_per_sec(&text).unwrap_or_else(|| {
            panic!(
                "reference {} carries no aggregate_steps_per_sec field",
                path.display()
            )
        });
        (path, aggregate, reference_engine_rates(&text))
    });

    println!(
        "# perf trajectory {}: {} x {:?} on the small machine, {} commits/cell, best of {}",
        point,
        DesignKind::ALL.len(),
        WORKLOADS,
        COMMITS,
        opts.repeat
    );
    let mut engines = Vec::new();
    for design in DesignKind::ALL {
        let point = measure_engine(design, opts.repeat);
        println!(
            "| {:<12} | {:>9} steps | {:>9.3} ms | {:>12.0} steps/s |",
            point.label,
            point.steps,
            point.wall_secs * 1e3,
            point.steps_per_sec()
        );
        engines.push(point);
    }

    let json = render_json(&point, &engines);
    let aggregate = reference_steps_per_sec(&json).expect("own emitter carries the field");
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    println!(
        "aggregate: {aggregate:.0} steps/s  (wrote {})",
        out.display()
    );

    if let Some((ref_path, reference, ref_rates)) = reference {
        // Per-engine breakdown against the reference: informational (the
        // gate is on the aggregate), but it pinpoints *which* engine a
        // regression or win came from straight in the CI log/artifact.
        if !ref_rates.is_empty() {
            println!("per-engine vs {}:", ref_path.display());
            for e in &engines {
                let now = e.steps_per_sec();
                match ref_rates.iter().find(|(name, _)| *name == e.label) {
                    Some((_, before)) if *before > 0.0 => println!(
                        "| {:<12} | {:>12.0} steps/s | ref {:>12.0} | {:>6.2}x |",
                        e.label,
                        now,
                        before,
                        now / before
                    ),
                    _ => println!(
                        "| {:<12} | {:>12.0} steps/s | ref          - |       - |",
                        e.label, now
                    ),
                }
            }
        }
        let floor = reference * (1.0 - opts.tolerance_percent / 100.0);
        if aggregate < floor {
            eprintln!(
                "PERF REGRESSION: aggregate {aggregate:.0} steps/s is more than \
                 {:.0}% below the reference {reference:.0} steps/s (floor {floor:.0}, \
                 reference file {})",
                opts.tolerance_percent,
                ref_path.display()
            );
            std::process::exit(1);
        }
        println!(
            "perf gate: {aggregate:.0} steps/s >= floor {floor:.0} \
             (reference {reference:.0} from {}, tolerance {:.0}%)",
            ref_path.display(),
            opts.tolerance_percent
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn pure_numbers_parse_and_junk_does_not() {
        assert_eq!(parse_pure_number("6"), Some(6));
        assert_eq!(parse_pure_number("007"), Some(7));
        assert_eq!(parse_pure_number(""), None, "empty wildcard is not a point");
        assert_eq!(parse_pure_number("backup"), None);
        assert_eq!(parse_pure_number("9_old"), None, "digits embedded in junk");
        assert_eq!(parse_pure_number("-3"), None);
        assert_eq!(
            parse_pure_number("99999999999999999999999"),
            None,
            "u64 overflow is not a point either"
        );
    }

    #[test]
    fn highest_number_wins_not_lexicographic_order() {
        assert_eq!(
            best_numbered_match(
                names(&["BENCH_PR6.json", "BENCH_PR10.json", "BENCH_PR2.json"]),
                "BENCH_PR",
                ".json"
            ),
            Some((10, "BENCH_PR10.json".to_string()))
        );
    }

    #[test]
    fn junk_shaped_matches_never_outrank_real_points() {
        // 'BENCH_PRbackup.json' used to parse as point 0 and
        // 'BENCH_PR9_old.json' as point 9 (digit-scraping): the latter
        // would beat the real newest point. Both must be skipped now.
        assert_eq!(
            best_numbered_match(
                names(&[
                    "BENCH_PRbackup.json",
                    "BENCH_PR9_old.json",
                    "BENCH_PR6.json",
                ]),
                "BENCH_PR",
                ".json"
            ),
            Some((6, "BENCH_PR6.json".to_string()))
        );
    }

    #[test]
    fn only_junk_matches_resolve_to_none() {
        // With nothing but junk the old code picked an arbitrary file as
        // "point 0"; now there is no reference and the caller fails loudly.
        assert_eq!(
            best_numbered_match(
                names(&["BENCH_PRbackup.json", "BENCH_PR9_old.json"]),
                "BENCH_PR",
                ".json"
            ),
            None
        );
    }

    #[test]
    fn non_matching_names_are_ignored_silently() {
        assert_eq!(
            best_numbered_match(
                names(&["README.md", "BENCH_PR7.txt", "OTHER_PR9.json"]),
                "BENCH_PR",
                ".json"
            ),
            None
        );
    }
}
