//! Table VI: TATP and TPC-C throughput of ATOM and DHTM normalised to SO.

use dhtm_bench::{normalised_throughput, print_row, run_designs};
use dhtm_types::policy::DesignKind;

fn main() {
    let cfg = dhtm_bench::experiment_config();
    println!("# Table VI: OLTP throughput normalised to SO");
    println!("# Paper reference: TPC-C  SO 1.00 / ATOM 1.67 / DHTM 1.88");
    println!("#                  TATP   SO 1.00 / ATOM 1.27 / DHTM 1.53");
    let designs = [DesignKind::SoftwareOnly, DesignKind::Atom, DesignKind::Dhtm];
    print_row("workload", &["SO".into(), "ATOM".into(), "DHTM".into()]);
    for wl in ["tpcc", "tatp"] {
        let results = run_designs(&designs, wl, &cfg);
        let row: Vec<String> = designs
            .iter()
            .map(|&d| format!("{:.2}", normalised_throughput(&results, d)))
            .collect();
        print_row(wl, &row);
    }
}
