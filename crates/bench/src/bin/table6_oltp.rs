//! Table VI: TATP and TPC-C throughput of ATOM and DHTM normalised to SO.
//! Runs the `table6` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("table6");
}
