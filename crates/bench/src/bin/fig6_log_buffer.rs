//! Figure 6: DHTM throughput sensitivity to the log-buffer size (hash).

use dhtm_bench::{default_commits_for, print_row, run_pair};
use dhtm_types::policy::DesignKind;

fn main() {
    println!("# Figure 6: normalised throughput vs log-buffer size (hash benchmark)");
    println!("# Paper reference: rises with size, saturates at 64 entries, dips slightly at 128");
    let commits = default_commits_for("hash");
    let baseline = run_pair(
        DesignKind::Dhtm,
        "hash",
        &dhtm_bench::experiment_config().with_log_buffer_entries(64),
        commits,
    )
    .throughput();
    print_row(
        "entries",
        &["4", "8", "16", "32", "64", "128"]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
    );
    let mut row = Vec::new();
    for entries in [4usize, 8, 16, 32, 64, 128] {
        let cfg = dhtm_bench::experiment_config().with_log_buffer_entries(entries);
        let res = run_pair(DesignKind::Dhtm, "hash", &cfg, commits);
        row.push(format!("{:.3}", res.throughput() / baseline));
    }
    print_row("DHTM", &row);
}
