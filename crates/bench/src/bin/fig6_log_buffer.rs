//! Figure 6: DHTM throughput sensitivity to the log-buffer size (hash).
//! Runs the `fig6` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("fig6");
}
