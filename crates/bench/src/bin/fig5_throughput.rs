//! Figure 5: transaction throughput of sdTM, ATOM, LogTM-ATOM and DHTM on the
//! six micro-benchmarks, normalised to SO. Runs the `fig5` harness
//! experiment; accepts `--jobs N`, `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("fig5");
}
