//! Figure 5: transaction throughput of sdTM, ATOM, LogTM-ATOM and DHTM on the
//! six micro-benchmarks, normalised to SO.

use dhtm_bench::{geometric_mean, normalised_throughput, print_row, run_designs, MICRO_NAMES};
use dhtm_types::policy::DesignKind;

fn main() {
    let cfg = dhtm_bench::experiment_config();
    let designs = [
        DesignKind::SoftwareOnly,
        DesignKind::SdTm,
        DesignKind::Atom,
        DesignKind::LogTmAtom,
        DesignKind::Dhtm,
    ];
    println!("# Figure 5: throughput normalised to SO (8 cores, Table III config)");
    println!("# Paper reference (averages): sdTM 1.20x, ATOM 1.35x, LogTM-ATOM ~1.44x, DHTM 1.61x");
    let header: Vec<String> = designs
        .iter()
        .skip(1)
        .map(|d| d.label().to_string())
        .collect();
    print_row("workload", &header);
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len() - 1];
    for wl in MICRO_NAMES {
        let results = run_designs(&designs, wl, &cfg);
        let mut row = Vec::new();
        for (i, d) in designs.iter().skip(1).enumerate() {
            let norm = normalised_throughput(&results, *d);
            per_design[i].push(norm);
            row.push(format!("{norm:.2}"));
        }
        print_row(wl, &row);
    }
    let avg_row: Vec<String> = per_design
        .iter()
        .map(|v| format!("{:.2}", geometric_mean(v)))
        .collect();
    print_row("Ave.", &avg_row);
}
