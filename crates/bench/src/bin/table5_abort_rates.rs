//! Table V: abort rates (%) of sdTM and DHTM on the micro-benchmarks.
//! Runs the `table5` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("table5");
}
