//! Table V: abort rates (%) of sdTM and DHTM on the micro-benchmarks.

use dhtm_bench::{default_commits_for, print_row, run_pair, MICRO_NAMES};
use dhtm_types::policy::DesignKind;

fn main() {
    let cfg = dhtm_bench::experiment_config();
    println!("# Table V: abort rates (%)");
    println!("# Paper reference: sdTM avg 37%, DHTM avg 21%");
    print_row(
        "design",
        &MICRO_NAMES
            .iter()
            .map(|s| s.to_string())
            .chain(["Ave.".into()])
            .collect::<Vec<_>>(),
    );
    for design in [DesignKind::SdTm, DesignKind::Dhtm] {
        let mut row = Vec::new();
        let mut sum = 0.0;
        for wl in MICRO_NAMES {
            let res = run_pair(design, wl, &cfg, default_commits_for(wl));
            let rate = res.stats.abort_rate_percent();
            sum += rate;
            row.push(format!("{rate:.0}"));
        }
        row.push(format!("{:.0}", sum / MICRO_NAMES.len() as f64));
        print_row(design.label(), &row);
    }
}
