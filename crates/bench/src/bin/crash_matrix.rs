//! Crash-injection & recovery-validation matrix: sweeps injected crash
//! points across every design × workload cell and checks the recovery
//! oracles (the end-to-end proof of the paper's durability claim).
//! Runs the `recovery` harness experiment; accepts `--jobs N`,
//! `--crash-points N`, `--crash-at CYCLE`, `--format table|json|csv`,
//! `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("recovery");
}
