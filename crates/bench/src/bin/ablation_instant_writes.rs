//! Section VI-D ablation: DHTM with instantaneous critical-path writes
//! (paper: ~16% faster than stock DHTM on the micro-benchmarks), plus the
//! NP upper bound (paper: NP is ~59% faster than DHTM).

use dhtm::{DhtmEngine, DhtmOptions};
use dhtm_bench::workload_by_name;
use dhtm_bench::{
    default_commits_for, geometric_mean, print_row, run_pair, EXPERIMENT_SEED, MICRO_NAMES,
};
use dhtm_sim::driver::{RunLimits, Simulator};
use dhtm_sim::machine::Machine;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

fn run_dhtm_variant(options: DhtmOptions, workload: &str, cfg: &SystemConfig) -> f64 {
    let mut machine = Machine::new(cfg.clone());
    let mut engine = DhtmEngine::with_options(cfg, options);
    let mut wl = workload_by_name(workload, EXPERIMENT_SEED);
    let limits = RunLimits::evaluation().with_target_commits(default_commits_for(workload));
    let res = Simulator::new().run(&mut machine, &mut engine, wl.as_mut(), &limits);
    res.throughput()
}

fn main() {
    let cfg = dhtm_bench::experiment_config();
    println!("# Section VI-D: instant-write ablation and the NP upper bound (normalised to SO)");
    println!("# Paper reference: DHTM+instant ~1.16x DHTM; NP ~1.59x DHTM");
    print_row(
        "workload",
        &["DHTM".into(), "DHTM-instant".into(), "NP".into()],
    );
    let mut ratios_instant = Vec::new();
    let mut ratios_np = Vec::new();
    for wl in MICRO_NAMES {
        let commits = default_commits_for(wl);
        let so = run_pair(DesignKind::SoftwareOnly, wl, &cfg, commits).throughput();
        let dhtm = run_dhtm_variant(DhtmOptions::paper_default(), wl, &cfg);
        let instant = run_dhtm_variant(DhtmOptions::instant_writes(), wl, &cfg);
        let np = run_pair(DesignKind::NonPersistent, wl, &cfg, commits).throughput();
        ratios_instant.push(instant / dhtm);
        ratios_np.push(np / dhtm);
        print_row(
            wl,
            &[
                format!("{:.2}", dhtm / so),
                format!("{:.2}", instant / so),
                format!("{:.2}", np / so),
            ],
        );
    }
    println!();
    println!(
        "instant-writes speedup over DHTM (geo-mean): {:.2}x   (paper: ~1.16x)",
        geometric_mean(&ratios_instant)
    );
    println!(
        "NP speedup over DHTM (geo-mean):             {:.2}x   (paper: ~1.59x)",
        geometric_mean(&ratios_np)
    );
}
