//! Section VI-D ablation: DHTM with instantaneous critical-path writes
//! (paper: ~16% faster than stock DHTM on the micro-benchmarks), plus the
//! NP upper bound (paper: NP is ~59% faster than DHTM).
//! Runs the `ablation` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("ablation");
}
