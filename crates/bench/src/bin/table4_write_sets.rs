//! Table IV: workload write-set sizes (cache lines), measured as the mean
//! write-set footprint of committed DHTM transactions.
//! Runs the `table4` harness experiment; accepts `--jobs N`,
//! `--format table|json|csv`, `--out PATH`.

fn main() {
    dhtm_harness::experiments::run_cli("table4");
}
