//! Table IV: workload write-set sizes (cache lines), measured as the mean
//! write-set footprint of committed DHTM transactions.

use dhtm_bench::{default_commits_for, print_row, run_pair};
use dhtm_types::policy::DesignKind;

fn main() {
    let cfg = dhtm_bench::experiment_config();
    println!("# Table IV: mean write-set size per transaction (cache lines)");
    let paper = [
        ("tpcc", 590.0),
        ("tatp", 167.0),
        ("queue", 52.0),
        ("hash", 58.0),
        ("sdg", 56.0),
        ("sps", 63.0),
        ("btree", 61.0),
        ("rbtree", 53.0),
    ];
    print_row("workload", &["measured".into(), "paper".into()]);
    for (wl, reference) in paper {
        let res = run_pair(DesignKind::Dhtm, wl, &cfg, default_commits_for(wl).min(64));
        print_row(
            wl,
            &[
                format!("{:.0}", res.stats.mean_write_set_lines()),
                format!("{reference:.0}"),
            ],
        );
    }
}
