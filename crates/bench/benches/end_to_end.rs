//! End-to-end criterion benchmarks: one small simulation per design on the
//! hash micro-benchmark (a scaled-down Figure 5 data point), so that
//! `cargo bench` exercises the full stack of every design.

use criterion::{criterion_group, criterion_main, Criterion};
use dhtm_bench::run_pair;
use dhtm_types::config::SystemConfig;
use dhtm_types::policy::DesignKind;

fn bench_designs(c: &mut Criterion) {
    let cfg = SystemConfig::isca18_baseline();
    let mut group = c.benchmark_group("simulate_hash_50_commits");
    group.sample_size(10);
    for design in DesignKind::ALL {
        group.bench_function(design.label(), |b| {
            b.iter(|| run_pair(design, "hash", &cfg, 50).stats.committed)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_designs);
criterion_main!(benches);
