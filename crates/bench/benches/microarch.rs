//! Criterion micro-benchmarks of the core hardware structures: the log
//! buffer (coalescing), the read-set signature, the memory channel and the
//! recovery manager. These quantify the per-operation cost of the structures
//! that the DHTM engine exercises on every transactional store.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dhtm_cache::log_buffer::LogBuffer;
use dhtm_cache::signature::ReadSignature;
use dhtm_nvm::bandwidth::MemoryChannel;
use dhtm_nvm::domain::PersistentDomain;
use dhtm_nvm::record::LogRecord;
use dhtm_nvm::recovery::RecoveryManager;
use dhtm_types::{LineAddr, ThreadId, TxId};

fn bench_log_buffer(c: &mut Criterion) {
    c.bench_function("log_buffer/coalescing_64_entries", |b| {
        b.iter_batched(
            || LogBuffer::new(64),
            |mut buf| {
                for i in 0..1000u64 {
                    let _ = buf.record_store(LineAddr::new(i % 128));
                }
                buf.drain().len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_signature(c: &mut Criterion) {
    c.bench_function("signature/insert_and_probe_2048_bits", |b| {
        b.iter_batched(
            || ReadSignature::new(2048),
            |mut sig| {
                for i in 0..256u64 {
                    sig.insert(LineAddr::new(i * 3));
                }
                (0..256u64)
                    .filter(|&i| sig.maybe_contains(LineAddr::new(i)))
                    .count()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_channel(c: &mut Criterion) {
    c.bench_function("memory_channel/1000_line_transfers", |b| {
        b.iter_batched(
            MemoryChannel::isca18_baseline,
            |mut ch| {
                let mut t = 0;
                for i in 0..1000u64 {
                    t = ch.request(i * 10, 64);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_recovery(c: &mut Criterion) {
    c.bench_function("recovery/replay_100_transactions", |b| {
        b.iter_batched(
            || {
                let mut d = PersistentDomain::new(4, 4096, 256);
                for i in 0..100u64 {
                    let tx = TxId::new(i + 1);
                    let t = ThreadId::new((i % 4) as usize);
                    for j in 0..8u64 {
                        d.log_mut(t)
                            .append(LogRecord::redo(tx, LineAddr::new(i * 8 + j), [i; 8]))
                            .unwrap();
                    }
                    d.log_mut(t).append(LogRecord::commit(tx)).unwrap();
                }
                d
            },
            |mut d| {
                RecoveryManager::new()
                    .recover(&mut d)
                    .unwrap()
                    .replayed_transactions
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_log_buffer, bench_signature, bench_channel, bench_recovery
}
criterion_main!(benches);
