//! System configuration mirroring Table III of the paper.
//!
//! | Parameter | Paper value |
//! |---|---|
//! | Cores | 8 in-order cores @ 2 GHz |
//! | L1 I/D cache | 32 KB, 64 B lines, 4-way |
//! | L1 access latency | 3 cycles |
//! | L2 (LLC) | 1 MB × 8 tiles, 64 B lines, 16-way |
//! | L2 access latency | 30 cycles |
//! | MSHRs | 32 |
//! | NVM access latency | 360 (write) / 240 (read) cycles |
//! | Peak memory bandwidth | 5.3 GB/s |
//!
//! The defaults produced by [`SystemConfig::isca18_baseline`] reproduce this
//! table; individual experiments override specific fields (e.g. the log-buffer
//! sweep of Figure 6 or the bandwidth scaling of Table VII).

use crate::addr::LINE_SIZE;
use crate::policy::ConflictPolicy;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_size: usize,
}

impl CacheGeometry {
    /// Creates a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not divisible into an integral power-of-two
    /// number of sets of `ways` lines.
    pub fn new(capacity_bytes: usize, ways: usize, line_size: usize) -> Self {
        let g = CacheGeometry {
            capacity_bytes,
            ways,
            line_size,
        };
        let sets = g.num_sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(
            sets.is_power_of_two(),
            "number of sets ({sets}) must be a power of two"
        );
        g
    }

    /// Number of cache lines the cache can hold.
    pub fn num_lines(&self) -> usize {
        self.capacity_bytes / self.line_size
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.num_lines() / self.ways
    }

    /// The paper's L1 geometry: 32 KB, 4-way, 64 B lines.
    pub fn isca18_l1() -> Self {
        CacheGeometry::new(32 * 1024, 4, LINE_SIZE)
    }

    /// The paper's LLC geometry: 1 MB × 8 tiles, 16-way, 64 B lines.
    pub fn isca18_llc() -> Self {
        CacheGeometry::new(8 * 1024 * 1024, 16, LINE_SIZE)
    }
}

/// Access latencies, in core cycles, for each level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyConfig {
    /// L1 hit latency (Table III: 3 cycles).
    pub l1_hit: u64,
    /// LLC hit latency (Table III: 30 cycles).
    pub llc_hit: u64,
    /// NVM read latency (Table III: 240 cycles).
    pub nvm_read: u64,
    /// NVM write latency (Table III: 360 cycles).
    pub nvm_write: u64,
    /// Latency of a directory-initiated forward or invalidation hop between
    /// two L1 caches (on-chip network round trip). Not spelled out in the
    /// paper; chosen comparable to an LLC access.
    pub coherence_hop: u64,
}

impl LatencyConfig {
    /// The Table III latency configuration.
    pub fn isca18_baseline() -> Self {
        LatencyConfig {
            l1_hit: 3,
            llc_hit: 30,
            nvm_read: 240,
            nvm_write: 360,
            coherence_hop: 30,
        }
    }
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self::isca18_baseline()
    }
}

/// Software overhead model for designs that perform logging or concurrency
/// control in software (SO, sdTM and the fallback paths).
///
/// These constants model instruction overhead on the in-order cores of the
/// paper's setup: creating a log entry in software requires composing
/// address/value pairs, issuing non-temporal stores and ordering them with
/// fences; acquiring a lock requires an atomic read-modify-write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoftwareCostConfig {
    /// Instruction overhead (cycles) for composing one software log entry.
    pub log_entry_setup: u64,
    /// Cycles spent on an sfence/pcommit-style ordering point.
    pub persist_fence: u64,
    /// Cycles for an uncontended lock acquire (atomic RMW on a cached line).
    pub lock_acquire: u64,
    /// Cycles for a lock release (store + fence).
    pub lock_release: u64,
}

impl SoftwareCostConfig {
    /// Default software cost model used throughout the evaluation.
    pub fn isca18_baseline() -> Self {
        SoftwareCostConfig {
            log_entry_setup: 12,
            persist_fence: 30,
            lock_acquire: 20,
            lock_release: 10,
        }
    }
}

impl Default for SoftwareCostConfig {
    fn default() -> Self {
        Self::isca18_baseline()
    }
}

/// Complete configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of in-order cores (one hardware thread each).
    pub num_cores: usize,
    /// Core clock frequency in Hz (2 GHz in the paper). Only used to convert
    /// the memory bandwidth into bytes/cycle.
    pub core_freq_hz: u64,
    /// Private L1 data cache geometry.
    pub l1: CacheGeometry,
    /// Shared LLC geometry (aggregate over all tiles).
    pub llc: CacheGeometry,
    /// Number of LLC tiles/banks (8 in the paper).
    pub llc_tiles: usize,
    /// Number of MSHRs per core.
    pub mshrs: usize,
    /// Access latencies.
    pub latency: LatencyConfig,
    /// Software operation cost model.
    pub software: SoftwareCostConfig,
    /// Peak memory bandwidth in bytes per second (5.3 GB/s in the paper).
    pub mem_bandwidth_bytes_per_sec: f64,
    /// Multiplier applied to the peak bandwidth (Table VII sweeps 1×/2×/10×).
    pub bandwidth_multiplier: f64,
    /// Number of entries in the DHTM log buffer (64 by default, Figure 6
    /// sweeps 4..128).
    pub log_buffer_entries: usize,
    /// Capacity, in log records, of each per-thread circular transaction log.
    pub log_region_records: usize,
    /// Capacity, in addresses, of each per-transaction overflow list.
    pub overflow_list_entries: usize,
    /// Number of bits in the read-set overflow signature.
    pub read_signature_bits: usize,
    /// HTM conflict resolution policy (the paper's default is first-writer
    /// wins, as in IBM POWER8).
    pub conflict_policy: ConflictPolicy,
    /// Maximum number of times an HTM transaction retries before taking the
    /// software fallback path.
    pub max_htm_retries: usize,
}

impl SystemConfig {
    /// The configuration used throughout the paper's evaluation (Table III).
    pub fn isca18_baseline() -> Self {
        SystemConfig {
            num_cores: 8,
            core_freq_hz: 2_000_000_000,
            l1: CacheGeometry::isca18_l1(),
            llc: CacheGeometry::isca18_llc(),
            llc_tiles: 8,
            mshrs: 32,
            latency: LatencyConfig::isca18_baseline(),
            software: SoftwareCostConfig::isca18_baseline(),
            mem_bandwidth_bytes_per_sec: 5.3e9,
            bandwidth_multiplier: 1.0,
            log_buffer_entries: 64,
            log_region_records: 64 * 1024,
            overflow_list_entries: 16 * 1024,
            read_signature_bits: 2048,
            conflict_policy: ConflictPolicy::FirstWriterWins,
            max_htm_retries: 8,
        }
    }

    /// A scaled-down configuration for fast unit/integration tests: 4 cores,
    /// small caches, small logs. Behavioural properties (coalescing,
    /// overflow, recovery) are identical, only capacities shrink.
    pub fn small_test() -> Self {
        SystemConfig {
            num_cores: 4,
            l1: CacheGeometry::new(2 * 1024, 2, LINE_SIZE),
            llc: CacheGeometry::new(32 * 1024, 4, LINE_SIZE),
            llc_tiles: 2,
            log_buffer_entries: 4,
            log_region_records: 4 * 1024,
            overflow_list_entries: 1024,
            read_signature_bits: 256,
            ..Self::isca18_baseline()
        }
    }

    /// Effective memory bandwidth in bytes per core cycle, after applying the
    /// bandwidth multiplier.
    ///
    /// With the baseline parameters this is 5.3 GB/s ÷ 2 GHz = 2.65 B/cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.mem_bandwidth_bytes_per_sec * self.bandwidth_multiplier / self.core_freq_hz as f64
    }

    /// Returns a copy with a different log-buffer size (Figure 6 sweep).
    #[must_use]
    pub fn with_log_buffer_entries(mut self, entries: usize) -> Self {
        self.log_buffer_entries = entries;
        self
    }

    /// Returns a copy with a different bandwidth multiplier (Table VII sweep).
    #[must_use]
    pub fn with_bandwidth_multiplier(mut self, multiplier: f64) -> Self {
        self.bandwidth_multiplier = multiplier;
        self
    }

    /// Returns a copy with a different core count.
    #[must_use]
    pub fn with_num_cores(mut self, num_cores: usize) -> Self {
        self.num_cores = num_cores;
        self
    }

    /// Returns a copy with a different conflict resolution policy.
    #[must_use]
    pub fn with_conflict_policy(mut self, policy: ConflictPolicy) -> Self {
        self.conflict_policy = policy;
        self
    }

    /// Validates internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if any field is out of range.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.num_cores == 0 {
            return Err("num_cores must be > 0".into());
        }
        if self.log_buffer_entries == 0 {
            return Err("log_buffer_entries must be > 0".into());
        }
        if self.bytes_per_cycle() <= 0.0 {
            return Err("memory bandwidth must be positive".into());
        }
        if self.llc.capacity_bytes < self.l1.capacity_bytes {
            return Err("LLC must be at least as large as one L1".into());
        }
        if self.read_signature_bits == 0 || !self.read_signature_bits.is_power_of_two() {
            return Err("read_signature_bits must be a power of two".into());
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::isca18_baseline()
    }
}

/// A *named* base machine configuration — the serializable anchor a
/// scenario spec builds from. Every experiment configuration in this
/// repository is one of these bases plus a [`ConfigOverlay`], which is what
/// lets a `SimSpec` round-trip through TOML/JSON without serialising every
/// field of [`SystemConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BaseConfig {
    /// The paper's Table III machine ([`SystemConfig::isca18_baseline`]).
    #[default]
    Isca18,
    /// The scaled-down test machine ([`SystemConfig::small_test`]).
    Small,
}

impl BaseConfig {
    /// Every named base, for enumeration in docs and tests.
    pub const ALL: [BaseConfig; 2] = [BaseConfig::Isca18, BaseConfig::Small];

    /// The canonical spec-file name of the base ("isca18", "small").
    pub fn name(self) -> &'static str {
        match self {
            BaseConfig::Isca18 => "isca18",
            BaseConfig::Small => "small",
        }
    }

    /// Materialises the base configuration.
    pub fn resolve(self) -> SystemConfig {
        match self {
            BaseConfig::Isca18 => SystemConfig::isca18_baseline(),
            BaseConfig::Small => SystemConfig::small_test(),
        }
    }
}

impl std::fmt::Display for BaseConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BaseConfig {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "isca18" | "default" => Ok(BaseConfig::Isca18),
            "small" | "small_test" => Ok(BaseConfig::Small),
            other => Err(format!("unknown base config '{other}' (isca18|small)")),
        }
    }
}

/// A sparse set of overrides applied on top of a [`BaseConfig`]: only the
/// fields an experiment actually sweeps. `None` means "keep the base
/// value", so an empty overlay is the base itself and two overlays compose
/// by field-wise `or`. This is the "config" table of a scenario spec file;
/// it deliberately covers every variant the experiment catalogue uses
/// (log-buffer sweeps, bandwidth scaling, the small/default/large ladder)
/// so catalogue cells are fully serializable.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ConfigOverlay {
    /// Override for [`SystemConfig::num_cores`].
    pub num_cores: Option<usize>,
    /// Override for [`SystemConfig::log_buffer_entries`].
    pub log_buffer_entries: Option<usize>,
    /// Override for [`SystemConfig::bandwidth_multiplier`].
    pub bandwidth_multiplier: Option<f64>,
    /// Override for [`SystemConfig::conflict_policy`].
    pub conflict_policy: Option<ConflictPolicy>,
    /// Override for [`SystemConfig::max_htm_retries`].
    pub max_htm_retries: Option<usize>,
    /// Override for [`SystemConfig::mshrs`].
    pub mshrs: Option<usize>,
    /// Override for [`SystemConfig::read_signature_bits`].
    pub read_signature_bits: Option<usize>,
    /// Override for the LLC capacity in bytes (the LLC keeps the base's
    /// line size; pair with [`ConfigOverlay::llc_ways`] as needed).
    pub llc_capacity_bytes: Option<usize>,
    /// Override for the LLC associativity.
    pub llc_ways: Option<usize>,
}

impl ConfigOverlay {
    /// The empty overlay (the base configuration unchanged).
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether no field is overridden.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Applies the overlay to a base configuration.
    pub fn apply(&self, mut cfg: SystemConfig) -> SystemConfig {
        if let Some(n) = self.num_cores {
            cfg.num_cores = n;
        }
        if let Some(n) = self.log_buffer_entries {
            cfg.log_buffer_entries = n;
        }
        if let Some(m) = self.bandwidth_multiplier {
            cfg.bandwidth_multiplier = m;
        }
        if let Some(p) = self.conflict_policy {
            cfg.conflict_policy = p;
        }
        if let Some(n) = self.max_htm_retries {
            cfg.max_htm_retries = n;
        }
        if let Some(n) = self.mshrs {
            cfg.mshrs = n;
        }
        if let Some(n) = self.read_signature_bits {
            cfg.read_signature_bits = n;
        }
        if self.llc_capacity_bytes.is_some() || self.llc_ways.is_some() {
            cfg.llc = CacheGeometry::new(
                self.llc_capacity_bytes.unwrap_or(cfg.llc.capacity_bytes),
                self.llc_ways.unwrap_or(cfg.llc.ways),
                cfg.llc.line_size,
            );
        }
        cfg
    }

    /// Returns a copy with the core count overridden (the matrix's
    /// core-count axis composes onto each config variant this way).
    #[must_use]
    pub fn with_num_cores(mut self, num_cores: usize) -> Self {
        self.num_cores = Some(num_cores);
        self
    }

    /// Returns a copy with the log-buffer size overridden.
    #[must_use]
    pub fn with_log_buffer_entries(mut self, entries: usize) -> Self {
        self.log_buffer_entries = Some(entries);
        self
    }

    /// Returns a copy with the bandwidth multiplier overridden.
    #[must_use]
    pub fn with_bandwidth_multiplier(mut self, multiplier: f64) -> Self {
        self.bandwidth_multiplier = Some(multiplier);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_iii() {
        let cfg = SystemConfig::isca18_baseline();
        assert_eq!(cfg.num_cores, 8);
        assert_eq!(cfg.l1.capacity_bytes, 32 * 1024);
        assert_eq!(cfg.l1.ways, 4);
        assert_eq!(cfg.l1.line_size, 64);
        assert_eq!(cfg.llc.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.llc.ways, 16);
        assert_eq!(cfg.latency.l1_hit, 3);
        assert_eq!(cfg.latency.llc_hit, 30);
        assert_eq!(cfg.latency.nvm_read, 240);
        assert_eq!(cfg.latency.nvm_write, 360);
        assert_eq!(cfg.mshrs, 32);
        assert_eq!(cfg.log_buffer_entries, 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn bytes_per_cycle_matches_peak_bandwidth() {
        let cfg = SystemConfig::isca18_baseline();
        let bpc = cfg.bytes_per_cycle();
        assert!((bpc - 2.65).abs() < 1e-9, "got {bpc}");
        let cfg10 = cfg.with_bandwidth_multiplier(10.0);
        assert!((cfg10.bytes_per_cycle() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn l1_geometry_sets() {
        let g = CacheGeometry::isca18_l1();
        assert_eq!(g.num_lines(), 512);
        assert_eq!(g.num_sets(), 128);
    }

    #[test]
    fn llc_geometry_sets() {
        let g = CacheGeometry::isca18_llc();
        assert_eq!(g.num_lines(), 131_072);
        assert_eq!(g.num_sets(), 8192);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        CacheGeometry::new(3 * 1024, 4, 64);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut cfg = SystemConfig::small_test();
        assert!(cfg.validate().is_ok());
        cfg.num_cores = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small_test();
        cfg.log_buffer_entries = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SystemConfig::small_test();
        cfg.read_signature_bits = 100;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn builder_style_overrides() {
        let cfg = SystemConfig::isca18_baseline()
            .with_log_buffer_entries(16)
            .with_num_cores(4)
            .with_conflict_policy(ConflictPolicy::RequesterWins);
        assert_eq!(cfg.log_buffer_entries, 16);
        assert_eq!(cfg.num_cores, 4);
        assert_eq!(cfg.conflict_policy, ConflictPolicy::RequesterWins);
    }

    #[test]
    fn small_test_config_is_valid() {
        assert!(SystemConfig::small_test().validate().is_ok());
    }

    #[test]
    fn base_config_resolves_and_round_trips_names() {
        for base in BaseConfig::ALL {
            assert!(base.resolve().validate().is_ok());
            assert_eq!(base.name().parse::<BaseConfig>().unwrap(), base);
            assert_eq!(format!("{base}"), base.name());
        }
        assert_eq!("default".parse::<BaseConfig>().unwrap(), BaseConfig::Isca18);
        assert!("medium".parse::<BaseConfig>().is_err());
    }

    #[test]
    fn empty_overlay_is_identity() {
        let overlay = ConfigOverlay::none();
        assert!(overlay.is_empty());
        assert_eq!(
            overlay.apply(SystemConfig::isca18_baseline()),
            SystemConfig::isca18_baseline()
        );
    }

    #[test]
    fn overlay_applies_every_field() {
        let overlay = ConfigOverlay {
            num_cores: Some(2),
            log_buffer_entries: Some(16),
            bandwidth_multiplier: Some(2.0),
            conflict_policy: Some(ConflictPolicy::RequesterWins),
            max_htm_retries: Some(3),
            mshrs: Some(8),
            read_signature_bits: Some(512),
            llc_capacity_bytes: Some(16 * 1024 * 1024),
            llc_ways: Some(8),
        };
        assert!(!overlay.is_empty());
        let cfg = overlay.apply(SystemConfig::isca18_baseline());
        assert_eq!(cfg.num_cores, 2);
        assert_eq!(cfg.log_buffer_entries, 16);
        assert_eq!(cfg.bandwidth_multiplier, 2.0);
        assert_eq!(cfg.conflict_policy, ConflictPolicy::RequesterWins);
        assert_eq!(cfg.max_htm_retries, 3);
        assert_eq!(cfg.mshrs, 8);
        assert_eq!(cfg.read_signature_bits, 512);
        assert_eq!(cfg.llc.capacity_bytes, 16 * 1024 * 1024);
        assert_eq!(cfg.llc.ways, 8);
        assert_eq!(
            cfg.llc.line_size,
            SystemConfig::isca18_baseline().llc.line_size
        );
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn overlay_matches_the_builder_style_overrides() {
        // The overlay path and the with_* builder path must agree — the
        // experiment catalogue was ported from the latter to the former.
        let via_builders = SystemConfig::isca18_baseline()
            .with_log_buffer_entries(8)
            .with_bandwidth_multiplier(10.0)
            .with_num_cores(4);
        let via_overlay = ConfigOverlay::none()
            .with_log_buffer_entries(8)
            .with_bandwidth_multiplier(10.0)
            .with_num_cores(4)
            .apply(SystemConfig::isca18_baseline());
        assert_eq!(via_builders, via_overlay);
    }
}
