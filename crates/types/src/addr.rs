//! Address newtypes: byte addresses, cache-line addresses and word indices.
//!
//! The simulated machine uses 64-byte cache lines composed of eight 8-byte
//! words, matching the configuration in Table III of the paper. Logging in
//! DHTM happens at either word granularity (naive design of Figure 2b) or
//! cache-line granularity (log-buffer design of Figure 2c), so both units get
//! dedicated types.

use std::fmt;

/// Size of a cache line in bytes (Table III: 64 B lines).
pub const LINE_SIZE: usize = 64;
/// Size of a machine word in bytes.
pub const WORD_SIZE: usize = 8;
/// Number of words per cache line.
pub const WORDS_PER_LINE: usize = LINE_SIZE / WORD_SIZE;

/// A byte address in the simulated physical address space.
///
/// ```
/// use dhtm_types::addr::Address;
/// let a = Address::new(0x1000).offset(24);
/// assert_eq!(a.word_index().get(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line this byte belongs to.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE as u64)
    }

    /// Returns the word within the owning cache line.
    pub const fn word_index(self) -> WordIndex {
        WordIndex(((self.0 % LINE_SIZE as u64) / WORD_SIZE as u64) as usize)
    }

    /// Returns the byte offset within the owning cache line.
    pub const fn line_offset(self) -> usize {
        (self.0 % LINE_SIZE as u64) as usize
    }

    /// Returns a new address displaced by `bytes`.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        Address(self.0 + bytes)
    }

    /// Returns `true` if the address is aligned to a word boundary.
    pub const fn is_word_aligned(self) -> bool {
        self.0.is_multiple_of(WORD_SIZE as u64)
    }

    /// Returns `true` if the address is aligned to a cache-line boundary.
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_SIZE as u64)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address::new(raw)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line number (byte address divided by [`LINE_SIZE`]).
///
/// All coherence, logging and overflow-list bookkeeping in the paper operates
/// on cache-line addresses; using a distinct type prevents accidentally mixing
/// them with byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a line number.
    ///
    /// Note this takes a line *number*, not a byte address: passing a byte
    /// address here would make two offsets of one line look like different
    /// lines (and land them in different cache sets). When starting from a
    /// byte address use [`Address::line`] (which strips the offset) or
    /// [`LineAddr::from_base`] (which asserts there is none to strip).
    pub const fn new(line_number: u64) -> Self {
        LineAddr(line_number)
    }

    /// Creates a line address from the byte address of the line's first
    /// byte. Unlike [`Address::line`] this does not silently strip offset
    /// bits — a non-line-aligned address is a caller bug (the caller
    /// thought it held a base address but didn't), caught in debug builds.
    pub fn from_base(addr: Address) -> Self {
        debug_assert!(
            addr.is_line_aligned(),
            "byte address {addr} is not line-aligned; use Address::line to \
             strip offsets deliberately"
        );
        addr.line()
    }

    /// Returns the line number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte of the line.
    pub const fn base(self) -> Address {
        Address(self.0 * LINE_SIZE as u64)
    }

    /// Returns the byte address of the `word`-th word of this line.
    ///
    /// # Panics
    ///
    /// Panics if `word >= WORDS_PER_LINE`.
    pub fn word_address(self, word: WordIndex) -> Address {
        assert!(word.get() < WORDS_PER_LINE, "word index out of range");
        Address(self.0 * LINE_SIZE as u64 + (word.get() * WORD_SIZE) as u64)
    }

    /// Returns the successor line (useful when laying out simulated objects).
    #[must_use]
    pub const fn next(self) -> Self {
        LineAddr(self.0 + 1)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

impl From<Address> for LineAddr {
    fn from(a: Address) -> Self {
        a.line()
    }
}

/// Index of a word within a cache line (0..[`WORDS_PER_LINE`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIndex(usize);

impl WordIndex {
    /// Creates a word index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= WORDS_PER_LINE`.
    pub fn new(idx: usize) -> Self {
        assert!(idx < WORDS_PER_LINE, "word index {idx} out of range");
        WordIndex(idx)
    }

    /// Returns the index value.
    pub const fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for WordIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Contents of a single cache line: eight 64-bit words.
pub type LineData = [u64; WORDS_PER_LINE];

/// A zeroed cache line, the initial content of all simulated memory.
pub const ZERO_LINE: LineData = [0; WORDS_PER_LINE];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_line_mapping() {
        let a = Address::new(0);
        assert_eq!(a.line(), LineAddr::new(0));
        let b = Address::new(63);
        assert_eq!(b.line(), LineAddr::new(0));
        let c = Address::new(64);
        assert_eq!(c.line(), LineAddr::new(1));
        let d = Address::new(64 * 100 + 17);
        assert_eq!(d.line(), LineAddr::new(100));
        assert_eq!(d.line_offset(), 17);
    }

    #[test]
    fn word_index_mapping() {
        assert_eq!(Address::new(0).word_index().get(), 0);
        assert_eq!(Address::new(7).word_index().get(), 0);
        assert_eq!(Address::new(8).word_index().get(), 1);
        assert_eq!(Address::new(63).word_index().get(), 7);
        assert_eq!(Address::new(64).word_index().get(), 0);
    }

    #[test]
    fn line_base_roundtrip() {
        for i in [0u64, 1, 7, 1000, 123_456] {
            let line = LineAddr::new(i);
            assert_eq!(line.base().line(), line);
            assert!(line.base().is_line_aligned());
        }
    }

    #[test]
    fn word_address_computation() {
        let line = LineAddr::new(2);
        let a = line.word_address(WordIndex::new(3));
        assert_eq!(a.raw(), 2 * 64 + 24);
        assert_eq!(a.word_index().get(), 3);
        assert!(a.is_word_aligned());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn word_index_out_of_range_panics() {
        WordIndex::new(8);
    }

    #[test]
    fn alignment_checks() {
        assert!(Address::new(0).is_line_aligned());
        assert!(!Address::new(8).is_line_aligned());
        assert!(Address::new(8).is_word_aligned());
        assert!(!Address::new(9).is_word_aligned());
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", Address::new(0x40)), "0x40");
        assert_eq!(format!("{}", LineAddr::new(0x2)), "L0x2");
        assert_eq!(format!("{}", WordIndex::new(5)), "w5");
    }

    #[test]
    fn next_line_advances_by_line_size() {
        let l = LineAddr::new(10);
        assert_eq!(l.next().base().raw() - l.base().raw(), LINE_SIZE as u64);
    }

    #[test]
    fn from_base_accepts_aligned_addresses() {
        assert_eq!(LineAddr::from_base(Address::new(0)), LineAddr::new(0));
        assert_eq!(
            LineAddr::from_base(Address::new(64 * 99)),
            LineAddr::new(99)
        );
    }

    #[test]
    #[should_panic(expected = "not line-aligned")]
    #[cfg(debug_assertions)]
    fn from_base_rejects_offset_addresses() {
        let _ = LineAddr::from_base(Address::new(64 * 7 + 8));
    }

    /// Every byte offset of a line maps to the same `LineAddr`: the
    /// construction path from byte addresses strips offsets, so set
    /// indexing downstream can never alias one line across sets.
    #[test]
    fn line_construction_strips_byte_offsets() {
        for base in [0u64, 64, 64 * 1234] {
            let canonical = Address::new(base).line();
            for off in 0..LINE_SIZE as u64 {
                assert_eq!(Address::new(base + off).line(), canonical);
            }
        }
    }

    #[test]
    fn from_conversions() {
        let a: Address = 128u64.into();
        let l: LineAddr = a.into();
        assert_eq!(l, LineAddr::new(2));
    }
}
