//! The workspace-wide error type.

use std::error::Error as StdError;
use std::fmt;

use crate::ids::{CoreId, TxId};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, DhtmError>;

/// Errors surfaced by the DHTM library and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DhtmError {
    /// The per-thread transaction log ran out of space. The paper's policy is
    /// to abort the transaction with a log-overflow indication so the OS can
    /// allocate a larger log and retry.
    LogOverflow {
        /// Transaction whose log write failed.
        tx: TxId,
        /// Capacity of the log region in records.
        capacity: usize,
    },
    /// The per-transaction overflow list ran out of space.
    OverflowListFull {
        /// Transaction whose overflow-list append failed.
        tx: TxId,
        /// Capacity of the overflow list in entries.
        capacity: usize,
    },
    /// An operation was attempted on a core that has no active transaction.
    NoActiveTransaction {
        /// The offending core.
        core: CoreId,
    },
    /// A transaction was started on a core whose previous transaction has not
    /// yet reached its completion point (Section III-B: only one set of write
    /// bits per cache line exists).
    PreviousTransactionIncomplete {
        /// The offending core.
        core: CoreId,
    },
    /// An access touched an address outside any region known to the simulated
    /// memory allocator.
    UnmappedAddress {
        /// The raw byte address.
        raw: u64,
    },
    /// Configuration validation failed.
    InvalidConfig(
        /// Human-readable description of the problem.
        String,
    ),
    /// The recovery log was corrupt or ended unexpectedly.
    CorruptLog(
        /// Human-readable description of the problem.
        String,
    ),
}

impl fmt::Display for DhtmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtmError::LogOverflow { tx, capacity } => {
                write!(
                    f,
                    "transaction log overflow for {tx} (capacity {capacity} records)"
                )
            }
            DhtmError::OverflowListFull { tx, capacity } => {
                write!(
                    f,
                    "overflow list full for {tx} (capacity {capacity} entries)"
                )
            }
            DhtmError::NoActiveTransaction { core } => {
                write!(f, "no active transaction on {core}")
            }
            DhtmError::PreviousTransactionIncomplete { core } => {
                write!(f, "previous transaction on {core} has not completed")
            }
            DhtmError::UnmappedAddress { raw } => {
                write!(f, "access to unmapped address 0x{raw:x}")
            }
            DhtmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            DhtmError::CorruptLog(msg) => write!(f, "corrupt transaction log: {msg}"),
        }
    }
}

impl StdError for DhtmError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync_and_displays() {
        assert_send_sync::<DhtmError>();
        let e = DhtmError::LogOverflow {
            tx: TxId::new(7),
            capacity: 128,
        };
        let msg = e.to_string();
        assert!(msg.contains("tx7"));
        assert!(msg.contains("128"));
    }

    #[test]
    fn all_variants_display_nonempty() {
        let variants = vec![
            DhtmError::LogOverflow {
                tx: TxId::new(1),
                capacity: 1,
            },
            DhtmError::OverflowListFull {
                tx: TxId::new(1),
                capacity: 1,
            },
            DhtmError::NoActiveTransaction {
                core: CoreId::new(0),
            },
            DhtmError::PreviousTransactionIncomplete {
                core: CoreId::new(0),
            },
            DhtmError::UnmappedAddress { raw: 0xdead },
            DhtmError::InvalidConfig("bad".into()),
            DhtmError::CorruptLog("truncated".into()),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
            assert!(!format!("{v:?}").is_empty());
        }
    }
}
