//! Statistics containers used by the simulator and the experiment harness.

use std::collections::BTreeMap;
use std::fmt;

/// Reasons a transaction attempt can abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbortReason {
    /// A coherence conflict with another transaction.
    Conflict,
    /// A transactional line was evicted from the L1 in a design that cannot
    /// tolerate write-set overflow (RTM-like capacity abort).
    Capacity,
    /// The write set overflowed the LLC (DHTM's limit) or the hardware log /
    /// overflow list filled up.
    LogOverflow,
    /// The transaction fell back to the software path after exhausting its
    /// hardware retries.
    Fallback,
    /// An explicit user abort.
    Explicit,
}

impl AbortReason {
    /// All reasons, for exhaustive reporting.
    pub const ALL: [AbortReason; 5] = [
        AbortReason::Conflict,
        AbortReason::Capacity,
        AbortReason::LogOverflow,
        AbortReason::Fallback,
        AbortReason::Explicit,
    ];

    /// The reason's position in [`AbortReason::ALL`], as a constant-time
    /// lookup — tally arrays index by this instead of scanning `ALL`.
    pub const fn index(self) -> usize {
        match self {
            AbortReason::Conflict => 0,
            AbortReason::Capacity => 1,
            AbortReason::LogOverflow => 2,
            AbortReason::Fallback => 3,
            AbortReason::Explicit => 4,
        }
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Conflict => "conflict",
            AbortReason::Capacity => "capacity",
            AbortReason::LogOverflow => "log-overflow",
            AbortReason::Fallback => "fallback",
            AbortReason::Explicit => "explicit",
        };
        f.write_str(s)
    }
}

/// Per-transaction statistics (collected for characterisation experiments
/// such as Table IV's write-set sizes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Number of distinct cache lines read.
    pub read_set_lines: usize,
    /// Number of distinct cache lines written.
    pub write_set_lines: usize,
    /// Number of individual store operations issued.
    pub stores: usize,
    /// Number of individual load operations issued.
    pub loads: usize,
    /// Number of redo/undo log records written to NVM on behalf of this
    /// transaction.
    pub log_records: usize,
    /// Cycles from begin to commit (or abort).
    pub cycles: u64,
    /// Number of times this logical transaction aborted before committing.
    pub aborts_before_commit: usize,
}

/// Aggregated statistics for one simulation run of one design on one workload.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Committed (logical) transactions.
    pub committed: u64,
    /// Driver events processed (begin/op/commit steps across all cores) —
    /// the denominator of the simulator's own steps-per-second throughput
    /// tracked by the `perf_trajectory` benchmark.
    pub steps: u64,
    /// Total transaction attempts that aborted, by reason.
    pub aborts: BTreeMap<AbortReason, u64>,
    /// Total simulated cycles (max over cores of each core's local clock).
    pub total_cycles: u64,
    /// Total loads executed (committed attempts only).
    pub loads: u64,
    /// Total stores executed (committed attempts only).
    pub stores: u64,
    /// Log records written to NVM.
    pub log_records_written: u64,
    /// Bytes of log traffic sent over the memory bus.
    pub log_bytes_written: u64,
    /// Bytes of in-place data write-back traffic sent over the memory bus.
    pub data_bytes_written: u64,
    /// Cache-line reads served by NVM.
    pub nvm_line_reads: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Transactional write-set lines that overflowed from L1 to LLC (DHTM).
    pub write_set_overflows: u64,
    /// Cycles spent waiting for locks (lock-based designs).
    pub lock_wait_cycles: u64,
    /// Cycles spent stalled *at commit* (waiting for log persistence / data
    /// flush, depending on the design). Counts only stalls of the commit
    /// step itself, not lock waits or NACKed memory operations — those are
    /// in [`RunStats::lock_wait_cycles`] and [`RunStats::total_stall_cycles`].
    pub commit_stall_cycles: u64,
    /// Total cycles cores spent stalled re-issuing *any* step (lock waits,
    /// NACKed requests and commit drains combined).
    pub total_stall_cycles: u64,
    /// Number of transactions executed on the software fallback path.
    pub fallback_commits: u64,
    /// Sum of write-set sizes (lines) over committed transactions, for
    /// computing the mean write-set size.
    pub sum_write_set_lines: u64,
    /// Sum of read-set sizes (lines) over committed transactions.
    pub sum_read_set_lines: u64,
    /// Crash-recovery experiment counters (all zero for ordinary simulation
    /// runs; filled in by the `dhtm_crash` auditor so crash experiments
    /// round-trip through the same JSON/CSV reporting as everything else).
    pub recovery: RecoveryCounters,
}

/// Aggregate recovery/crash-audit counters carried inside [`RunStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Crash points audited.
    pub crash_points: u64,
    /// Crash points whose recovery violated an oracle.
    pub oracle_failures: u64,
    /// Committed-but-incomplete transactions replayed from redo records.
    pub replayed_transactions: u64,
    /// In-flight transactions rolled back from undo records.
    pub rolled_back_transactions: u64,
    /// Transactions skipped as already complete.
    pub skipped_complete: u64,
    /// Transactions skipped as never committed / aborted.
    pub skipped_uncommitted: u64,
    /// Lines written to the in-place image during recovery.
    pub lines_written: u64,
    /// Word-granular writes performed during recovery.
    pub words_written: u64,
    /// Lines applied from redo records.
    pub redo_lines_applied: u64,
    /// Lines applied from undo records.
    pub undo_lines_applied: u64,
    /// Sentinel dependency edges honoured during replay ordering.
    pub sentinel_edges: u64,
}

impl RecoveryCounters {
    /// Accumulates another set of counters into this one.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.crash_points += other.crash_points;
        self.oracle_failures += other.oracle_failures;
        self.replayed_transactions += other.replayed_transactions;
        self.rolled_back_transactions += other.rolled_back_transactions;
        self.skipped_complete += other.skipped_complete;
        self.skipped_uncommitted += other.skipped_uncommitted;
        self.lines_written += other.lines_written;
        self.words_written += other.words_written;
        self.redo_lines_applied += other.redo_lines_applied;
        self.undo_lines_applied += other.undo_lines_applied;
        self.sentinel_edges += other.sentinel_edges;
    }
}

impl RunStats {
    /// Creates an empty statistics record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total aborts across all reasons.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.values().sum()
    }

    /// Records one abort of the given kind.
    pub fn record_abort(&mut self, reason: AbortReason) {
        *self.aborts.entry(reason).or_insert(0) += 1;
    }

    /// Abort rate as a percentage of all transaction attempts
    /// (aborts / (aborts + commits) × 100), the metric of Table V.
    pub fn abort_rate_percent(&self) -> f64 {
        let aborts = self.total_aborts() as f64;
        let attempts = aborts + self.committed as f64;
        if attempts == 0.0 {
            0.0
        } else {
            100.0 * aborts / attempts
        }
    }

    /// Transaction throughput in committed transactions per million cycles.
    ///
    /// Degenerate runs are clamped to `0.0`: a zero-cycle run (nothing ever
    /// stepped) and a zero-commit run both report zero throughput, never
    /// `NaN` or `inf`, so downstream normalisation and geometric means stay
    /// finite.
    pub fn throughput_per_mcycle(&self) -> f64 {
        if self.total_cycles == 0 || self.committed == 0 {
            0.0
        } else {
            self.committed as f64 * 1.0e6 / self.total_cycles as f64
        }
    }

    /// Mean write-set size in cache lines over committed transactions
    /// (Table IV's characterisation metric).
    pub fn mean_write_set_lines(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.sum_write_set_lines as f64 / self.committed as f64
        }
    }

    /// Mean read-set size in cache lines over committed transactions.
    pub fn mean_read_set_lines(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.sum_read_set_lines as f64 / self.committed as f64
        }
    }

    /// L1 hit rate in [0, 1].
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            0.0
        } else {
            self.l1_hits as f64 / total as f64
        }
    }

    /// Total bytes moved over the memory bus (log + data write-back + fills).
    pub fn total_memory_bytes(&self) -> u64 {
        self.log_bytes_written + self.data_bytes_written + self.nvm_line_reads * 64
    }

    /// Merges another run's statistics into this one (used when aggregating
    /// per-core statistics).
    pub fn merge(&mut self, other: &RunStats) {
        self.committed += other.committed;
        self.steps += other.steps;
        for (k, v) in &other.aborts {
            *self.aborts.entry(*k).or_insert(0) += v;
        }
        self.total_cycles = self.total_cycles.max(other.total_cycles);
        self.loads += other.loads;
        self.stores += other.stores;
        self.log_records_written += other.log_records_written;
        self.log_bytes_written += other.log_bytes_written;
        self.data_bytes_written += other.data_bytes_written;
        self.nvm_line_reads += other.nvm_line_reads;
        self.l1_hits += other.l1_hits;
        self.l1_misses += other.l1_misses;
        self.llc_hits += other.llc_hits;
        self.llc_misses += other.llc_misses;
        self.write_set_overflows += other.write_set_overflows;
        self.lock_wait_cycles += other.lock_wait_cycles;
        self.commit_stall_cycles += other.commit_stall_cycles;
        self.total_stall_cycles += other.total_stall_cycles;
        self.fallback_commits += other.fallback_commits;
        self.sum_write_set_lines += other.sum_write_set_lines;
        self.sum_read_set_lines += other.sum_read_set_lines;
        self.recovery.merge(&other.recovery);
    }

    /// Merges a batch of per-core (or per-shard) statistics records into one
    /// aggregate — the batched-collection path used by the simulation driver
    /// and the experiment harness.
    pub fn merge_many<'a, I>(parts: I) -> RunStats
    where
        I: IntoIterator<Item = &'a RunStats>,
    {
        let mut total = RunStats::new();
        for part in parts {
            total.merge(part);
        }
        total
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "committed:          {}", self.committed)?;
        writeln!(f, "aborts:             {}", self.total_aborts())?;
        writeln!(f, "abort rate:         {:.1}%", self.abort_rate_percent())?;
        writeln!(f, "cycles:             {}", self.total_cycles)?;
        writeln!(
            f,
            "throughput:         {:.3} tx/Mcycle",
            self.throughput_per_mcycle()
        )?;
        writeln!(f, "log records:        {}", self.log_records_written)?;
        writeln!(f, "log bytes:          {}", self.log_bytes_written)?;
        writeln!(f, "data wb bytes:      {}", self.data_bytes_written)?;
        writeln!(
            f,
            "mean write set:     {:.1} lines",
            self.mean_write_set_lines()
        )?;
        write!(f, "L1 hit rate:        {:.1}%", 100.0 * self.l1_hit_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abort_reason_index_matches_position_in_all() {
        for (i, r) in AbortReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i, "{r:?}");
        }
    }

    #[test]
    fn abort_rate_computation() {
        let mut s = RunStats::new();
        s.committed = 63;
        for _ in 0..37 {
            s.record_abort(AbortReason::Conflict);
        }
        assert!((s.abort_rate_percent() - 37.0).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_with_no_attempts_is_zero() {
        assert_eq!(RunStats::new().abort_rate_percent(), 0.0);
    }

    #[test]
    fn throughput_computation() {
        let mut s = RunStats::new();
        s.committed = 500;
        s.total_cycles = 1_000_000;
        assert!((s.throughput_per_mcycle() - 500.0).abs() < 1e-9);
        s.total_cycles = 0;
        assert_eq!(s.throughput_per_mcycle(), 0.0);
    }

    #[test]
    fn degenerate_runs_never_produce_nan_or_inf() {
        // Regression: a crashed/empty cell (zero cycles, zero commits, or
        // both) must report finite zeroes through every derived metric.
        let degenerate = [
            RunStats::new(), // all-zero
            {
                let mut s = RunStats::new();
                s.committed = 5; // commits but no cycles (impossible run)
                s
            },
            {
                let mut s = RunStats::new();
                s.total_cycles = 1_000; // cycles but nothing committed
                s
            },
        ];
        for s in &degenerate {
            for v in [
                s.throughput_per_mcycle(),
                s.abort_rate_percent(),
                s.mean_write_set_lines(),
                s.mean_read_set_lines(),
                s.l1_hit_rate(),
            ] {
                assert!(v.is_finite(), "non-finite metric from {s:?}");
            }
        }
        let mut zero_commit = RunStats::new();
        zero_commit.total_cycles = 1_000;
        assert_eq!(zero_commit.throughput_per_mcycle(), 0.0);
    }

    #[test]
    fn mean_set_sizes() {
        let mut s = RunStats::new();
        s.committed = 4;
        s.sum_write_set_lines = 232; // 58 lines average, like the hash workload
        s.sum_read_set_lines = 400;
        assert!((s.mean_write_set_lines() - 58.0).abs() < 1e-9);
        assert!((s.mean_read_set_lines() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates_and_takes_max_cycles() {
        let mut a = RunStats::new();
        a.committed = 10;
        a.total_cycles = 100;
        a.record_abort(AbortReason::Conflict);
        let mut b = RunStats::new();
        b.committed = 5;
        b.total_cycles = 250;
        b.record_abort(AbortReason::Capacity);
        b.record_abort(AbortReason::Conflict);
        a.merge(&b);
        assert_eq!(a.committed, 15);
        assert_eq!(a.total_cycles, 250);
        assert_eq!(a.total_aborts(), 3);
        assert_eq!(a.aborts[&AbortReason::Conflict], 2);
    }

    #[test]
    fn merge_accumulates_recovery_counters() {
        let mut a = RunStats::new();
        a.recovery.crash_points = 3;
        a.recovery.replayed_transactions = 1;
        let mut b = RunStats::new();
        b.recovery.crash_points = 5;
        b.recovery.oracle_failures = 1;
        b.recovery.sentinel_edges = 2;
        a.merge(&b);
        assert_eq!(a.recovery.crash_points, 8);
        assert_eq!(a.recovery.oracle_failures, 1);
        assert_eq!(a.recovery.replayed_transactions, 1);
        assert_eq!(a.recovery.sentinel_edges, 2);
    }

    #[test]
    fn merge_accumulates_stall_breakdown() {
        let mut a = RunStats::new();
        a.lock_wait_cycles = 10;
        a.commit_stall_cycles = 4;
        a.total_stall_cycles = 14;
        let mut b = RunStats::new();
        b.lock_wait_cycles = 1;
        b.commit_stall_cycles = 2;
        b.total_stall_cycles = 3;
        a.merge(&b);
        assert_eq!(a.lock_wait_cycles, 11);
        assert_eq!(a.commit_stall_cycles, 6);
        assert_eq!(a.total_stall_cycles, 17);
    }

    #[test]
    fn merge_many_folds_per_core_records() {
        let parts: Vec<RunStats> = (1..=4u64)
            .map(|i| {
                let mut s = RunStats::new();
                s.committed = i;
                s.total_cycles = i * 100;
                s.record_abort(AbortReason::Conflict);
                s
            })
            .collect();
        let total = RunStats::merge_many(&parts);
        assert_eq!(total.committed, 10);
        assert_eq!(total.total_cycles, 400);
        assert_eq!(total.total_aborts(), 4);
        assert_eq!(
            RunStats::merge_many(std::iter::empty::<&RunStats>()),
            RunStats::new()
        );
    }

    #[test]
    fn display_contains_key_metrics() {
        let mut s = RunStats::new();
        s.committed = 1;
        s.total_cycles = 10;
        let out = format!("{s}");
        assert!(out.contains("committed"));
        assert!(out.contains("throughput"));
    }

    #[test]
    fn l1_hit_rate_bounds() {
        let mut s = RunStats::new();
        assert_eq!(s.l1_hit_rate(), 0.0);
        s.l1_hits = 3;
        s.l1_misses = 1;
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn total_memory_bytes_accounts_all_traffic() {
        let mut s = RunStats::new();
        s.log_bytes_written = 100;
        s.data_bytes_written = 200;
        s.nvm_line_reads = 2;
        assert_eq!(s.total_memory_bytes(), 100 + 200 + 128);
    }

    #[test]
    fn abort_reason_display_all_unique() {
        let mut labels: Vec<String> = AbortReason::ALL.iter().map(|r| r.to_string()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), AbortReason::ALL.len());
    }
}
