//! Conflict-resolution policies and the catalogue of evaluated designs.

use std::fmt;

/// HTM conflict resolution policy (Section II-A of the paper).
///
/// When a coherence request from a transactional core reaches a line in
/// another core's read or write set, one of the two transactions must abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictPolicy {
    /// The requesting transaction wins and the current holder aborts
    /// (Intel RTM behaviour).
    RequesterWins,
    /// The transaction that first wrote the line wins and the requester
    /// aborts (IBM POWER8 behaviour; the paper's default).
    FirstWriterWins,
}

impl ConflictPolicy {
    /// Decides which side aborts for a conflict where the *holder* has the
    /// line in its write set.
    ///
    /// Returns `true` if the **requester** must abort, `false` if the
    /// **holder** must abort.
    pub fn requester_aborts_on_write_conflict(self) -> bool {
        match self {
            ConflictPolicy::RequesterWins => false,
            ConflictPolicy::FirstWriterWins => true,
        }
    }

    /// Decides which side aborts for a conflict where the holder only has the
    /// line in its read set and the requester wants to write it.
    ///
    /// Returns `true` if the requester must abort. Under both policies the
    /// writer (requester) wins a read-write conflict: under requester-wins by
    /// definition, and under first-writer-wins because the requester is the
    /// first *writer* of the line.
    pub fn requester_aborts_on_read_conflict(self) -> bool {
        false
    }
}

impl fmt::Display for ConflictPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictPolicy::RequesterWins => write!(f, "requester-wins"),
            ConflictPolicy::FirstWriterWins => write!(f, "first-writer-wins"),
        }
    }
}

impl std::str::FromStr for ConflictPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "requester-wins" => Ok(ConflictPolicy::RequesterWins),
            "first-writer-wins" => Ok(ConflictPolicy::FirstWriterWins),
            other => Err(format!(
                "unknown conflict policy '{other}' (requester-wins|first-writer-wins)"
            )),
        }
    }
}

/// The designs evaluated in Section V of the paper (plus the volatile NP
/// upper bound of Section VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// Software only: locks for visibility, Mnemosyne-style software redo
    /// logging for durability. The normalisation baseline of every figure.
    SoftwareOnly,
    /// PHyTM-like: RTM HTM for visibility, software logging for durability
    /// (log writes inflate the HTM write set).
    SdTm,
    /// ATOM: locks for visibility, hardware undo logging for durability.
    Atom,
    /// LogTM-style HTM for visibility integrated with ATOM hardware undo
    /// logging for durability (novel combination studied by the paper).
    LogTmAtom,
    /// The paper's proposal: RTM-like HTM plus hardware redo logging and
    /// L1→LLC write-set overflow.
    Dhtm,
    /// Non-persistent volatile HTM (no durability), the upper bound of
    /// Section VI-D.
    NonPersistent,
}

impl DesignKind {
    /// All designs, in the order the paper's figures present them.
    pub const ALL: [DesignKind; 6] = [
        DesignKind::SoftwareOnly,
        DesignKind::SdTm,
        DesignKind::Atom,
        DesignKind::LogTmAtom,
        DesignKind::Dhtm,
        DesignKind::NonPersistent,
    ];

    /// Short label used in experiment output (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::SoftwareOnly => "SO",
            DesignKind::SdTm => "sdTM",
            DesignKind::Atom => "ATOM",
            DesignKind::LogTmAtom => "LogTM-ATOM",
            DesignKind::Dhtm => "DHTM",
            DesignKind::NonPersistent => "NP",
        }
    }

    /// Whether the design provides atomic durability (all except NP).
    pub fn is_durable(self) -> bool {
        !matches!(self, DesignKind::NonPersistent)
    }

    /// Whether the design uses an HTM for atomic visibility.
    pub fn uses_htm(self) -> bool {
        matches!(
            self,
            DesignKind::SdTm | DesignKind::LogTmAtom | DesignKind::Dhtm | DesignKind::NonPersistent
        )
    }

    /// Whether durability is provided by hardware logging.
    pub fn hardware_durability(self) -> bool {
        matches!(
            self,
            DesignKind::Atom | DesignKind::LogTmAtom | DesignKind::Dhtm
        )
    }

    /// The canonical lowercase engine id of the design — the name it is
    /// registered under in the engine registry and the spelling scenario
    /// spec files use.
    pub fn id(self) -> &'static str {
        match self {
            DesignKind::SoftwareOnly => "so",
            DesignKind::SdTm => "sdtm",
            DesignKind::Atom => "atom",
            DesignKind::LogTmAtom => "logtm-atom",
            DesignKind::Dhtm => "dhtm",
            DesignKind::NonPersistent => "np",
        }
    }
}

impl fmt::Display for DesignKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for DesignKind {
    type Err = String;

    /// Parses either the canonical engine id ("dhtm") or the paper label
    /// ("DHTM").
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DesignKind::ALL
            .into_iter()
            .find(|d| d.id() == s || d.label() == s)
            .ok_or_else(|| format!("unknown design '{s}'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_decisions_match_paper_descriptions() {
        // RTM requester-wins: the holder of the written line aborts.
        assert!(!ConflictPolicy::RequesterWins.requester_aborts_on_write_conflict());
        // POWER8 first-writer-wins: the requester aborts on a write conflict.
        assert!(ConflictPolicy::FirstWriterWins.requester_aborts_on_write_conflict());
        // A writer requesting a line that is only in a reader's read set wins
        // under both policies.
        assert!(!ConflictPolicy::RequesterWins.requester_aborts_on_read_conflict());
        assert!(!ConflictPolicy::FirstWriterWins.requester_aborts_on_read_conflict());
    }

    #[test]
    fn design_classification_matches_table_i() {
        use DesignKind::*;
        assert!(!SoftwareOnly.uses_htm());
        assert!(!Atom.uses_htm());
        assert!(SdTm.uses_htm());
        assert!(LogTmAtom.uses_htm());
        assert!(Dhtm.uses_htm());
        assert!(NonPersistent.uses_htm());

        assert!(!SoftwareOnly.hardware_durability());
        assert!(!SdTm.hardware_durability());
        assert!(Atom.hardware_durability());
        assert!(LogTmAtom.hardware_durability());
        assert!(Dhtm.hardware_durability());

        assert!(SoftwareOnly.is_durable());
        assert!(!NonPersistent.is_durable());
    }

    #[test]
    fn labels_are_unique_and_nonempty() {
        let labels: Vec<_> = DesignKind::ALL.iter().map(|d| d.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert!(labels.iter().all(|l| !l.is_empty()));
    }

    #[test]
    fn display_matches_label() {
        for d in DesignKind::ALL {
            assert_eq!(format!("{d}"), d.label());
        }
    }

    #[test]
    fn ids_parse_back_to_the_design() {
        for d in DesignKind::ALL {
            assert_eq!(d.id().parse::<DesignKind>().unwrap(), d);
            assert_eq!(d.label().parse::<DesignKind>().unwrap(), d);
        }
        assert!("phytm".parse::<DesignKind>().is_err());
    }

    #[test]
    fn conflict_policy_parses_its_display_form() {
        for p in [
            ConflictPolicy::RequesterWins,
            ConflictPolicy::FirstWriterWins,
        ] {
            assert_eq!(format!("{p}").parse::<ConflictPolicy>().unwrap(), p);
        }
        assert!("coin-flip".parse::<ConflictPolicy>().is_err());
    }
}
