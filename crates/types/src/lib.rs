#![forbid(unsafe_code)]
//! # dhtm-types
//!
//! Foundational types shared by every crate in the DHTM reproduction
//! workspace: byte/cache-line/word addressing, core and transaction
//! identifiers, the system configuration corresponding to Table III of the
//! paper, statistics containers and the common error type.
//!
//! The DHTM paper ("DHTM: Durable Hardware Transactional Memory", ISCA 2018)
//! models a multicore with private L1 caches, a shared LLC holding the
//! coherence directory and byte-addressable non-volatile main memory. All of
//! the geometric and timing parameters of that system live in
//! [`config::SystemConfig`], and all address arithmetic is funnelled through
//! the newtypes in [`addr`] so that a byte address can never be confused with
//! a cache-line address.
//!
//! ## Example
//!
//! ```
//! use dhtm_types::addr::{Address, LineAddr};
//! use dhtm_types::config::SystemConfig;
//!
//! let cfg = SystemConfig::isca18_baseline();
//! assert_eq!(cfg.num_cores, 8);
//!
//! let a = Address::new(0x1234);
//! let line: LineAddr = a.line();
//! assert_eq!(line.base().raw(), 0x1200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod config;
pub mod error;
pub mod ids;
pub mod policy;
pub mod seed;
pub mod stats;

pub use addr::{Address, LineAddr, WordIndex, LINE_SIZE, WORDS_PER_LINE, WORD_SIZE};
pub use config::{CacheGeometry, LatencyConfig, SystemConfig};
pub use error::{DhtmError, Result};
pub use ids::{CoreId, ThreadId, TxId};
pub use policy::{ConflictPolicy, DesignKind};
pub use stats::{RunStats, TxStats};
