//! Identifier newtypes for cores, hardware threads and transactions.

use std::fmt;

/// Identifier of a core in the simulated multicore (0..`num_cores`).
///
/// The paper evaluates an 8-core machine with one thread per core, so the
/// core id doubles as the thread id in most of the workspace; the distinct
/// [`ThreadId`] type exists for the OS-level log bookkeeping (the per-thread
/// transaction log space is allocated by the OS when the thread is spawned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(usize);

impl CoreId {
    /// Creates a core id.
    pub const fn new(id: usize) -> Self {
        CoreId(id)
    }

    /// Returns the numeric id.
    pub const fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(id: usize) -> Self {
        CoreId(id)
    }
}

/// Identifier of a software thread (owner of a per-thread transaction log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Creates a thread id.
    pub const fn new(id: usize) -> Self {
        ThreadId(id)
    }

    /// Returns the numeric id.
    pub const fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

impl From<CoreId> for ThreadId {
    fn from(c: CoreId) -> Self {
        ThreadId(c.get())
    }
}

/// Globally unique transaction identifier.
///
/// Transaction ids are monotonically increasing per run; they identify log
/// records in the persistent transaction log and are used by the recovery
/// manager and by the sentinel dependency entries of Section III-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TxId(u64);

impl TxId {
    /// Creates a transaction id.
    pub const fn new(id: u64) -> Self {
        TxId(id)
    }

    /// Returns the numeric id.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx{}", self.0)
    }
}

/// Monotonic allocator of [`TxId`]s.
#[derive(Debug, Default, Clone)]
pub struct TxIdAllocator {
    next: u64,
}

impl TxIdAllocator {
    /// Creates an allocator starting at id 1 (0 is reserved as "no tx").
    pub fn new() -> Self {
        TxIdAllocator { next: 1 }
    }

    /// Returns a fresh transaction id.
    pub fn allocate(&mut self) -> TxId {
        let id = TxId::new(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_and_thread_ids_roundtrip() {
        let c = CoreId::new(3);
        assert_eq!(c.get(), 3);
        let t: ThreadId = c.into();
        assert_eq!(t.get(), 3);
        assert_eq!(format!("{c}"), "core3");
        assert_eq!(format!("{t}"), "thread3");
    }

    #[test]
    fn txid_allocator_is_monotonic_and_starts_at_one() {
        let mut alloc = TxIdAllocator::new();
        let a = alloc.allocate();
        let b = alloc.allocate();
        let c = alloc.allocate();
        assert_eq!(a, TxId::new(1));
        assert!(b > a && c > b);
        assert_eq!(alloc.allocated(), 3);
    }

    #[test]
    fn default_allocator_allocates_from_zero_base() {
        // Default is all-zero; ensure it still hands out increasing ids.
        let mut alloc = TxIdAllocator::default();
        let a = alloc.allocate();
        let b = alloc.allocate();
        assert!(b > a);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(TxId::new(10) > TxId::new(9));
    }
}
