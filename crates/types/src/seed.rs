//! Deterministic experiment seeding shared by the experiment harness and
//! the crash-injection subsystem.

/// Deterministic per-cell seed: a content hash of the cell's workload-facing
/// coordinates. The engine is deliberately *not* mixed in — every design in
/// a (workload, cores) group must see the same transaction stream for
/// normalised comparisons to be apples-to-apples — and neither is the
/// config: a config sweep must replay the *same* stream at every point so
/// the curve isolates the config effect. The cell index and worker id are
/// also excluded, so seeds are stable under matrix reordering and any
/// worker-pool size.
pub fn stable_cell_seed(base: u64, workload: &str, cores: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    mix(&base.to_le_bytes());
    mix(workload.as_bytes());
    mix(&(cores as u64).to_le_bytes());
    finalise(h)
}

/// Stable 64-bit content hash of an arbitrary byte string: FNV-1a with the
/// same splitmix64 finaliser as [`stable_cell_seed`]. Used for scenario-spec
/// identity (`SimSpec::content_hash`) so spec hashes are reproducible across
/// runs, platforms and compiler versions (unlike `std`'s `DefaultHasher`,
/// which documents no such stability).
pub fn content_hash64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    finalise(h)
}

/// Canonical text form of a 64-bit content hash: zero-padded 16-character
/// lowercase hex. Every place a spec hash is printed, sent over the wire or
/// used as a filename uses this one formatter, so hashes grep/sort/compare
/// as fixed-width strings (`1f3a…` never collides with `01f3a…` the way
/// bare `{:x}` output can).
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses the [`hash_hex`] form back to the 64-bit hash. Strict: exactly 16
/// lowercase hex digits, no prefix, no whitespace.
pub fn parse_hash_hex(s: &str) -> Option<u64> {
    if s.len() != 16
        || !s
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// splitmix64 finaliser spreading the FNV state over all 64 bits.
fn finalise(h: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_depends_on_every_coordinate() {
        assert_ne!(
            stable_cell_seed(1, "hash", 4),
            stable_cell_seed(2, "hash", 4)
        );
        assert_ne!(
            stable_cell_seed(1, "hash", 4),
            stable_cell_seed(1, "queue", 4)
        );
        assert_ne!(
            stable_cell_seed(1, "hash", 4),
            stable_cell_seed(1, "hash", 8)
        );
        assert_eq!(
            stable_cell_seed(1, "hash", 4),
            stable_cell_seed(1, "hash", 4)
        );
    }

    #[test]
    fn hash_hex_is_fixed_width_lowercase_and_round_trips() {
        assert_eq!(hash_hex(0), "0000000000000000");
        assert_eq!(hash_hex(0x1f3a), "0000000000001f3a");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
        for h in [0u64, 1, 0xDEAD_BEEF, u64::MAX, content_hash64(b"spec")] {
            let hex = hash_hex(h);
            assert_eq!(hex.len(), 16);
            assert_eq!(parse_hash_hex(&hex), Some(h));
        }
        // Strictness: width, case, prefixes and whitespace all rejected.
        assert_eq!(parse_hash_hex("1f3a"), None);
        assert_eq!(parse_hash_hex("0000000000001F3A"), None);
        assert_eq!(parse_hash_hex("0x00000000000000"), None);
        assert_eq!(parse_hash_hex(" 0000000000001f3a"), None);
        assert_eq!(parse_hash_hex("00000000000000000"), None);
    }

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        // Pinned: spec identity must not drift across toolchains.
        assert_eq!(content_hash64(b""), content_hash64(b""));
        assert_ne!(
            content_hash64(b"engine = \"so\""),
            content_hash64(b"engine = \"dhtm\"")
        );
        assert_ne!(content_hash64(b"a"), content_hash64(b"b"));
    }
}
