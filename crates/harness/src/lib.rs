#![forbid(unsafe_code)]
//! # dhtm-harness
//!
//! The declarative experiment-matrix runner behind every figure/table
//! reproduction binary and scaling study in this repository.
//!
//! An experiment is a [`matrix::Matrix`]: the cross product of
//!
//! * **engines** — [`dhtm_baselines::registry::EngineId`]s resolved
//!   through the engine registry: the paper's designs, the built-in DHTM
//!   variants ("dhtm-instant", ...) and any out-of-tree engine registered
//!   via `dhtm_baselines::registry::register_global`,
//! * **workloads** — the six micro-benchmarks, TATP and TPC-C, by name,
//! * **core counts** — 1..16 cores (the paper evaluates 8),
//! * **configs** — named [`SystemConfig`] variants (Table III baseline,
//!   the small test machine, log-buffer and bandwidth sweeps, ...).
//!
//! Every cell carries a complete, serializable
//! [`dhtm_scenario::SimSpec`]; [`runner::run_matrix`] expands the matrix
//! into cells, shards the independent spec runs across an `std::thread`
//! worker pool (`--jobs N`) and collects one [`runner::Row`] per cell in
//! deterministic matrix order. Every cell is seeded from a content hash of its workload /
//! core-count coordinates — *not* from the engine or config, so all designs
//! and config-sweep points in a group execute the same transaction stream,
//! and *not* from the worker that happens to run it, so results are
//! bit-identical for any worker count (enforced by the
//! `parallel_equivalence` property test).
//!
//! [`report`] renders collected rows as JSON, CSV or the normalised-to-SO
//! tables the paper reports; [`experiments`] holds the definition of each
//! figure/table plus a beyond-the-paper core-count scaling sweep; the
//! `dhtm_experiments` binary runs any or all of them from one CLI.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cli;
pub mod experiments;
pub mod matrix;
pub mod report;
pub mod runner;

use dhtm_scenario::{ResolvedSpec, SpecLimits};
use dhtm_sim::driver::SimulationResult;
use dhtm_sim::workload::Workload;
use dhtm_types::config::{BaseConfig, SystemConfig};
use dhtm_types::policy::DesignKind;
pub use dhtm_workloads::WorkloadError;

/// Seed used by all experiments (results are deterministic given the seed).
pub const EXPERIMENT_SEED: u64 = dhtm_scenario::DEFAULT_SEED;

/// True when the `DHTM_BENCH_QUICK` environment variable is set (to anything
/// but `0`): experiments then run on [`SystemConfig::small_test`] with
/// sharply reduced commit targets so that every figure/table binary finishes
/// in seconds. The bin smoke tests and the CI harness job use this; real
/// reproductions must leave it unset.
pub fn quick_mode() -> bool {
    std::env::var_os("DHTM_BENCH_QUICK").is_some_and(|v| v != "0")
}

/// The named base configuration every experiment builds on: the paper's
/// Table III machine, or the small test machine in [`quick_mode`]. Cells
/// carry this name (plus a sparse overlay) in their specs, which is what
/// keeps every catalogue cell serializable.
pub fn default_base() -> BaseConfig {
    if quick_mode() {
        BaseConfig::Small
    } else {
        BaseConfig::Isca18
    }
}

/// The machine configuration every experiment binary should simulate: the
/// resolved form of [`default_base`].
pub fn experiment_config() -> SystemConfig {
    default_base().resolve()
}

/// The six micro-benchmark names in the paper's order.
pub const MICRO_NAMES: [&str; 6] = ["queue", "hash", "sdg", "sps", "btree", "rbtree"];

/// All eight workload names: the six micro-benchmarks plus TATP and TPC-C.
pub const ALL_WORKLOADS: [&str; 8] = [
    "queue", "hash", "sdg", "sps", "btree", "rbtree", "tatp", "tpcc",
];

/// Builds a workload by name ("queue".."rbtree", "tatp", "tpcc").
///
/// Unknown names — a typo in a CLI flag or an ad-hoc spec — used to abort
/// the whole matrix with a panic; they now come back as a
/// [`WorkloadError`] whose message lists [`ALL_WORKLOADS`], mirroring what
/// `RegistryError::UnknownEngine` does for engine ids.
///
/// # Errors
///
/// Returns [`WorkloadError::Unknown`] if the name is not one of
/// [`ALL_WORKLOADS`].
pub fn workload_by_name(name: &str, seed: u64) -> Result<Box<dyn Workload>, WorkloadError> {
    dhtm_workloads::try_by_name(name, seed)
}

/// Commit targets appropriate for each workload class (OLTP transactions are
/// an order of magnitude larger than the micro-benchmark batches). In
/// [`quick_mode`] the targets shrink ~20x so the smoke tests stay fast.
pub fn default_commits_for(workload: &str) -> u64 {
    let base: u64 = match workload {
        "tpcc" => 64,
        "tatp" => 160,
        _ => 400,
    };
    if quick_mode() {
        (base / 20).max(3)
    } else {
        base
    }
}

/// Runs one (design, workload) pair on a fresh machine and returns the
/// simulation result. Compatibility entry point predating the matrix
/// runner; new code should build a [`matrix::Matrix`] (or a
/// [`dhtm_scenario::SimSpec`]) instead. The historical behaviour — the raw
/// [`EXPERIMENT_SEED`] as the workload seed, no per-cell derivation — is
/// preserved.
pub fn run_pair(
    design: DesignKind,
    workload_name: &str,
    cfg: &SystemConfig,
    commits: u64,
) -> SimulationResult {
    ResolvedSpec::from_parts(
        &design.into(),
        workload_name,
        cfg.clone(),
        SpecLimits {
            target_commits: commits,
            ..SpecLimits::default()
        },
        EXPERIMENT_SEED,
    )
    .run()
}

/// Runs `designs` on `workload_name` and returns `(design, result)` pairs.
pub fn run_designs(
    designs: &[DesignKind],
    workload_name: &str,
    cfg: &SystemConfig,
) -> Vec<(DesignKind, SimulationResult)> {
    let commits = default_commits_for(workload_name);
    designs
        .iter()
        .map(|&d| (d, run_pair(d, workload_name, cfg, commits)))
        .collect()
}

/// Throughput of `design` normalised to the SO result in the same set.
pub fn normalised_throughput(
    results: &[(DesignKind, SimulationResult)],
    design: DesignKind,
) -> f64 {
    let so = results
        .iter()
        .find(|(d, _)| *d == DesignKind::SoftwareOnly)
        .map(|(_, r)| r.throughput())
        .unwrap_or(1.0);
    let target = results
        .iter()
        .find(|(d, _)| *d == design)
        .map(|(_, r)| r.throughput())
        .unwrap_or(0.0);
    if so > 0.0 {
        target / so
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_resolve_by_name() {
        for name in ALL_WORKLOADS {
            assert_eq!(workload_by_name(name, 1).unwrap().name(), name);
        }
    }

    #[test]
    fn unknown_workload_is_an_error_listing_the_catalogue() {
        let Err(err) = workload_by_name("quene", 1) else {
            panic!("'quene' must not resolve");
        };
        let msg = err.to_string();
        assert!(msg.contains("'quene'"), "{msg}");
        for name in ALL_WORKLOADS {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn quick_pair_run_produces_commits() {
        let cfg = SystemConfig::small_test();
        let res = run_pair(DesignKind::Dhtm, "hash", &cfg, 20);
        assert_eq!(res.stats.committed, 20);
        assert!(res.throughput() > 0.0);
    }

    #[test]
    fn normalisation_is_relative_to_so() {
        let cfg = SystemConfig::small_test();
        let results = vec![
            (
                DesignKind::SoftwareOnly,
                run_pair(DesignKind::SoftwareOnly, "hash", &cfg, 10),
            ),
            (
                DesignKind::Dhtm,
                run_pair(DesignKind::Dhtm, "hash", &cfg, 10),
            ),
        ];
        let so_norm = normalised_throughput(&results, DesignKind::SoftwareOnly);
        assert!((so_norm - 1.0).abs() < 1e-9);
        assert!(normalised_throughput(&results, DesignKind::Dhtm) > 0.0);
    }
}
