//! The catalogue of experiments: every figure/table of the paper's
//! evaluation (Section VI) plus a beyond-the-paper scaling sweep, each
//! defined as a declarative [`Matrix`] and a table renderer over the
//! collected rows. The per-binary design×workload loops that used to live
//! in `crates/bench/src/bin/*` all collapsed into this module.

use std::io::Write as _;

use dhtm::hw_overhead::{hardware_overhead, total_overhead_bytes};
use dhtm_baselines::registry::{self, EngineId};
use dhtm_scenario::SimSpec;
use dhtm_types::config::{ConfigOverlay, SystemConfig};
use dhtm_types::policy::DesignKind;

use crate::cli::HarnessOpts;
use crate::matrix::{CommitSpec, ConfigVariant, Matrix};
use crate::report::{
    geometric_mean, row_line, rows_to_csv, rows_to_json, so_normalised, OutputFormat,
};
use crate::runner::{run_matrix, run_matrix_traced, Row};
use crate::{default_base, quick_mode, MICRO_NAMES};

/// The rendered outcome of one experiment: human-readable table lines plus
/// the raw rows for JSON/CSV export.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// The experiment's registry name.
    pub name: &'static str,
    /// Rendered table lines (printed to stdout by the binaries).
    pub lines: Vec<String>,
    /// The collected simulation rows (empty for pure-arithmetic tables).
    pub rows: Vec<Row>,
}

/// One registered experiment.
#[derive(Debug, Clone, Copy)]
pub struct Experiment {
    /// Registry name ("fig5", "table5", ..., "scaling").
    pub name: &'static str,
    /// One-line description shown by the suite runner.
    pub title: &'static str,
    run: fn(&HarnessOpts) -> ExperimentResult,
}

impl Experiment {
    /// Runs the experiment with the given options.
    pub fn run(&self, opts: &HarnessOpts) -> ExperimentResult {
        (self.run)(opts)
    }
}

/// All experiments, in the order the paper presents them; `scaling` extends
/// the evaluation beyond the paper's points.
pub const ALL: &[Experiment] = &[
    Experiment {
        name: "fig5",
        title: "Figure 5: micro-benchmark throughput normalised to SO",
        run: fig5,
    },
    Experiment {
        name: "table5",
        title: "Table V: abort rates of sdTM and DHTM",
        run: table5,
    },
    Experiment {
        name: "fig6",
        title: "Figure 6: sensitivity to the log-buffer size (hash)",
        run: fig6,
    },
    Experiment {
        name: "table6",
        title: "Table VI: TATP and TPC-C throughput normalised to SO",
        run: table6,
    },
    Experiment {
        name: "table7",
        title: "Table VII: NP and DHTM vs SO under bandwidth scaling (hash)",
        run: table7,
    },
    Experiment {
        name: "ablation",
        title: "Section VI-D: instant-write ablation and the NP upper bound",
        run: ablation,
    },
    Experiment {
        name: "table4",
        title: "Table IV: workload write-set sizes",
        run: table4,
    },
    Experiment {
        name: "table2",
        title: "Table II: hardware overhead",
        run: table2,
    },
    Experiment {
        name: "scaling",
        title: "Beyond the paper: core-count scaling on small/default/large machines",
        run: scaling,
    },
    Experiment {
        name: "recovery",
        title: "Crash matrix: injected crashes + recovery-oracle validation for every design",
        run: recovery,
    },
];

/// Looks up an experiment by registry name.
pub fn by_name(name: &str) -> Option<&'static Experiment> {
    ALL.iter().find(|e| e.name == name)
}

/// The declarative matrix behind every simulation-backed catalogue
/// experiment (everything except the arithmetic-only `table2` and the
/// crash-matrix `recovery`). This is the surface the golden spec-hash test
/// pins: each cell's spec, seed and content hash are reproducible from
/// here without running anything.
pub fn catalogue_matrices() -> Vec<(&'static str, Matrix)> {
    vec![
        ("fig5", fig5_matrix()),
        ("table5", table5_matrix()),
        ("fig6", fig6_matrix()),
        ("table6", table6_matrix()),
        ("table7", table7_matrix()),
        ("ablation", ablation_matrix()),
        ("table4", table4_matrix()),
        ("scaling", scaling_matrix()),
    ]
}

/// Runs spec files (`--spec PATH...`) as one ad-hoc experiment: each file
/// is loaded, validated against the engine registry and executed; rows are
/// labelled `spec:<file-stem>` so mixed dumps stay attributable.
///
/// Files that resolve to the same spec content hash are deduplicated:
/// each distinct spec executes once and the duplicates reuse its result
/// (their rows are identical apart from the label), with a summary line
/// reporting how many executions were saved.
///
/// # Errors
///
/// Returns the first load/validation error, naming the file.
pub fn run_specs(paths: &[std::path::PathBuf]) -> Result<ExperimentResult, String> {
    let mut lines = vec!["# Spec runs".to_string()];
    let mut rows = Vec::new();
    let mut by_hash: std::collections::HashMap<u64, dhtm_types::stats::RunStats> =
        std::collections::HashMap::new();
    let mut executed = 0u64;
    for path in paths {
        let spec = SimSpec::load(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let hash = spec.content_hash();
        let stats = match by_hash.get(&hash) {
            Some(stats) => stats.clone(),
            None => {
                let result = spec.run().map_err(|e| format!("{}: {e}", path.display()))?;
                executed += 1;
                by_hash.insert(hash, result.stats.clone());
                result.stats
            }
        };
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("spec")
            .to_string();
        let row = Row {
            experiment: format!("spec:{stem}"),
            engine: registry::label_of(&spec.engine),
            workload: spec.workload.clone(),
            cores: spec.config().num_cores,
            config: spec.base.to_string(),
            seed: spec.derived_seed(),
            target_commits: spec.limits.target_commits,
            stats,
            probes: Vec::new(),
        };
        lines.push(format!(
            "| {:<24} | {:<12} | {:<7} | {:>8} commits | {:>10} cycles | hash {} |",
            stem,
            row.engine,
            row.workload,
            row.stats.committed,
            row.stats.total_cycles,
            spec.content_hash_hex(),
        ));
        rows.push(row);
    }
    let deduplicated = paths.len() as u64 - executed;
    if deduplicated > 0 {
        lines.push(format!(
            "# {executed} executed, {deduplicated} duplicate spec(s) served from the first run"
        ));
    }
    Ok(ExperimentResult {
        name: "specs",
        lines,
        rows,
    })
}

/// Runs `matrix` with the CLI's worker count and tags the rows with the
/// experiment name.
///
/// When `--trace` or `--profile` is active the matrix runs through the
/// instrumented runner instead: rows carry their flattened probe registry
/// (surfacing in the JSON dump and the profile table) and each cell's
/// NDJSON trace block is appended to the trace file in matrix order.
/// Either way the simulated runs are bit-identical — observers and probes
/// cannot perturb a run.
fn run_tagged(name: &'static str, matrix: &Matrix, opts: &HarnessOpts) -> Vec<Row> {
    let mut rows = if opts.trace.is_some() || opts.profile {
        let traced = run_matrix_traced(matrix, opts.jobs, name);
        if let Some(path) = &opts.trace {
            append_trace(path, traced.iter().flat_map(|(_, lines)| lines));
        }
        traced.into_iter().map(|(row, _)| row).collect()
    } else {
        run_matrix(matrix, opts.jobs)
    };
    for row in &mut rows {
        row.experiment = name.to_string();
    }
    rows
}

/// Truncates (or creates) the `--trace` output file so a run's stream
/// starts clean. Call once per process before any experiment runs; the
/// experiment runners then append per-experiment blocks sequentially.
///
/// # Panics
///
/// Panics if the file cannot be created.
pub fn prepare_trace(opts: &HarnessOpts) {
    if let Some(path) = &opts.trace {
        std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("cannot create trace file {}: {e}", path.display()));
    }
}

fn append_trace<'a>(path: &std::path::Path, lines: impl Iterator<Item = &'a String>) {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap_or_else(|e| panic!("cannot open trace file {}: {e}", path.display()));
    for line in lines {
        writeln!(file, "{line}")
            .unwrap_or_else(|e| panic!("cannot write trace file {}: {e}", path.display()));
    }
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

const FIG5_DESIGNS: [DesignKind; 5] = [
    DesignKind::SoftwareOnly,
    DesignKind::SdTm,
    DesignKind::Atom,
    DesignKind::LogTmAtom,
    DesignKind::Dhtm,
];

fn fig5_matrix() -> Matrix {
    Matrix::new()
        .engines(FIG5_DESIGNS)
        .workloads(MICRO_NAMES)
        .config(ConfigVariant::default_machine())
}

fn fig5(opts: &HarnessOpts) -> ExperimentResult {
    let designs = FIG5_DESIGNS;
    let cores = ConfigVariant::default_machine().config().num_cores;
    let matrix = fig5_matrix();
    let rows = run_tagged("fig5", &matrix, opts);

    let machine = if quick_mode() {
        "small test config"
    } else {
        "Table III config"
    };
    let mut lines = vec![
        format!("# Figure 5: throughput normalised to SO ({cores} cores, {machine})"),
        "# Paper reference (averages): sdTM 1.20x, ATOM 1.35x, LogTM-ATOM ~1.44x, DHTM 1.61x"
            .to_string(),
    ];
    let header: Vec<String> = designs
        .iter()
        .skip(1)
        .map(|d| d.label().to_string())
        .collect();
    lines.push(row_line("workload", &header));
    let mut per_design: Vec<Vec<f64>> = vec![Vec::new(); designs.len() - 1];
    for wl in MICRO_NAMES {
        let mut values = Vec::new();
        for (i, d) in designs.iter().skip(1).enumerate() {
            let norm = so_normalised(&rows, d.label(), wl, "default", cores);
            per_design[i].push(norm);
            values.push(format!("{norm:.2}"));
        }
        lines.push(row_line(wl, &values));
    }
    let avg: Vec<String> = per_design
        .iter()
        .map(|v| format!("{:.2}", geometric_mean(v)))
        .collect();
    lines.push(row_line("Ave.", &avg));
    ExperimentResult {
        name: "fig5",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table V
// ---------------------------------------------------------------------------

fn table5_matrix() -> Matrix {
    Matrix::new()
        .engines([DesignKind::SdTm, DesignKind::Dhtm])
        .workloads(MICRO_NAMES)
        .config(ConfigVariant::default_machine())
}

fn table5(opts: &HarnessOpts) -> ExperimentResult {
    let rows = run_tagged("table5", &table5_matrix(), opts);

    let mut lines = vec![
        "# Table V: abort rates (%)".to_string(),
        "# Paper reference: sdTM avg 37%, DHTM avg 21%".to_string(),
    ];
    lines.push(row_line(
        "design",
        &MICRO_NAMES
            .iter()
            .map(|s| s.to_string())
            .chain(["Ave.".into()])
            .collect::<Vec<_>>(),
    ));
    for design in [DesignKind::SdTm, DesignKind::Dhtm] {
        let mut values = Vec::new();
        let mut sum = 0.0;
        for wl in MICRO_NAMES {
            let rate = rows
                .iter()
                .find(|r| r.engine == design.label() && r.workload == wl)
                .map(|r| r.stats.abort_rate_percent())
                .unwrap_or(0.0);
            sum += rate;
            values.push(format!("{rate:.0}"));
        }
        values.push(format!("{:.0}", sum / MICRO_NAMES.len() as f64));
        lines.push(row_line(design.label(), &values));
    }
    ExperimentResult {
        name: "table5",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

const FIG6_ENTRIES: [usize; 6] = [4, 8, 16, 32, 64, 128];

fn fig6_matrix() -> Matrix {
    let configs: Vec<ConfigVariant> = FIG6_ENTRIES
        .iter()
        .map(|&entries| {
            ConfigVariant::new(
                format!("logbuf{entries}"),
                default_base(),
                ConfigOverlay::none().with_log_buffer_entries(entries),
            )
        })
        .collect();
    Matrix::new()
        .engines([DesignKind::Dhtm])
        .workloads(["hash"])
        .configs(configs)
}

fn fig6(opts: &HarnessOpts) -> ExperimentResult {
    let rows = run_tagged("fig6", &fig6_matrix(), opts);

    let baseline = rows
        .iter()
        .find(|r| r.config == "logbuf64")
        .map(Row::throughput)
        .filter(|&t| t > 0.0)
        .unwrap_or(1.0);
    let mut lines = vec![
        "# Figure 6: normalised throughput vs log-buffer size (hash benchmark)".to_string(),
        "# Paper reference: rises with size, saturates at 64 entries, dips slightly at 128"
            .to_string(),
    ];
    lines.push(row_line(
        "entries",
        &FIG6_ENTRIES
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>(),
    ));
    let values: Vec<String> = FIG6_ENTRIES
        .iter()
        .map(|&entries| {
            let tp = rows
                .iter()
                .find(|r| r.config == format!("logbuf{entries}"))
                .map(Row::throughput)
                .unwrap_or(0.0);
            format!("{:.3}", tp / baseline)
        })
        .collect();
    lines.push(row_line("DHTM", &values));
    ExperimentResult {
        name: "fig6",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table VI
// ---------------------------------------------------------------------------

const TABLE6_DESIGNS: [DesignKind; 3] =
    [DesignKind::SoftwareOnly, DesignKind::Atom, DesignKind::Dhtm];

fn table6_matrix() -> Matrix {
    Matrix::new()
        .engines(TABLE6_DESIGNS)
        .workloads(["tpcc", "tatp"])
        .config(ConfigVariant::default_machine())
}

fn table6(opts: &HarnessOpts) -> ExperimentResult {
    let designs = TABLE6_DESIGNS;
    let cores = ConfigVariant::default_machine().config().num_cores;
    let rows = run_tagged("table6", &table6_matrix(), opts);

    let mut lines = vec![
        "# Table VI: OLTP throughput normalised to SO".to_string(),
        "# Paper reference: TPC-C  SO 1.00 / ATOM 1.67 / DHTM 1.88".to_string(),
        "#                  TATP   SO 1.00 / ATOM 1.27 / DHTM 1.53".to_string(),
    ];
    lines.push(row_line(
        "workload",
        &["SO".into(), "ATOM".into(), "DHTM".into()],
    ));
    for wl in ["tpcc", "tatp"] {
        let values: Vec<String> = designs
            .iter()
            .map(|d| {
                format!(
                    "{:.2}",
                    so_normalised(&rows, d.label(), wl, "default", cores)
                )
            })
            .collect();
        lines.push(row_line(wl, &values));
    }
    ExperimentResult {
        name: "table6",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table VII
// ---------------------------------------------------------------------------

const TABLE7_MULTS: [(f64, &str); 3] = [(1.0, "bw1x"), (2.0, "bw2x"), (10.0, "bw10x")];

fn table7_matrix() -> Matrix {
    let configs: Vec<ConfigVariant> = TABLE7_MULTS
        .iter()
        .map(|&(mult, name)| {
            ConfigVariant::new(
                name,
                default_base(),
                ConfigOverlay::none().with_bandwidth_multiplier(mult),
            )
        })
        .collect();
    Matrix::new()
        .engines([
            DesignKind::SoftwareOnly,
            DesignKind::NonPersistent,
            DesignKind::Dhtm,
        ])
        .workloads(["hash"])
        .configs(configs)
}

fn table7(opts: &HarnessOpts) -> ExperimentResult {
    let cores = crate::experiment_config().num_cores;
    let rows = run_tagged("table7", &table7_matrix(), opts);

    let mut lines = vec![
        "# Table VII: hash throughput normalised to SO under bandwidth scaling".to_string(),
        "# Paper reference: NP 2.9 / 3.0 / 3.3   DHTM 1.9 / 2.4 / 3.0  (1x / 2x / 10x)".to_string(),
    ];
    lines.push(row_line(
        "design",
        &["1x".into(), "2x".into(), "10x".into()],
    ));
    for design in [DesignKind::NonPersistent, DesignKind::Dhtm] {
        let values: Vec<String> = TABLE7_MULTS
            .iter()
            .map(|&(_, name)| {
                format!(
                    "{:.2}",
                    so_normalised(&rows, design.label(), "hash", name, cores)
                )
            })
            .collect();
        lines.push(row_line(design.label(), &values));
    }
    ExperimentResult {
        name: "table7",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Section VI-D ablation
// ---------------------------------------------------------------------------

fn ablation_matrix() -> Matrix {
    Matrix::new()
        .engines([
            EngineId::from(DesignKind::SoftwareOnly),
            EngineId::from(DesignKind::Dhtm),
            EngineId::new("dhtm-instant"),
            EngineId::from(DesignKind::NonPersistent),
        ])
        .workloads(MICRO_NAMES)
        .config(ConfigVariant::default_machine())
}

fn ablation(opts: &HarnessOpts) -> ExperimentResult {
    let rows = run_tagged("ablation", &ablation_matrix(), opts);

    let mut lines = vec![
        "# Section VI-D: instant-write ablation and the NP upper bound (normalised to SO)"
            .to_string(),
        "# Paper reference: DHTM+instant ~1.16x DHTM; NP ~1.59x DHTM".to_string(),
    ];
    lines.push(row_line(
        "workload",
        &["DHTM".into(), "DHTM-instant".into(), "NP".into()],
    ));
    let mut ratios_instant = Vec::new();
    let mut ratios_np = Vec::new();
    for wl in MICRO_NAMES {
        let tp = |engine: &str| {
            rows.iter()
                .find(|r| r.engine == engine && r.workload == wl)
                .map(Row::throughput)
                .unwrap_or(0.0)
        };
        let (so, dhtm, instant, np) = (tp("SO"), tp("DHTM"), tp("DHTM-instant"), tp("NP"));
        if dhtm > 0.0 {
            ratios_instant.push(instant / dhtm);
            ratios_np.push(np / dhtm);
        }
        let norm = |v: f64| {
            if so > 0.0 {
                format!("{:.2}", v / so)
            } else {
                "0.00".to_string()
            }
        };
        lines.push(row_line(wl, &[norm(dhtm), norm(instant), norm(np)]));
    }
    lines.push(String::new());
    lines.push(format!(
        "instant-writes speedup over DHTM (geo-mean): {:.2}x   (paper: ~1.16x)",
        geometric_mean(&ratios_instant)
    ));
    lines.push(format!(
        "NP speedup over DHTM (geo-mean):             {:.2}x   (paper: ~1.59x)",
        geometric_mean(&ratios_np)
    ));
    ExperimentResult {
        name: "ablation",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table IV
// ---------------------------------------------------------------------------

const TABLE4_PAPER: [(&str, f64); 8] = [
    ("tpcc", 590.0),
    ("tatp", 167.0),
    ("queue", 52.0),
    ("hash", 58.0),
    ("sdg", 56.0),
    ("sps", 63.0),
    ("btree", 61.0),
    ("rbtree", 53.0),
];

fn table4_matrix() -> Matrix {
    Matrix::new()
        .engines([DesignKind::Dhtm])
        .workloads(TABLE4_PAPER.iter().map(|(wl, _)| *wl))
        .config(ConfigVariant::default_machine())
        .commits(CommitSpec::CappedDefault(64))
}

fn table4(opts: &HarnessOpts) -> ExperimentResult {
    let rows = run_tagged("table4", &table4_matrix(), opts);

    let mut lines =
        vec!["# Table IV: mean write-set size per transaction (cache lines)".to_string()];
    lines.push(row_line("workload", &["measured".into(), "paper".into()]));
    for (wl, reference) in TABLE4_PAPER {
        let measured = rows
            .iter()
            .find(|r| r.workload == wl)
            .map(|r| r.stats.mean_write_set_lines())
            .unwrap_or(0.0);
        lines.push(row_line(
            wl,
            &[format!("{measured:.0}"), format!("{reference:.0}")],
        ));
    }
    ExperimentResult {
        name: "table4",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table II (pure register arithmetic, no simulation)
// ---------------------------------------------------------------------------

fn table2(_opts: &HarnessOpts) -> ExperimentResult {
    // Always report the paper's Table III machine regardless of quick mode.
    let cfg = SystemConfig::isca18_baseline();
    let mut lines = vec![format!(
        "# Table II: DHTM hardware overhead (per core, {}-entry log buffer)",
        cfg.log_buffer_entries
    )];
    lines.push(format!(
        "| {:<28} | {:<42} | bits |",
        "register", "description"
    ));
    for reg in hardware_overhead(&cfg) {
        lines.push(format!(
            "| {:<28} | {:<42} | {} |",
            reg.name, reg.description, reg.bits
        ));
    }
    lines.push(format!(
        "total: {} bytes per core",
        total_overhead_bytes(&cfg)
    ));
    ExperimentResult {
        name: "table2",
        lines,
        rows: Vec::new(),
    }
}

// ---------------------------------------------------------------------------
// Scaling sweep (beyond the paper)
// ---------------------------------------------------------------------------

fn scaling_core_counts() -> Vec<usize> {
    if quick_mode() {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    }
}

fn scaling_matrix() -> Matrix {
    Matrix::new()
        .engines([DesignKind::SoftwareOnly, DesignKind::Dhtm])
        .workloads(["hash", "btree"])
        .core_counts(scaling_core_counts())
        .configs(ConfigVariant::ladder())
}

fn scaling(opts: &HarnessOpts) -> ExperimentResult {
    let core_counts = scaling_core_counts();
    let configs = ConfigVariant::ladder();
    let rows = run_tagged("scaling", &scaling_matrix(), opts);

    let mut lines = vec![
        "# Scaling sweep: DHTM speedup over SO vs core count (beyond the paper's 8-core point)"
            .to_string(),
    ];
    lines.push(row_line(
        "config/wl",
        &core_counts
            .iter()
            .map(|c| format!("{c}c"))
            .collect::<Vec<_>>(),
    ));
    for variant in &configs {
        for wl in ["hash", "btree"] {
            let values: Vec<String> = core_counts
                .iter()
                .map(|&c| format!("{:.2}", so_normalised(&rows, "DHTM", wl, &variant.name, c)))
                .collect();
            lines.push(row_line(&format!("{}/{}", variant.name, wl), &values));
        }
    }
    ExperimentResult {
        name: "scaling",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Crash matrix (recovery-oracle validation)
// ---------------------------------------------------------------------------

fn recovery(opts: &HarnessOpts) -> ExperimentResult {
    use dhtm_crash::{negative_control, CrashMatrix};

    let workloads = ["hash", "queue"];
    let mut matrix = CrashMatrix::new(&DesignKind::ALL, workloads, crate::experiment_config());
    matrix.config_name = if quick_mode() { "small" } else { "default" }.to_string();
    matrix.commits = if quick_mode() { 12 } else { 64 };
    matrix.seed = crate::EXPERIMENT_SEED;
    matrix.stratified = opts.crash_points.unwrap_or(8);
    matrix.adversarial = matrix.stratified.div_ceil(2).max(3);
    matrix.at_cycles = opts.crash_at.clone();

    let reports = matrix.run(opts.jobs);
    let mut rows: Vec<Row> = reports
        .iter()
        .map(|r| Row {
            experiment: "recovery".to_string(),
            engine: r.cell.design.label().to_string(),
            workload: r.cell.workload.clone(),
            cores: r.cell.config.num_cores,
            config: r.cell.config_name.clone(),
            seed: r.cell.seed,
            target_commits: r.cell.commits,
            stats: r.stats.clone(),
            probes: Vec::new(),
        })
        .collect();

    // Fault-injected negative control on DHTM (the design with the richest
    // commit window): the oracles must *reject* a corrupted log. Its result
    // is emitted as an extra row whose `oracle_failures` counts each fault
    // class the oracles failed to detect, so the CI gate on the JSON dump
    // covers the control as well as the cells.
    let control_cell = matrix
        .cells()
        .into_iter()
        .find(|c| c.design == DesignKind::Dhtm);
    let control = control_cell.as_ref().and_then(negative_control);
    if let Some(cell) = &control_cell {
        let mut stats = dhtm_types::stats::RunStats::new();
        stats.recovery.crash_points = 1;
        stats.recovery.oracle_failures = match &control {
            Some(c) => {
                u64::from(!c.clean_passed)
                    + u64::from(!c.flip_detected)
                    + u64::from(!c.drop_detected)
            }
            // No replayable window at all means the control could not run —
            // itself a failure of the harness.
            None => 1,
        };
        rows.push(Row {
            experiment: "recovery".to_string(),
            engine: cell.design.label().to_string(),
            workload: cell.workload.clone(),
            cores: cell.config.num_cores,
            config: "negative-control".to_string(),
            seed: cell.seed,
            target_commits: cell.commits,
            stats,
            probes: Vec::new(),
        });
    }

    let mut lines = vec![
        "# Crash matrix: recovery oracles per design × workload".to_string(),
        format!(
            "# {} stratified + {} adversarial crash points per cell on the durable-mutation clock",
            matrix.stratified, matrix.adversarial
        ),
    ];
    lines.extend(dhtm_crash::report::summary_lines(&reports));
    lines.push(dhtm_crash::report::control_line(control.as_ref()));
    let all_passed = reports.iter().all(dhtm_crash::CrashCellReport::all_passed)
        && control
            .as_ref()
            .is_some_and(dhtm_crash::NegativeControl::detected);
    lines.push(format!(
        "overall: {}",
        if all_passed {
            "ALL RECOVERY ORACLES PASS"
        } else {
            "ORACLE FAILURES DETECTED"
        }
    ));
    ExperimentResult {
        name: "recovery",
        lines,
        rows,
    }
}

// ---------------------------------------------------------------------------
// Emission and binary entry points
// ---------------------------------------------------------------------------

/// Prints every result's table lines, then emits the machine-readable dump
/// if the CLI asked for one (`--format json|csv`, `--out PATH`). When the
/// dump itself targets stdout, the tables move to stderr so a redirected
/// stdout stays valid JSON/CSV.
///
/// # Panics
///
/// Panics if `--out` was given but the file cannot be written.
pub fn emit(opts: &HarnessOpts, results: &[ExperimentResult]) {
    let dump_on_stdout = opts.format != OutputFormat::Table && opts.out.is_none();
    for (i, result) in results.iter().enumerate() {
        if i > 0 {
            if dump_on_stdout {
                eprintln!();
            } else {
                println!();
            }
        }
        for line in &result.lines {
            if dump_on_stdout {
                eprintln!("{line}");
            } else {
                println!("{line}");
            }
        }
    }
    let all_rows: Vec<Row> = results.iter().flat_map(|r| r.rows.clone()).collect();
    if opts.profile {
        for line in profile_lines(&all_rows) {
            if dump_on_stdout {
                eprintln!("{line}");
            } else {
                println!("{line}");
            }
        }
    }
    let dump = match opts.format {
        OutputFormat::Table => return,
        OutputFormat::Json => rows_to_json(&all_rows),
        OutputFormat::Csv => rows_to_csv(&all_rows),
    };
    match &opts.out {
        Some(path) => {
            let mut file = std::fs::File::create(path)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display()));
            file.write_all(dump.as_bytes())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {} rows to {}", all_rows.len(), path.display());
        }
        None => print!("{dump}"),
    }
}

/// The `--profile` table: every row's flattened probe registry summed into
/// one component-stat profile across the emitted cells. Returns no lines
/// when nothing was instrumented (e.g. `--profile` with only the
/// arithmetic-only `table2`).
fn profile_lines(rows: &[Row]) -> Vec<String> {
    let mut totals: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for row in rows {
        for (name, value) in &row.probes {
            *totals.entry(name.as_str()).or_insert(0) += value;
        }
    }
    if totals.is_empty() {
        return Vec::new();
    }
    let pairs: Vec<(String, u64)> = totals
        .into_iter()
        .map(|(name, value)| (name.to_string(), value))
        .collect();
    let mut lines = vec![
        String::new(),
        format!(
            "# Component-stat profile (summed over {} instrumented cells)",
            rows.iter().filter(|r| !r.probes.is_empty()).count()
        ),
    ];
    lines.extend(dhtm_obs::profile::render_flat(&pairs));
    lines
}

/// CLI entry point shared by the thin figure/table binaries: parses the
/// process arguments, runs `name` and emits the output.
///
/// # Panics
///
/// Panics if `name` is not a registered experiment (a bug in the binary).
pub fn run_cli(name: &str) {
    let opts = HarnessOpts::parse_env();
    // Each figure/table binary is hard-wired to one experiment; silently
    // running it while the user asked for another would mislabel results.
    if let Some(requested) = opts.experiment.as_deref() {
        if requested != name {
            eprintln!(
                "this binary always runs '{name}'; use the dhtm_experiments binary \
                 for --experiment {requested}"
            );
            std::process::exit(2);
        }
    }
    let experiment = by_name(name).unwrap_or_else(|| panic!("unregistered experiment {name}"));
    prepare_trace(&opts);
    let result = experiment.run(&opts);
    emit(&opts, &[result]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut names: Vec<&str> = ALL.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 10);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10, "duplicate experiment names");
        for e in ALL {
            assert_eq!(by_name(e.name).unwrap().name, e.name);
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn table2_reports_overhead_without_simulation() {
        let result = table2(&HarnessOpts::default());
        assert!(result.rows.is_empty());
        assert!(result.lines.len() > 3);
        assert!(result.lines.last().unwrap().contains("bytes per core"));
    }

    #[test]
    fn run_specs_deduplicates_identical_spec_files() {
        let dir = std::env::temp_dir().join(format!("dhtm_specdedup_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let spec = SimSpec::builder(DesignKind::Dhtm, "queue")
            .commits(4)
            .seed(9)
            .build()
            .unwrap();
        let other = SimSpec::builder(DesignKind::SoftwareOnly, "queue")
            .commits(4)
            .seed(9)
            .build()
            .unwrap();
        // Two copies of the same spec under different names, plus one
        // genuinely different spec.
        let paths = vec![dir.join("a.toml"), dir.join("b.toml"), dir.join("c.toml")];
        std::fs::write(&paths[0], spec.to_toml()).unwrap();
        std::fs::write(&paths[1], spec.to_toml()).unwrap();
        std::fs::write(&paths[2], other.to_toml()).unwrap();

        let result = run_specs(&paths).unwrap();
        assert_eq!(result.rows.len(), 3, "every file still gets a row");
        assert_eq!(
            result.rows[0].stats, result.rows[1].stats,
            "duplicate reuses the first run's stats"
        );
        let summary = result.lines.last().unwrap();
        assert!(
            summary.contains("2 executed, 1 duplicate"),
            "expected dedup summary, got: {summary}"
        );
        // Rows and table lines carry the canonical 16-hex hash form.
        assert!(result.lines[1].contains(&spec.content_hash_hex()));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
