//! Rendering collected rows: JSON and CSV for machine consumption, plus the
//! markdown-ish normalised tables the paper reports.

use std::fmt::Write as _;

use dhtm_types::stats::AbortReason;

use crate::runner::Row;

/// Output formats supported by the harness CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable normalised tables on stdout (the default).
    #[default]
    Table,
    /// One JSON array of row objects.
    Json,
    /// Comma-separated values with a header line.
    Csv,
}

impl std::str::FromStr for OutputFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "table" => Ok(OutputFormat::Table),
            "json" => Ok(OutputFormat::Json),
            "csv" => Ok(OutputFormat::Csv),
            other => Err(format!("unknown format '{other}' (table|json|csv)")),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The flat (name, value) numeric fields serialised for one row, shared by
/// the JSON and CSV emitters so the two formats can never drift apart.
fn numeric_fields(row: &Row) -> Vec<(&'static str, f64)> {
    let s = &row.stats;
    let mut fields: Vec<(&'static str, f64)> = vec![
        ("cores", row.cores as f64),
        ("target_commits", row.target_commits as f64),
        ("committed", s.committed as f64),
        ("steps", s.steps as f64),
        ("total_cycles", s.total_cycles as f64),
        ("throughput_per_mcycle", s.throughput_per_mcycle()),
        ("aborts_total", s.total_aborts() as f64),
        ("abort_rate_percent", s.abort_rate_percent()),
        ("loads", s.loads as f64),
        ("stores", s.stores as f64),
        ("log_records_written", s.log_records_written as f64),
        ("log_bytes_written", s.log_bytes_written as f64),
        ("data_bytes_written", s.data_bytes_written as f64),
        ("nvm_line_reads", s.nvm_line_reads as f64),
        ("l1_hits", s.l1_hits as f64),
        ("l1_misses", s.l1_misses as f64),
        ("llc_hits", s.llc_hits as f64),
        ("llc_misses", s.llc_misses as f64),
        ("write_set_overflows", s.write_set_overflows as f64),
        ("lock_wait_cycles", s.lock_wait_cycles as f64),
        ("commit_stall_cycles", s.commit_stall_cycles as f64),
        ("total_stall_cycles", s.total_stall_cycles as f64),
        ("fallback_commits", s.fallback_commits as f64),
        ("mean_write_set_lines", s.mean_write_set_lines()),
        ("mean_read_set_lines", s.mean_read_set_lines()),
        ("crash_points", s.recovery.crash_points as f64),
        ("oracle_failures", s.recovery.oracle_failures as f64),
        ("recovery_replayed", s.recovery.replayed_transactions as f64),
        (
            "recovery_rolled_back",
            s.recovery.rolled_back_transactions as f64,
        ),
        (
            "recovery_skipped_complete",
            s.recovery.skipped_complete as f64,
        ),
        (
            "recovery_skipped_uncommitted",
            s.recovery.skipped_uncommitted as f64,
        ),
        ("recovery_lines_written", s.recovery.lines_written as f64),
        ("recovery_words_written", s.recovery.words_written as f64),
        ("recovery_redo_lines", s.recovery.redo_lines_applied as f64),
        ("recovery_undo_lines", s.recovery.undo_lines_applied as f64),
        ("recovery_sentinel_edges", s.recovery.sentinel_edges as f64),
    ];
    for reason in AbortReason::ALL {
        let count = s.aborts.get(&reason).copied().unwrap_or(0) as f64;
        let name: &'static str = match reason {
            AbortReason::Conflict => "aborts_conflict",
            AbortReason::Capacity => "aborts_capacity",
            AbortReason::LogOverflow => "aborts_log_overflow",
            AbortReason::Fallback => "aborts_fallback",
            AbortReason::Explicit => "aborts_explicit",
        };
        fields.push((name, count));
    }
    // Component-stat probe aggregates (instrumented runs only; all zero on
    // the plain path). The column set is fixed so the CSV header never
    // depends on which probes a particular row happened to collect.
    for (name, suffix) in PROBE_COLUMNS {
        fields.push((name, row.probe_sum(suffix) as f64));
    }
    fields
}

/// The fixed probe-aggregate columns exported alongside the run statistics:
/// `(column name, probe-name suffix summed across scopes)`. Per-core probes
/// like `coreN/l1/evictions` aggregate into one column per component.
const PROBE_COLUMNS: &[(&str, &str)] = &[
    ("probe_l1_evictions", "l1/evictions"),
    ("probe_llc_evictions", "llc/evictions"),
    ("probe_channel_busy_cycles", "channel/busy_cycles"),
    ("probe_channel_idle_cycles", "channel/idle_cycles"),
    (
        "probe_channel_queue_delay_cycles",
        "channel/queue_delay_cycles",
    ),
    ("probe_dir_sharer_walks", "dir/sharer_walks"),
    ("probe_dir_invalidations", "dir/invalidations"),
    ("probe_log_buffer_evictions", "log_buffer/evictions"),
    (
        "probe_log_buffer_peak_occupancy",
        "log_buffer/peak_occupancy",
    ),
    ("probe_overflow_appended", "overflow/appended"),
    ("probe_mshr_merges", "mshr/merges"),
];

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Serialises rows as one pretty-printed JSON array.
pub fn rows_to_json(rows: &[Row]) -> String {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        // The seed is emitted verbatim as an integer: it is a full-width
        // u64 and would lose precision through the f64 numeric fields.
        let _ = write!(
            out,
            "  {{\"experiment\": \"{}\", \"engine\": \"{}\", \"workload\": \"{}\", \"config\": \"{}\", \"seed\": {}",
            json_escape(&row.experiment),
            json_escape(&row.engine),
            json_escape(&row.workload),
            json_escape(&row.config),
            row.seed,
        );
        for (name, value) in numeric_fields(row) {
            let _ = write!(out, ", \"{name}\": {}", format_number(value));
        }
        // Instrumented rows additionally carry the full flattened probe
        // registry as a nested object; plain rows stay byte-identical to
        // the pre-observability schema.
        if !row.probes.is_empty() {
            out.push_str(", \"probes\": {");
            for (j, (name, value)) in row.probes.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{}\": {value}", json_escape(name));
            }
            out.push('}');
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

/// The numeric column names, independent of any row, so an empty export
/// still carries the full schema.
fn numeric_field_names() -> Vec<&'static str> {
    let empty = Row {
        experiment: String::new(),
        engine: String::new(),
        workload: String::new(),
        cores: 0,
        config: String::new(),
        seed: 0,
        target_commits: 0,
        stats: Default::default(),
        probes: Vec::new(),
    };
    numeric_fields(&empty).into_iter().map(|(n, _)| n).collect()
}

/// Serialises rows as CSV with a header line.
pub fn rows_to_csv(rows: &[Row]) -> String {
    let mut out = String::from("experiment,engine,workload,config,seed");
    for name in numeric_field_names() {
        out.push(',');
        out.push_str(name);
    }
    out.push('\n');
    for row in rows {
        let _ = write!(
            out,
            "{},{},{},{},{}",
            row.experiment, row.engine, row.workload, row.config, row.seed
        );
        for (_, value) in numeric_fields(row) {
            out.push(',');
            out.push_str(&format_number(value));
        }
        out.push('\n');
    }
    out
}

/// Formats one markdown-style table row.
pub fn row_line(label: &str, values: &[String]) -> String {
    format!("| {:<12} | {} |", label, values.join(" | "))
}

/// Prints a markdown-style table row (compatibility shim for callers that
/// stream straight to stdout).
pub fn print_row(label: &str, values: &[String]) {
    println!("{}", row_line(label, values));
}

/// Geometric mean helper used for "Ave." columns.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Finds the row for `engine` within the (workload, config, cores) group of
/// rows matching the predicate coordinates.
pub fn find_row<'a>(
    rows: &'a [Row],
    engine: &str,
    workload: &str,
    config: &str,
    cores: usize,
) -> Option<&'a Row> {
    rows.iter().find(|r| {
        r.engine == engine && r.workload == workload && r.config == config && r.cores == cores
    })
}

/// Throughput of `engine` normalised to the "SO" row of the same
/// (workload, config, cores) group. Returns 0 when either row is missing
/// and 0 when the SO throughput is 0.
pub fn so_normalised(
    rows: &[Row],
    engine: &str,
    workload: &str,
    config: &str,
    cores: usize,
) -> f64 {
    let so = find_row(rows, "SO", workload, config, cores)
        .map(Row::throughput)
        .unwrap_or(0.0);
    let target = find_row(rows, engine, workload, config, cores)
        .map(Row::throughput)
        .unwrap_or(0.0);
    if so > 0.0 {
        target / so
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::stats::RunStats;

    fn row(engine: &str, workload: &str, committed: u64, cycles: u64) -> Row {
        let mut stats = RunStats::new();
        stats.committed = committed;
        stats.total_cycles = cycles;
        stats.record_abort(AbortReason::Conflict);
        Row {
            experiment: "test".into(),
            engine: engine.into(),
            workload: workload.into(),
            cores: 4,
            config: "small".into(),
            seed: 1,
            target_commits: committed,
            stats,
            probes: Vec::new(),
        }
    }

    #[test]
    fn json_has_one_object_per_row_with_key_fields() {
        let rows = vec![row("SO", "hash", 10, 1000), row("DHTM", "hash", 10, 500)];
        let json = rows_to_json(&rows);
        assert_eq!(json.matches("\"engine\"").count(), 2);
        assert!(json.contains("\"aborts_conflict\": 1"));
        assert!(json.contains("\"committed\": 10"));
        assert!(json.trim_start().starts_with('['));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn csv_header_matches_value_count() {
        let rows = vec![row("SO", "hash", 10, 1000)];
        let csv = rows_to_csv(&rows);
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let values: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(header.len(), values.len());
        assert!(header.contains(&"commit_stall_cycles"));
        assert!(header.contains(&"total_stall_cycles"));
        assert!(header.contains(&"crash_points"));
        assert!(header.contains(&"oracle_failures"));
        assert!(header.contains(&"recovery_sentinel_edges"));
    }

    #[test]
    fn empty_csv_still_carries_the_full_schema() {
        let empty = rows_to_csv(&[]);
        let with_rows = rows_to_csv(&[row("SO", "hash", 10, 1000)]);
        assert_eq!(
            empty.lines().next().unwrap(),
            with_rows.lines().next().unwrap(),
            "header must not depend on the rows present"
        );
    }

    #[test]
    fn json_escaping_handles_special_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn probe_columns_aggregate_scoped_probes_and_default_to_zero() {
        let mut instrumented = row("DHTM", "hash", 10, 1000);
        instrumented.probes = vec![
            ("core0/l1/evictions".to_string(), 3),
            ("core1/l1/evictions".to_string(), 4),
            ("llc/evictions".to_string(), 7),
            ("channel/queue_delay_cycles".to_string(), 250),
        ];
        assert_eq!(instrumented.probe_sum("l1/evictions"), 7);
        assert_eq!(instrumented.probe_sum("llc/evictions"), 7);
        // `delay_cycles` is a suffix of the probe name but not a full
        // path-segment suffix — it must not match.
        assert_eq!(instrumented.probe_sum("delay_cycles"), 0);
        assert_eq!(instrumented.probe_sum("dir/sharer_walks"), 0);

        let csv = rows_to_csv(&[instrumented.clone(), row("SO", "hash", 10, 1000)]);
        let mut lines = csv.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        let probe_col = header
            .iter()
            .position(|&h| h == "probe_l1_evictions")
            .expect("probe columns in header");
        assert!(header.contains(&"probe_channel_queue_delay_cycles"));
        let traced: Vec<&str> = lines.next().unwrap().split(',').collect();
        let plain: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(traced[probe_col], "7");
        assert_eq!(plain[probe_col], "0", "plain rows carry zeroed columns");

        let json = rows_to_json(&[instrumented, row("SO", "hash", 10, 1000)]);
        assert!(json.contains("\"probes\": {\"core0/l1/evictions\": 3"));
        assert_eq!(
            json.matches("\"probes\"").count(),
            1,
            "plain rows must not emit a probes object"
        );
    }

    #[test]
    fn so_normalisation_within_group() {
        let rows = vec![row("SO", "hash", 10, 1000), row("DHTM", "hash", 20, 1000)];
        let norm = so_normalised(&rows, "DHTM", "hash", "small", 4);
        assert!((norm - 2.0).abs() < 1e-9);
        assert_eq!(so_normalised(&rows, "DHTM", "queue", "small", 4), 0.0);
    }

    #[test]
    fn normalisation_of_degenerate_rows_is_finite_zero() {
        // Regression: zero-cycle and zero-commit cells (a crashed or
        // cycle-capped run) must normalise to 0.0, never NaN or inf, in
        // every SO-relative path.
        let degenerate = [
            // SO committed nothing.
            vec![row("SO", "hash", 0, 1000), row("DHTM", "hash", 20, 1000)],
            // SO never advanced a cycle.
            vec![row("SO", "hash", 10, 0), row("DHTM", "hash", 20, 1000)],
            // Both sides dead.
            vec![row("SO", "hash", 0, 0), row("DHTM", "hash", 0, 0)],
            // No SO row at all.
            vec![row("DHTM", "hash", 20, 1000)],
        ];
        for rows in &degenerate {
            let norm = so_normalised(rows, "DHTM", "hash", "small", 4);
            assert!(norm.is_finite(), "non-finite normalisation from {rows:?}");
            assert_eq!(norm, 0.0);
        }
        // The geometric mean over guarded values stays finite too.
        assert!(geometric_mean(&[0.0, 0.0]).is_finite());
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn output_format_parses() {
        assert_eq!("json".parse::<OutputFormat>(), Ok(OutputFormat::Json));
        assert_eq!("table".parse::<OutputFormat>(), Ok(OutputFormat::Table));
        assert_eq!("csv".parse::<OutputFormat>(), Ok(OutputFormat::Csv));
        assert!("yaml".parse::<OutputFormat>().is_err());
    }
}
