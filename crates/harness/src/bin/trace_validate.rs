//! NDJSON trace validator: the CI gate behind `--trace`.
//!
//! ```text
//! trace_validate TRACE.ndjson [MORE.ndjson ...]
//! ```
//!
//! Every line of every file must parse as a flat JSON object and satisfy
//! the `dhtm-trace-v1` schema ([`dhtm_obs::validate_line`]): the right
//! `schema` tag, a non-empty `kind` and `cell`, a `cycle`, and only u64
//! payload fields. Prints a per-file summary (line count, event kinds) and
//! exits non-zero on the first malformed file, naming the offending line.

use std::collections::BTreeMap;
use std::process::ExitCode;

use dhtm_obs::{event_from_line, TRACE_SCHEMA};

fn validate_file(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut total = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let event =
            event_from_line(line).map_err(|e| format!("{path}:{}: {e}\n  {line}", i + 1))?;
        *kinds.entry(event.kind).or_insert(0) += 1;
        total += 1;
    }
    if total == 0 {
        return Err(format!(
            "{path}: no trace events (empty trace is a failure)"
        ));
    }
    let summary: Vec<String> = kinds
        .iter()
        .map(|(kind, count)| format!("{kind}={count}"))
        .collect();
    println!(
        "{path}: {total} events valid against {TRACE_SCHEMA} ({})",
        summary.join(", ")
    );
    Ok(())
}

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_validate TRACE.ndjson [MORE.ndjson ...]");
        return ExitCode::from(2);
    }
    for path in &paths {
        if let Err(msg) = validate_file(path) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
