//! The experiment-suite runner: run any figure/table of the paper — or all
//! of them, or ad-hoc scenario spec files — through the matrix harness
//! from one CLI.
//!
//! ```text
//! dhtm_experiments [--experiment NAME|all] [--spec FILE...] [--jobs N]
//!                  [--format table|json|csv] [--out PATH]
//!                  [--trace out.ndjson] [--profile]
//! ```
//!
//! With `--experiment all` (the default) the full 8-experiment paper suite
//! plus the scaling sweep runs; `--format json --out results.json` dumps
//! every simulation row for archival (the CI quick-mode artifact). With
//! `--spec examples/specs/*.toml` each listed spec file is validated and
//! executed instead (the typed scenario API's file front-end). `--trace`
//! streams every matrix cell's NDJSON event trace (schema `dhtm-trace-v1`)
//! to a file and `--profile` prints a summed component-stat table; both run
//! the identical simulations — instrumentation never perturbs a run.

use dhtm_harness::cli::HarnessOpts;
use dhtm_harness::experiments::{by_name, prepare_trace, run_specs, ExperimentResult, ALL};

fn main() {
    let opts = HarnessOpts::parse_env();
    prepare_trace(&opts);
    if !opts.specs.is_empty() {
        if opts.experiment.is_some() {
            eprintln!("--spec and --experiment are mutually exclusive");
            std::process::exit(2);
        }
        let result = run_specs(&opts.specs).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        dhtm_harness::experiments::emit(&opts, &[result]);
        return;
    }
    let which = opts.experiment.as_deref().unwrap_or("all");
    let results: Vec<ExperimentResult> = match which {
        "all" => ALL
            .iter()
            .map(|e| {
                eprintln!("running {} — {}", e.name, e.title);
                e.run(&opts)
            })
            .collect(),
        name => {
            let Some(experiment) = by_name(name) else {
                eprintln!("unknown experiment '{name}'; available:");
                for e in ALL {
                    eprintln!("  {:<10} {}", e.name, e.title);
                }
                std::process::exit(2);
            };
            vec![experiment.run(&opts)]
        }
    };
    dhtm_harness::experiments::emit(&opts, &results);
}
