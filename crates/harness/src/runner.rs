//! The worker pool: shards the independent cells of a matrix across
//! `std::thread` workers and collects results in deterministic matrix order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use dhtm_scenario::TraceRecorder;
use dhtm_types::stats::RunStats;

use crate::matrix::{Cell, Matrix};

/// One collected result row: the cell's coordinates plus the run statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Name of the experiment the row belongs to (filled in by the
    /// experiment definitions; empty for ad-hoc matrices).
    pub experiment: String,
    /// Engine label ("SO", "DHTM", "DHTM-instant", ...).
    pub engine: String,
    /// Workload name.
    pub workload: String,
    /// Simulated core count.
    pub cores: usize,
    /// Config-variant name.
    pub config: String,
    /// The workload seed the cell ran with.
    pub seed: u64,
    /// The commit target the cell ran to.
    pub target_commits: u64,
    /// Aggregate statistics of the run.
    pub stats: RunStats,
    /// Flattened component-stat probes collected for this cell (empty on
    /// uninstrumented runs — the default path never builds a registry).
    pub probes: Vec<(String, u64)>,
}

impl Row {
    /// Committed transactions per million cycles.
    pub fn throughput(&self) -> f64 {
        self.stats.throughput_per_mcycle()
    }

    /// Sum of every flattened probe whose name equals `suffix` or ends with
    /// `/suffix` — aggregates per-core/per-thread scopes (e.g.
    /// `log_buffer/evictions` sums all `coreN/log_buffer/evictions`).
    /// Zero when no probes were collected.
    pub fn probe_sum(&self, suffix: &str) -> u64 {
        self.probes
            .iter()
            .filter(|(name, _)| {
                name == suffix
                    || (name.ends_with(suffix) && name[..name.len() - suffix.len()].ends_with('/'))
            })
            .map(|&(_, v)| v)
            .sum()
    }
}

/// Runs a single cell to completion on the calling thread: the cell's
/// [`dhtm_scenario::SimSpec`] is validated, resolved against the engine
/// registry and executed.
///
/// # Panics
///
/// Panics if the cell's spec fails validation (an unregistered engine id
/// or unknown workload on the matrix axes is a caller bug).
pub fn run_cell(cell: &Cell) -> Row {
    let result = cell
        .spec
        .run()
        .unwrap_or_else(|e| panic!("matrix cell {}: {e}", cell.index));
    Row {
        experiment: String::new(),
        engine: cell.engine_label(),
        workload: cell.workload().to_string(),
        cores: cell.cores,
        config: cell.config_name.clone(),
        seed: cell.seed,
        target_commits: cell.commits(),
        stats: result.stats,
        probes: Vec::new(),
    }
}

/// A fully instrumented cell result: the row (probes included) plus the
/// cell's NDJSON trace lines.
pub type TracedRow = (Row, Vec<String>);

/// Runs a single cell with full instrumentation: an NDJSON [`TraceRecorder`]
/// observes the run, the component-stat registry is collected afterwards and
/// flattened into the row, and the cell's trace lines are returned alongside.
///
/// The simulated run is bit-identical to [`run_cell`] — observers cannot
/// perturb the simulation and probes are read only after it finishes.
///
/// # Panics
///
/// Panics if the cell's spec fails validation (same contract as
/// [`run_cell`]).
pub fn run_cell_traced(cell: &Cell, label_prefix: &str) -> TracedRow {
    let resolved = cell
        .spec
        .resolve()
        .unwrap_or_else(|e| panic!("matrix cell {}: {e}", cell.index));
    let label = format!(
        "{label_prefix}{}{}/{}/c{}/{}",
        if label_prefix.is_empty() { "" } else { "/" },
        cell.engine_label(),
        cell.workload(),
        cell.cores,
        cell.config_name,
    );
    let mut recorder = TraceRecorder::new(label);
    let (result, registry) = resolved.run_probed(Some(&mut recorder));
    recorder.finish(&result.stats, Some(&registry));
    let row = Row {
        experiment: String::new(),
        engine: cell.engine_label(),
        workload: cell.workload().to_string(),
        cores: cell.cores,
        config: cell.config_name.clone(),
        seed: cell.seed,
        target_commits: cell.commits(),
        stats: result.stats,
        probes: registry.flatten(),
    };
    (row, recorder.lines())
}

/// Expands `matrix` into cells and runs them on `jobs` workers.
///
/// Rows come back in matrix-enumeration order and are bit-identical for any
/// `jobs` value: each cell builds its own machine, engine and workload from
/// the cell's deterministic seed, so no state is shared between cells.
pub fn run_matrix(matrix: &Matrix, jobs: usize) -> Vec<Row> {
    run_cells(&matrix.cells(), jobs)
}

/// Runs pre-expanded cells on `jobs` workers (1 = serial on this thread).
pub fn run_cells(cells: &[Cell], jobs: usize) -> Vec<Row> {
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs == 1 {
        return cells.iter().map(run_cell).collect();
    }

    // Work-stealing by atomic cursor: workers pull the next unclaimed cell
    // index; each result lands in its cell's dedicated slot, so collection
    // order is matrix order no matter which worker ran what.
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Row>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                let row = run_cell(cell);
                *slots[i].lock().expect("result slot poisoned") = Some(row);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell ran")
        })
        .collect()
}

/// Runs `matrix` fully instrumented on `jobs` workers: every cell is
/// executed through [`run_cell_traced`], so each row carries its flattened
/// probe registry and each cell contributes its NDJSON trace lines.
///
/// Rows and trace blocks come back in matrix-enumeration order regardless
/// of `jobs`, so the concatenated trace stream is deterministic.
pub fn run_matrix_traced(matrix: &Matrix, jobs: usize, label_prefix: &str) -> Vec<TracedRow> {
    run_cells_traced(&matrix.cells(), jobs, label_prefix)
}

/// Runs pre-expanded cells instrumented on `jobs` workers (the traced
/// counterpart of [`run_cells`]).
pub fn run_cells_traced(cells: &[Cell], jobs: usize, label_prefix: &str) -> Vec<TracedRow> {
    let jobs = jobs.clamp(1, cells.len().max(1));
    if jobs == 1 {
        return cells
            .iter()
            .map(|cell| run_cell_traced(cell, label_prefix))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<TracedRow>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else {
                    break;
                };
                let traced = run_cell_traced(cell, label_prefix);
                *slots[i].lock().expect("result slot poisoned") = Some(traced);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell ran")
        })
        .collect()
}

/// A sensible default worker count: the machine's available parallelism.
pub fn default_jobs() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CommitSpec;
    use crate::matrix::ConfigVariant;
    use dhtm_types::policy::DesignKind;

    fn tiny_matrix() -> Matrix {
        Matrix::new()
            .engines([DesignKind::SoftwareOnly, DesignKind::Dhtm])
            .workloads(["queue"])
            .core_counts([2])
            .config(ConfigVariant::small())
            .commits(CommitSpec::Fixed(6))
    }

    #[test]
    fn serial_run_produces_one_row_per_cell() {
        let m = tiny_matrix();
        let rows = run_matrix(&m, 1);
        assert_eq!(rows.len(), m.cells().len());
        assert!(rows.iter().all(|r| r.stats.committed == 6));
        assert_eq!(rows[0].engine, "SO");
        assert_eq!(rows[1].engine, "DHTM");
    }

    #[test]
    fn parallel_run_matches_serial_bit_for_bit() {
        let m = tiny_matrix();
        let serial = run_matrix(&m, 1);
        for jobs in [2, 3, 8] {
            assert_eq!(run_matrix(&m, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn oversized_job_count_is_clamped() {
        let m = tiny_matrix();
        let rows = run_matrix(&m, 1000);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn traced_matrix_matches_plain_stats_and_collects_probes() {
        let m = tiny_matrix();
        let plain = run_matrix(&m, 1);
        let traced = run_matrix_traced(&m, 1, "test");
        assert_eq!(plain.len(), traced.len());
        for (p, (t, lines)) in plain.iter().zip(&traced) {
            assert_eq!(p.stats, t.stats, "instrumentation must not perturb runs");
            assert!(!t.probes.is_empty(), "traced rows carry probes");
            assert!(!lines.is_empty(), "traced cells emit NDJSON lines");
            assert!(lines[0].starts_with('{'));
        }
        // Cell labels embed the prefix and the cell coordinates.
        let (row, lines) = &traced[0];
        assert!(lines[0].contains(&format!("test/{}/{}", row.engine, row.workload)));
        // Parallel traced runs are bit-identical to serial ones.
        assert_eq!(run_matrix_traced(&m, 4, "test"), traced);
    }
}
