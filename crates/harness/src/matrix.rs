//! The experiment matrix: the declarative cross product of engines,
//! workloads, core counts and machine configurations, expanded into
//! independently runnable cells — each carrying a complete, serializable
//! [`SimSpec`] — with deterministic seeding.

use dhtm_baselines::registry::{self, EngineId};
use dhtm_scenario::{SimSpec, SpecLimits};
use dhtm_types::config::{BaseConfig, ConfigOverlay, SystemConfig};

use crate::{default_base, default_commits_for, quick_mode};

/// A named machine configuration — one point on the matrix's config axis,
/// expressed as a serializable base + overlay pair so every cell's spec
/// round-trips through TOML/JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigVariant {
    /// Short name used in tables and result rows ("default", "logbuf16",
    /// "bw2x", ...).
    pub name: String,
    /// The named base configuration.
    pub base: BaseConfig,
    /// Sparse overrides applied on top of the base.
    pub overlay: ConfigOverlay,
}

impl ConfigVariant {
    /// Creates a named configuration variant.
    pub fn new(name: impl Into<String>, base: BaseConfig, overlay: ConfigOverlay) -> Self {
        ConfigVariant {
            name: name.into(),
            base,
            overlay,
        }
    }

    /// A named base with no overrides.
    pub fn of_base(name: impl Into<String>, base: BaseConfig) -> Self {
        ConfigVariant::new(name, base, ConfigOverlay::none())
    }

    /// The default experiment configuration (Table III, or the small test
    /// machine in quick mode).
    pub fn default_machine() -> Self {
        ConfigVariant::of_base("default", default_base())
    }

    /// The scaled-down test machine.
    pub fn small() -> Self {
        ConfigVariant::of_base("small", BaseConfig::Small)
    }

    /// A beyond-the-paper "large" machine: double the LLC, a 128-entry log
    /// buffer and double the memory bandwidth, for scenario diversity in
    /// the scaling sweeps.
    pub fn large() -> Self {
        ConfigVariant::new(
            "large",
            BaseConfig::Isca18,
            ConfigOverlay {
                log_buffer_entries: Some(128),
                bandwidth_multiplier: Some(2.0),
                llc_capacity_bytes: Some(16 * 1024 * 1024),
                llc_ways: Some(16),
                ..ConfigOverlay::none()
            },
        )
    }

    /// The named small/default/large ladder used by the scaling experiment.
    /// Quick mode keeps only the small machine.
    pub fn ladder() -> Vec<Self> {
        if quick_mode() {
            vec![Self::small()]
        } else {
            vec![Self::small(), Self::default_machine(), Self::large()]
        }
    }

    /// The fully resolved configuration (base + overlay).
    pub fn config(&self) -> SystemConfig {
        self.overlay.apply(self.base.resolve())
    }
}

/// How the commit target of each cell is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitSpec {
    /// The per-workload default ([`default_commits_for`]).
    PerWorkloadDefault,
    /// The per-workload default, capped at the given value (Table IV uses
    /// this to bound the very large TPC-C batches).
    CappedDefault(u64),
    /// A fixed target for every cell.
    Fixed(u64),
}

impl CommitSpec {
    fn resolve(&self, workload: &str) -> u64 {
        match self {
            CommitSpec::PerWorkloadDefault => default_commits_for(workload),
            CommitSpec::CappedDefault(cap) => default_commits_for(workload).min(*cap),
            CommitSpec::Fixed(n) => *n,
        }
    }
}

/// A declarative experiment matrix: `engines × workloads × core_counts ×
/// configs`. Engines are [`EngineId`]s resolved through the process-wide
/// engine registry, so any registered variant — built-in or out-of-tree —
/// can sit on the engine axis.
#[derive(Debug, Clone)]
pub struct Matrix {
    /// The engines to run (at least one).
    pub engines: Vec<EngineId>,
    /// The workload names to run (at least one).
    pub workloads: Vec<String>,
    /// Core counts to sweep. Empty means "whatever each config specifies".
    pub core_counts: Vec<usize>,
    /// Named machine configurations (at least one).
    pub configs: Vec<ConfigVariant>,
    /// Commit-target policy.
    pub commits: CommitSpec,
    /// Base seed mixed into every cell's seed.
    pub seed: u64,
}

impl Matrix {
    /// Creates a matrix with the default machine config, per-workload
    /// commit targets and the shared experiment seed.
    pub fn new() -> Self {
        Matrix {
            engines: Vec::new(),
            workloads: Vec::new(),
            core_counts: Vec::new(),
            configs: vec![ConfigVariant::default_machine()],
            commits: CommitSpec::PerWorkloadDefault,
            seed: crate::EXPERIMENT_SEED,
        }
    }

    /// Sets the engine axis from design kinds, engine ids or name strings.
    #[must_use]
    pub fn engines<I, E>(mut self, engines: I) -> Self
    where
        I: IntoIterator<Item = E>,
        E: Into<EngineId>,
    {
        self.engines = engines.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the workload axis.
    #[must_use]
    pub fn workloads<I, S>(mut self, workloads: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = workloads.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the core-count axis.
    #[must_use]
    pub fn core_counts<I: IntoIterator<Item = usize>>(mut self, counts: I) -> Self {
        self.core_counts = counts.into_iter().collect();
        self
    }

    /// Sets the config axis.
    #[must_use]
    pub fn configs<I: IntoIterator<Item = ConfigVariant>>(mut self, configs: I) -> Self {
        self.configs = configs.into_iter().collect();
        self
    }

    /// Sets a single config.
    #[must_use]
    pub fn config(self, config: ConfigVariant) -> Self {
        self.configs(vec![config])
    }

    /// Sets the commit-target policy.
    #[must_use]
    pub fn commits(mut self, commits: CommitSpec) -> Self {
        self.commits = commits;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expands the matrix into runnable cells, in deterministic
    /// config-major / workload / core-count / engine order (so every
    /// engine of one group is adjacent, which keeps normalised tables easy
    /// to read when streaming rows).
    ///
    /// # Panics
    ///
    /// Panics if any axis that must be non-empty is empty.
    pub fn cells(&self) -> Vec<Cell> {
        assert!(!self.engines.is_empty(), "matrix needs at least one engine");
        assert!(
            !self.workloads.is_empty(),
            "matrix needs at least one workload"
        );
        assert!(!self.configs.is_empty(), "matrix needs at least one config");
        let mut cells = Vec::new();
        for variant in &self.configs {
            let core_counts: Vec<usize> = if self.core_counts.is_empty() {
                vec![variant.config().num_cores]
            } else {
                self.core_counts.clone()
            };
            for workload in &self.workloads {
                for &cores in &core_counts {
                    for engine in &self.engines {
                        let overlay = variant.overlay.with_num_cores(cores);
                        let commits = self.commits.resolve(workload);
                        let spec = SimSpec {
                            engine: engine.clone(),
                            workload: workload.clone(),
                            base: variant.base,
                            overlay,
                            limits: SpecLimits {
                                target_commits: commits,
                                ..SpecLimits::default()
                            },
                            seed: self.seed,
                        };
                        cells.push(Cell {
                            index: cells.len(),
                            cores,
                            config_name: variant.name.clone(),
                            config: spec.config(),
                            seed: spec.derived_seed(),
                            spec,
                        });
                    }
                }
            }
        }
        cells
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Self::new()
    }
}

/// One fully resolved simulation run: a point of the experiment matrix,
/// carrying the complete serializable [`SimSpec`] it executes.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Position in matrix enumeration order (results are returned in this
    /// order regardless of which worker ran the cell).
    pub index: usize,
    /// Number of simulated cores.
    pub cores: usize,
    /// Name of the config variant.
    pub config_name: String,
    /// The resolved machine configuration (already adjusted to `cores`) —
    /// derived from the spec, cached for inspection.
    pub config: SystemConfig,
    /// The derived workload seed for the run (see
    /// [`SimSpec::derived_seed`]).
    pub seed: u64,
    /// The complete spec the cell runs.
    pub spec: SimSpec,
}

impl Cell {
    /// The cell's engine id.
    pub fn engine(&self) -> &EngineId {
        &self.spec.engine
    }

    /// The cell's workload name.
    pub fn workload(&self) -> &str {
        &self.spec.workload
    }

    /// The cell's commit target.
    pub fn commits(&self) -> u64 {
        self.spec.limits.target_commits
    }

    /// The engine's table label, from the registry metadata.
    pub fn engine_label(&self) -> String {
        registry::label_of(&self.spec.engine)
    }
}

/// Deterministic per-cell seed: a content hash of the cell's workload-facing
/// coordinates. The engine is deliberately *not* mixed in — every design in
/// a (workload, cores) group must see the same transaction stream for the
/// normalised comparisons to be apples-to-apples — and neither is the
/// config: a config sweep (log-buffer sizes, bandwidth multipliers, the
/// small/default/large ladder) must replay the *same* stream at every point
/// so the curve isolates the config effect, exactly as the pre-harness
/// binaries did with one fixed seed. The cell index and worker id are also
/// excluded, so seeds are stable under matrix reordering and any `--jobs`
/// value. ([`SimSpec::derived_seed`] is the same derivation at the spec
/// level; this free function survives for callers holding raw coordinates.)
pub fn cell_seed(base: u64, workload: &str, cores: usize) -> u64 {
    dhtm_types::seed::stable_cell_seed(base, workload, cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn cells_cover_the_cross_product_in_order() {
        let m = Matrix::new()
            .engines([DesignKind::SoftwareOnly, DesignKind::Dhtm])
            .workloads(["queue", "hash"])
            .core_counts([2, 4])
            .config(ConfigVariant::small());
        let cells = m.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert!(cells.iter().enumerate().all(|(i, c)| c.index == i));
        // Engine-adjacent: the first two cells differ only in the engine.
        assert_eq!(cells[0].workload(), cells[1].workload());
        assert_eq!(cells[0].cores, cells[1].cores);
        assert_ne!(cells[0].engine(), cells[1].engine());
    }

    #[test]
    fn empty_core_axis_uses_config_core_count() {
        let m = Matrix::new()
            .engines([DesignKind::Dhtm])
            .workloads(["queue"])
            .config(ConfigVariant::small());
        let cells = m.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].cores, SystemConfig::small_test().num_cores);
    }

    #[test]
    fn cell_seeds_ignore_engine_and_config_but_depend_on_coordinates() {
        let m = Matrix::new()
            .engines([DesignKind::SoftwareOnly, DesignKind::Dhtm])
            .workloads(["queue", "hash"])
            .core_counts([2, 4])
            .configs([ConfigVariant::small(), ConfigVariant::large()]);
        let cells = m.cells();
        for pair in cells.chunks(2) {
            // Same (workload, cores): both engines share the seed.
            assert_eq!(pair[0].seed, pair[1].seed);
        }
        let seeds: std::collections::BTreeSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(
            seeds.len(),
            4,
            "four distinct (workload, cores) groups; config sweeps replay the same stream"
        );
        assert_ne!(
            cell_seed(1, "hash", 4),
            cell_seed(2, "hash", 4),
            "base seed must matter"
        );
        assert_ne!(
            cell_seed(1, "hash", 4),
            cell_seed(1, "hash", 8),
            "core count must matter"
        );
    }

    #[test]
    fn cell_specs_are_complete_and_self_consistent() {
        let m = Matrix::new()
            .engines([
                EngineId::from(DesignKind::Dhtm),
                EngineId::new("dhtm-instant"),
            ])
            .workloads(["hash"])
            .core_counts([2])
            .config(ConfigVariant::small())
            .commits(CommitSpec::Fixed(9));
        for cell in m.cells() {
            cell.spec.validate().expect("cell specs validate");
            assert_eq!(cell.spec.config(), cell.config);
            assert_eq!(cell.spec.derived_seed(), cell.seed);
            assert_eq!(cell.spec.limits.target_commits, 9);
            // Round-trip: a cell's spec is fully serializable.
            let back = SimSpec::from_toml(&cell.spec.to_toml()).unwrap();
            assert_eq!(back, cell.spec);
        }
    }

    #[test]
    fn commit_spec_resolution() {
        assert_eq!(
            CommitSpec::PerWorkloadDefault.resolve("hash"),
            crate::default_commits_for("hash")
        );
        assert_eq!(
            CommitSpec::CappedDefault(64).resolve("hash"),
            crate::default_commits_for("hash").min(64)
        );
        assert_eq!(CommitSpec::Fixed(7).resolve("tpcc"), 7);
    }

    #[test]
    fn engine_labels_come_from_the_registry() {
        let m = Matrix::new()
            .engines([
                EngineId::from(DesignKind::SoftwareOnly),
                EngineId::new("dhtm-instant"),
            ])
            .workloads(["queue"])
            .config(ConfigVariant::small());
        let cells = m.cells();
        assert_eq!(cells[0].engine_label(), "SO");
        assert_eq!(cells[1].engine_label(), "DHTM-instant");
    }

    #[test]
    fn large_config_variant_is_valid() {
        let v = ConfigVariant::large();
        assert!(v.config().validate().is_ok());
        assert_eq!(v.config().log_buffer_entries, 128);
        // The overlay reproduces the historical hand-built large config.
        let mut legacy = SystemConfig::isca18_baseline()
            .with_log_buffer_entries(128)
            .with_bandwidth_multiplier(2.0);
        legacy.llc =
            dhtm_types::config::CacheGeometry::new(16 * 1024 * 1024, 16, legacy.l1.line_size);
        assert_eq!(v.config(), legacy);
    }
}
