//! Shared CLI for every experiment binary: `--jobs`, `--format`, `--out`
//! and (for the suite runner) `--experiment`.

use std::path::PathBuf;

use crate::report::OutputFormat;
use crate::runner::default_jobs;

/// Parsed harness options.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOpts {
    /// Worker-pool size for sharding matrix cells (default: available
    /// parallelism).
    pub jobs: usize,
    /// Machine-readable output format emitted *in addition to* the rendered
    /// tables.
    pub format: OutputFormat,
    /// Where to write JSON/CSV output (stdout when absent).
    pub out: Option<PathBuf>,
    /// Which experiment to run (suite binary only; `all` runs everything).
    pub experiment: Option<String>,
    /// Stratified crash points per cell for the `recovery` experiment
    /// (`None` = the experiment's default of 8).
    pub crash_points: Option<usize>,
    /// Extra cycle-denominated crash points for the `recovery` experiment.
    pub crash_at: Vec<u64>,
    /// Scenario spec files to run instead of a catalogue experiment
    /// (suite runner only; `--spec` greedily consumes every following
    /// non-flag argument, so shell globs like `examples/specs/*.toml`
    /// expand naturally).
    pub specs: Vec<PathBuf>,
    /// Where to write the NDJSON event trace (tracing off when absent).
    pub trace: Option<PathBuf>,
    /// Render an end-of-run component-stat profile table.
    pub profile: bool,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            jobs: default_jobs(),
            format: OutputFormat::Table,
            out: None,
            experiment: None,
            crash_points: None,
            crash_at: Vec::new(),
            specs: Vec::new(),
            trace: None,
            profile: false,
        }
    }
}

/// The usage string shared by all experiment binaries.
pub const USAGE: &str = "options:
  --jobs N             worker threads for sharding matrix cells (default: #cpus)
  --format FMT         table (default) | json | csv; json/csv adds a machine-readable dump
  --out PATH           write the json/csv dump to PATH instead of stdout
  --experiment NAME    (suite runner only) experiment to run, or 'all'
  --crash-points N     (recovery experiment) stratified crash points per cell (default 8)
  --crash-at CYCLE     (recovery experiment) add a crash at the given cycle; repeatable
  --spec PATH...       (suite runner only) run scenario spec files (.toml/.json) instead
                       of a catalogue experiment; globs expand naturally
  --trace PATH         write an NDJSON event trace (schema dhtm-trace-v1) to PATH
  --profile            print an end-of-run component-stat profile table
  --help               print this help";

impl HarnessOpts {
    /// Parses options from an argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending argument.
    pub fn parse<I, S>(args: I) -> Result<Self, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut opts = HarnessOpts::default();
        let mut args = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = args.next() {
            let mut value_for = |flag: &str| {
                args.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--jobs" | "-j" => {
                    let v = value_for("--jobs")?;
                    opts.jobs = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs needs a positive integer, got '{v}'"))?;
                }
                "--format" | "-f" => {
                    opts.format = value_for("--format")?.parse()?;
                }
                "--out" | "-o" => {
                    opts.out = Some(PathBuf::from(value_for("--out")?));
                }
                "--experiment" | "-e" => {
                    opts.experiment = Some(value_for("--experiment")?);
                }
                "--crash-points" => {
                    let v = value_for("--crash-points")?;
                    opts.crash_points =
                        Some(v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or_else(|| {
                            format!("--crash-points needs a positive integer, got '{v}'")
                        })?);
                }
                "--crash-at" => {
                    let v = value_for("--crash-at")?;
                    opts.crash_at.push(
                        v.parse::<u64>()
                            .map_err(|_| format!("--crash-at needs a cycle number, got '{v}'"))?,
                    );
                }
                "--spec" => {
                    // Greedy: `--spec a.toml b.toml c.json` (a shell glob
                    // expansion) loads every listed file. Any dash-prefixed
                    // argument ends the list — short flags like `-h` are
                    // flags, not spec paths.
                    opts.specs.push(PathBuf::from(value_for("--spec")?));
                    while args.peek().is_some_and(|a| !a.starts_with('-')) {
                        opts.specs.push(PathBuf::from(args.next().expect("peeked")));
                    }
                }
                "--trace" => {
                    opts.trace = Some(PathBuf::from(value_for("--trace")?));
                }
                "--profile" => {
                    opts.profile = true;
                }
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
            }
        }
        Ok(opts)
    }

    /// Parses the process arguments, printing usage and exiting on error.
    pub fn parse_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(if msg == USAGE { 0 } else { 2 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let opts = HarnessOpts::parse(Vec::<String>::new()).unwrap();
        assert!(opts.jobs >= 1);
        assert_eq!(opts.format, OutputFormat::Table);
        assert_eq!(opts.out, None);
        assert_eq!(opts.experiment, None);
    }

    #[test]
    fn parses_all_flags() {
        let opts = HarnessOpts::parse([
            "--jobs",
            "4",
            "--format",
            "json",
            "--out",
            "/tmp/results.json",
            "--experiment",
            "fig5",
        ])
        .unwrap();
        assert_eq!(opts.jobs, 4);
        assert_eq!(opts.format, OutputFormat::Json);
        assert_eq!(opts.out, Some(PathBuf::from("/tmp/results.json")));
        assert_eq!(opts.experiment.as_deref(), Some("fig5"));
    }

    #[test]
    fn parses_crash_flags() {
        let opts = HarnessOpts::parse([
            "--crash-points",
            "12",
            "--crash-at",
            "5000",
            "--crash-at",
            "9000",
        ])
        .unwrap();
        assert_eq!(opts.crash_points, Some(12));
        assert_eq!(opts.crash_at, vec![5000, 9000]);
    }

    #[test]
    fn spec_flag_is_greedy_over_glob_expansions() {
        let opts = HarnessOpts::parse([
            "--spec",
            "examples/specs/a.toml",
            "examples/specs/b.toml",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert_eq!(
            opts.specs,
            vec![
                PathBuf::from("examples/specs/a.toml"),
                PathBuf::from("examples/specs/b.toml")
            ]
        );
        assert_eq!(opts.jobs, 2);
        assert!(HarnessOpts::parse(["--spec"]).is_err());
        // Short flags end the greedy list instead of being eaten as paths.
        assert_eq!(
            HarnessOpts::parse(["--spec", "a.toml", "-j", "3"])
                .unwrap()
                .jobs,
            3
        );
    }

    #[test]
    fn parses_trace_and_profile_flags() {
        let opts = HarnessOpts::parse(["--trace", "/tmp/run.ndjson", "--profile"]).unwrap();
        assert_eq!(opts.trace, Some(PathBuf::from("/tmp/run.ndjson")));
        assert!(opts.profile);
        let defaults = HarnessOpts::default();
        assert_eq!(defaults.trace, None);
        assert!(!defaults.profile);
        assert!(HarnessOpts::parse(["--trace"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(HarnessOpts::parse(["--jobs", "0"]).is_err());
        assert!(HarnessOpts::parse(["--jobs", "abc"]).is_err());
        assert!(HarnessOpts::parse(["--format", "yaml"]).is_err());
        assert!(HarnessOpts::parse(["--out"]).is_err());
        assert!(HarnessOpts::parse(["--wat"]).is_err());
        assert!(HarnessOpts::parse(["--crash-points", "0"]).is_err());
        assert!(HarnessOpts::parse(["--crash-at", "soon"]).is_err());
    }

    #[test]
    fn help_returns_usage() {
        assert_eq!(HarnessOpts::parse(["--help"]).unwrap_err(), USAGE);
    }
}
