//! Property test: the driver's bucketed calendar queue schedules events
//! exactly like the `BinaryHeap<Reverse<(u64, usize)>>` it replaced.
//!
//! The driver's whole determinism story rests on one rule: the next event
//! is the pending `(time, core_index)` pair that is smallest under
//! lexicographic order — smallest time first, ties broken by the lower
//! core index. The calendar queue reimplements that rule with ring
//! buckets, an occupancy bitmap and a far-event overflow heap; any
//! divergence (a tie broken the other way inside a shared bucket, a
//! backoff resume sorted past the ring horizon) would silently reshuffle
//! the schedule and shift every figure.
//!
//! So: run real simulations — random workloads, every registered engine,
//! 1–16 cores — record the exact `(pop time, core, re-push time)` trace
//! the calendar queue produced, and replay it against a plain
//! `BinaryHeap`. Every pop must match event-for-event.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use dhtm_baselines::EngineRegistry;
use dhtm_scenario::{ResolvedSpec, SpecLimits};
use dhtm_sim::driver::StepEvent;
use dhtm_sim::Simulator;
use dhtm_types::config::BaseConfig;

/// One scheduled event as the driver executed it: the time and core the
/// queue popped, and the time the core was re-pushed with after the step.
type TraceEntry = (u64, usize, u64);

/// Runs `(engine, workload, cores, seed)` through the real driver and
/// records its complete schedule trace. The re-push time comes from
/// `StepEvent::Progress::time` — the driver always re-schedules the
/// stepped core at its post-step local clock.
fn schedule_trace(engine_idx: usize, workload: &str, cores: usize, seed: u64) -> Vec<TraceEntry> {
    let ids = EngineRegistry::builtin().ids();
    let engine_id = ids[engine_idx % ids.len()].clone();
    let cfg = BaseConfig::Small.resolve().with_num_cores(cores);
    // OLTP transactions are an order of magnitude larger than the
    // micro-benchmark batches; a smaller commit target keeps each proptest
    // case fast while still producing thousands of schedule events.
    let target_commits = match workload {
        "tatp" | "tpcc" => 3,
        _ => 12,
    };
    let resolved = ResolvedSpec::from_parts(
        &engine_id,
        workload,
        cfg,
        SpecLimits {
            target_commits,
            max_cycles: 20_000_000,
        },
        seed,
    );
    let (mut machine, mut engine, mut workload, limits) = resolved.components();
    let sim = Simulator::new();
    let mut session = sim.start(&mut machine, &mut engine, workload.as_mut(), &limits);
    let mut trace = Vec::new();
    while let Some(now) = session.next_event_time() {
        match session.step() {
            StepEvent::Progress { core, time, .. } => trace.push((now, core.get(), time)),
            StepEvent::Finished => break,
        }
    }
    trace
}

/// Replays a recorded trace against the reference scheduler: a binary
/// min-heap over `(time, core_index)`, seeded like the driver seeds its
/// queue (every core pending at time 0). Each recorded pop must be
/// exactly what the heap would have popped.
fn assert_heap_equivalent(num_cores: usize, trace: &[TraceEntry]) {
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..num_cores).map(|i| Reverse((0, i))).collect();
    for (step, &(now, core, repush)) in trace.iter().enumerate() {
        let Some(Reverse((t, c))) = heap.pop() else {
            panic!("heap exhausted at step {step} while the driver still had events");
        };
        assert_eq!(
            (t, c),
            (now, core),
            "step {step}: calendar queue popped ({now}, core {core}) \
             but the heap order is ({t}, core {c})"
        );
        assert!(repush >= now, "step {step}: time went backwards");
        heap.push(Reverse((repush, core)));
    }
}

proptest! {
    // Each case is a full (if small) simulation; the pinned seed makes
    // failures replayable via proptest-regressions.
    #![proptest_config(ProptestConfig::with_cases(8).with_rng_seed(0xD47A_15CA_2018_0006))]

    #[test]
    fn calendar_queue_schedules_exactly_like_a_binary_heap(
        engine_idx in 0usize..64,
        workload_idx in 0usize..dhtm_workloads::NAMES.len(),
        cores in 1usize..=16,
        seed in 0u64..u64::MAX,
    ) {
        let workload = dhtm_workloads::NAMES[workload_idx];
        let trace = schedule_trace(engine_idx, workload, cores, seed);
        prop_assert!(!trace.is_empty(), "the run must schedule at least one event");
        assert_heap_equivalent(cores, &trace);
    }
}

#[test]
fn every_builtin_engine_matches_the_heap_on_a_contended_run() {
    // Deterministic sweep across the whole catalogue at the paper's core
    // count: contention means aborts, and aborts mean exponential backoff
    // pushes far beyond the pop time — the exact resumes that would cross
    // a mis-handled calendar ring horizon.
    let n = EngineRegistry::builtin().ids().len();
    for engine_idx in 0..n {
        let trace = schedule_trace(engine_idx, "hash", 8, 0x15CA_2018);
        assert!(!trace.is_empty());
        assert_heap_equivalent(8, &trace);
        let max_jump = trace.iter().map(|&(now, _, t)| t - now).max().unwrap();
        assert!(
            max_jump >= 1,
            "engine {engine_idx}: trace never advanced time"
        );
    }
}
