//! Property test: the parallel harness is equivalence-checked against
//! serial execution. For the same matrix, ANY worker count must produce
//! bit-identical `RunStats` for every cell — the worker pool only shards
//! work, it must never change results. This is what lets every scaling PR
//! (more shards, more backends) trust the harness as its substrate.

use proptest::prelude::*;

use dhtm_harness::matrix::{CommitSpec, ConfigVariant, Matrix};
use dhtm_harness::runner::run_matrix;
use dhtm_types::policy::DesignKind;

/// A small but representative matrix: a lock-based design, an HTM design
/// and DHTM itself, two workload shapes, two core counts.
fn small_matrix(seed: u64) -> Matrix {
    Matrix::new()
        .engines([DesignKind::SoftwareOnly, DesignKind::Atom, DesignKind::Dhtm])
        .workloads(["queue", "hash"])
        .core_counts([2, 4])
        .config(ConfigVariant::small())
        .commits(CommitSpec::Fixed(5))
        .seed(seed)
}

proptest! {
    // Few cases: each runs 2 × 12 simulations. The seed makes failures
    // replayable via proptest-regressions.
    #![proptest_config(ProptestConfig::with_cases(4).with_rng_seed(0xD47A_15CA_2018_0002))]

    #[test]
    fn any_worker_count_is_bit_identical_to_serial(
        jobs in 2usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        let matrix = small_matrix(seed);
        let serial = run_matrix(&matrix, 1);
        let parallel = run_matrix(&matrix, jobs);
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            // Bit-identical per cell: coordinates AND every statistic.
            prop_assert_eq!(s, p);
        }
    }
}

#[test]
fn repeated_parallel_runs_are_self_consistent() {
    let matrix = small_matrix(7);
    let a = run_matrix(&matrix, 3);
    let b = run_matrix(&matrix, 3);
    assert_eq!(a, b);
}

#[test]
fn oltp_cells_are_parallel_safe_too() {
    // TATP carries host-side mutable state (locations, call forwarding);
    // each cell must rebuild it from the cell seed, so sharding cannot leak
    // state across cells.
    let matrix = Matrix::new()
        .engines([DesignKind::SoftwareOnly, DesignKind::Dhtm])
        .workloads(["tatp"])
        .core_counts([2])
        .config(ConfigVariant::small())
        .commits(CommitSpec::Fixed(3));
    assert_eq!(run_matrix(&matrix, 1), run_matrix(&matrix, 4));
}
