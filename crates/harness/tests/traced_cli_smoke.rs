//! End-to-end smoke of the observability CLI surface: `dhtm_experiments
//! --trace/--profile` writes a valid NDJSON stream and a profile table in
//! quick mode, and `trace_validate` (the CI gate) accepts that stream and
//! rejects a corrupted one. This drives the real binaries, so it covers the
//! whole path: matrix → instrumented runner → trace file → validator.

use std::process::Command;

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dhtm_{name}_{}", std::process::id()))
}

#[test]
fn traced_profiled_experiment_round_trips_through_the_validator() {
    let trace = scratch("trace.ndjson");
    let results = scratch("traced.json");
    let run = Command::new(env!("CARGO_BIN_EXE_dhtm_experiments"))
        .env("DHTM_BENCH_QUICK", "1")
        .args([
            "--experiment",
            "fig6",
            "--jobs",
            "2",
            "--trace",
            trace.to_str().unwrap(),
            "--profile",
            "--format",
            "json",
            "--out",
            results.to_str().unwrap(),
        ])
        .output()
        .expect("spawn dhtm_experiments");
    let stdout = String::from_utf8_lossy(&run.stdout);
    assert!(
        run.status.success(),
        "traced run failed:\n{}",
        String::from_utf8_lossy(&run.stderr)
    );
    assert!(
        stdout.contains("Component-stat profile"),
        "--profile printed no table:\n{stdout}"
    );
    assert!(
        stdout.contains("channel/busy_cycles"),
        "profile table misses channel probes:\n{stdout}"
    );

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    assert!(text.lines().count() > 0);
    assert!(text.lines().all(|l| l.contains("dhtm-trace-v1")));
    let json = std::fs::read_to_string(&results).expect("results written");
    assert!(
        json.contains("\"probes\": {"),
        "instrumented rows must carry probe objects"
    );
    assert!(json.contains("probe_channel_busy_cycles"));

    let validate = |path: &std::path::Path| {
        Command::new(env!("CARGO_BIN_EXE_trace_validate"))
            .arg(path)
            .output()
            .expect("spawn trace_validate")
    };
    let ok = validate(&trace);
    assert!(
        ok.status.success(),
        "validator rejected a harness-emitted trace:\n{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("events valid"));

    // A corrupted stream (schema field clobbered) must fail the gate.
    let bad = scratch("bad.ndjson");
    std::fs::write(&bad, text.replace("dhtm-trace-v1", "dhtm-trace-v0")).unwrap();
    let rejected = validate(&bad);
    assert!(
        !rejected.status.success(),
        "validator accepted a wrong-schema trace"
    );

    for f in [&trace, &results, &bad] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn plain_and_traced_runs_emit_identical_statistics() {
    let run = |extra: &[&str]| {
        let out = scratch(&format!("cmp{}.json", extra.len()));
        let mut args = vec![
            "--experiment",
            "fig6",
            "--jobs",
            "2",
            "--format",
            "json",
            "--out",
            out.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let status = Command::new(env!("CARGO_BIN_EXE_dhtm_experiments"))
            .env("DHTM_BENCH_QUICK", "1")
            .args(&args)
            .status()
            .expect("spawn dhtm_experiments");
        assert!(status.success());
        let json = std::fs::read_to_string(&out).expect("results written");
        let _ = std::fs::remove_file(&out);
        json
    };
    let plain = run(&[]);
    let profiled = run(&["--profile"]);
    // Strip everything probe-derived (the probe_* aggregate columns and
    // the nested probes object — both sit at the tail of each row):
    // every remaining statistic of every row must be byte-identical
    // between plain and instrumented runs.
    let strip = |json: &str| -> String {
        json.lines()
            .map(|line| match line.find(", \"probe_") {
                Some(i) => {
                    let trailing_comma = line.trim_end().ends_with("},");
                    format!("{}}}{}", &line[..i], if trailing_comma { "," } else { "" })
                }
                None => line.to_string(),
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip(&plain),
        strip(&profiled),
        "instrumentation perturbed a run"
    );
    assert!(!plain.contains("\"probes\""));
    assert!(profiled.contains("\"probes\""));
}
