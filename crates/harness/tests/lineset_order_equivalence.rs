//! Order-pinning property test for the `LineSet` engine-state swap.
//!
//! PR7 replaced every engine's `BTreeSet<LineAddr>` shadow sets (write
//! set, read set, overflow set, undo/log tracking) with the flat sorted
//! [`dhtm_cache::lineset::LineSet`], and the commit/abort `Vec`
//! materialisations with scratch-buffer walks. Set iteration order leaks
//! straight into the log/flush schedule, so the swap is only safe if the
//! new structure iterates *exactly* like the `BTreeSet` it replaced, on
//! every engine, at every core count.
//!
//! The pin has three layers, each covering what the others cannot:
//!
//! 1. `crates/cache/tests/flat_structures_property.rs` drives `LineSet`
//!    vs a real `BTreeSet<LineAddr>` through random op streams and
//!    asserts the *exact iteration order* after every mutation — the
//!    structure-level vs-reference pin, including the inline→spill
//!    boundary.
//! 2. The golden lattice (`golden_stats`/`golden_recovery`/`golden_spec`)
//!    pins absolute cycle-level outcomes against the pre-swap
//!    implementation for the fixed golden configurations — if the swap
//!    had reordered a single flush, those exact-equality pins would trip.
//! 3. This test widens layer 2 across the whole catalogue: every one of
//!    the 9 registry engines × 1–16 cores × random workloads/seeds, run
//!    through the real driver twice. The complete `RunStats` fingerprint
//!    must be bit-identical between the two runs — a `LineSet` whose
//!    order depended on insertion history, allocation reuse, or spill
//!    state would diverge here, because the second run starts from a
//!    freshly allocated engine while a long run reuses cleared
//!    (capacity-retaining) sets.

use proptest::prelude::*;

use dhtm_baselines::EngineRegistry;
use dhtm_scenario::{ResolvedSpec, SpecLimits};
use dhtm_sim::Simulator;
use dhtm_types::config::BaseConfig;

/// Runs `(engine, workload, cores, seed)` through the real driver and
/// returns the complete outcome fingerprint: every field of the final
/// `RunStats` (committed, cycles, aborts by reason, per-tx footprints,
/// log traffic), which is downstream of every set-iteration order in the
/// engine's commit/abort paths.
fn run_fingerprint(engine_idx: usize, workload: &str, cores: usize, seed: u64) -> String {
    let ids = EngineRegistry::builtin().ids();
    let engine_id = ids[engine_idx % ids.len()].clone();
    let cfg = BaseConfig::Small.resolve().with_num_cores(cores);
    let target_commits = match workload {
        "tatp" | "tpcc" => 3,
        _ => 12,
    };
    let resolved = ResolvedSpec::from_parts(
        &engine_id,
        workload,
        cfg,
        SpecLimits {
            target_commits,
            max_cycles: 20_000_000,
        },
        seed,
    );
    let (mut machine, mut engine, mut workload, limits) = resolved.components();
    let outcome = Simulator::new().run(&mut machine, &mut engine, workload.as_mut(), &limits);
    format!("{:?}", outcome.stats)
}

proptest! {
    // Each case is two full (if small) simulations; the pinned seed makes
    // failures replayable via proptest-regressions.
    #![proptest_config(ProptestConfig::with_cases(8).with_rng_seed(0xD47A_15CA_2018_0007))]

    #[test]
    fn engine_outcomes_are_bit_identical_across_reruns(
        engine_idx in 0usize..64,
        workload_idx in 0usize..dhtm_workloads::NAMES.len(),
        cores in 1usize..=16,
        seed in 0u64..u64::MAX,
    ) {
        let workload = dhtm_workloads::NAMES[workload_idx];
        let first = run_fingerprint(engine_idx, workload, cores, seed);
        let second = run_fingerprint(engine_idx, workload, cores, seed);
        prop_assert_eq!(
            &first, &second,
            "engine {} on {} with {} cores diverged between identical runs",
            engine_idx, workload, cores
        );
        prop_assert!(
            first.contains("committed"),
            "fingerprint must carry the stats payload"
        );
    }
}

#[test]
fn every_builtin_engine_is_deterministic_on_a_contended_run() {
    // Deterministic sweep across the whole catalogue at the paper's core
    // count plus the 1-core and 16-core extremes: contention produces
    // aborts, and aborts exercise the scratch-buffer invalidation and
    // undo walks that replaced the per-abort `Vec`s.
    let n = EngineRegistry::builtin().ids().len();
    assert_eq!(n, 9, "the registry should carry the 9 builtin engines");
    for engine_idx in 0..n {
        for &cores in &[1usize, 8, 16] {
            let a = run_fingerprint(engine_idx, "hash", cores, 0x15CA_2018);
            let b = run_fingerprint(engine_idx, "hash", cores, 0x15CA_2018);
            assert_eq!(
                a, b,
                "engine {engine_idx} with {cores} cores diverged between identical runs"
            );
            assert!(
                a.contains("committed: "),
                "engine {engine_idx}: fingerprint must carry the stats payload"
            );
        }
    }
}
