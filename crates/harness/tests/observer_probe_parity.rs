//! Observer/probe parity property test for the observability layer.
//!
//! The contract behind every `--trace`/`--profile` run is that
//! instrumentation is pure output: attaching a `SimObserver`, recording an
//! NDJSON trace and harvesting the component-probe registry must leave the
//! simulated run bit-identical to an unobserved one. A probe that mutated
//! state it reads — or an observer hook that perturbed the event calendar —
//! would silently invalidate every instrumented result.
//!
//! Each case runs one (engine, workload, cores, seed) cell twice through
//! the real driver: plain via `ResolvedSpec::run`, and instrumented via
//! `run_probed` with a `TraceRecorder` attached. The complete `RunStats`
//! fingerprint must match exactly, across all 9 registry engines and
//! 1–16 cores. The trace stream itself is then held to the NDJSON schema:
//! every emitted line validates against `dhtm-trace-v1` and survives a
//! parse → re-render round trip.

use proptest::prelude::*;

use dhtm_baselines::EngineRegistry;
use dhtm_obs::{event_from_line, validate_line};
use dhtm_scenario::{ResolvedSpec, SpecLimits, TraceRecorder};
use dhtm_types::config::BaseConfig;

fn resolved_cell(engine_idx: usize, workload: &str, cores: usize, seed: u64) -> ResolvedSpec {
    let ids = EngineRegistry::builtin().ids();
    let engine_id = ids[engine_idx % ids.len()].clone();
    let cfg = BaseConfig::Small.resolve().with_num_cores(cores);
    let target_commits = match workload {
        "tatp" | "tpcc" => 3,
        _ => 12,
    };
    ResolvedSpec::from_parts(
        &engine_id,
        workload,
        cfg,
        SpecLimits {
            target_commits,
            max_cycles: 20_000_000,
        },
        seed,
    )
}

proptest! {
    // Each case is two full (if small) simulations; the pinned seed makes
    // failures replayable via proptest-regressions.
    #![proptest_config(ProptestConfig::with_cases(8).with_rng_seed(0xD47A_15CA_2018_0007))]

    #[test]
    fn instrumented_runs_are_bit_identical_and_traces_validate(
        engine_idx in 0usize..64,
        workload_idx in 0usize..dhtm_workloads::NAMES.len(),
        cores in 1usize..=16,
        seed in 0u64..u64::MAX,
    ) {
        let workload = dhtm_workloads::NAMES[workload_idx];
        let resolved = resolved_cell(engine_idx, workload, cores, seed);

        let plain = resolved.run().stats;
        let mut recorder = TraceRecorder::new(format!("parity/{workload}/c{cores}"));
        let (instrumented, registry) = resolved.run_probed(Some(&mut recorder));
        recorder.finish(&instrumented.stats, Some(&registry));

        prop_assert_eq!(
            format!("{:?}", plain),
            format!("{:?}", instrumented.stats),
            "observer+probes perturbed the run (engine_idx {}, {}, {} cores, seed {})",
            engine_idx, workload, cores, seed
        );

        // Probe registry sanity: it must reflect the run it was read from.
        prop_assert_eq!(registry.counter("mem/nvm_line_reads"), plain.nvm_line_reads);
        prop_assert!(!registry.is_empty());

        // Every trace line obeys the versioned schema and round-trips
        // through the parser: parse → TraceEvent → render → identical line.
        for line in recorder.lines() {
            validate_line(&line)
                .unwrap_or_else(|e| panic!("schema violation: {e}\n  {line}"));
            let event = event_from_line(&line).unwrap();
            prop_assert_eq!(&event.to_ndjson(), &line, "NDJSON round trip drifted");
        }
    }
}
