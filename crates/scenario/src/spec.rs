//! The typed, validating, serializable simulation spec.

use std::fmt;
use std::str::FromStr;

use dhtm_baselines::registry::{self, EngineId};
use dhtm_sim::driver::SimulationResult;
use dhtm_sim::observer::SimObserver;
use dhtm_types::config::{BaseConfig, ConfigOverlay, SystemConfig};
use dhtm_types::seed::{content_hash64, stable_cell_seed};

use crate::exec::ResolvedSpec;
use crate::format;

/// Termination limits carried by a spec (the serializable face of
/// [`dhtm_sim::driver::RunLimits`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecLimits {
    /// Stop once this many transactions have committed across all cores.
    pub target_commits: u64,
    /// Hard upper bound on simulated cycles (livelock guard).
    pub max_cycles: u64,
}

impl Default for SpecLimits {
    /// Exactly [`dhtm_sim::driver::RunLimits::evaluation`], which every
    /// harness cell runs under (derived, not copied, so the two can never
    /// drift).
    fn default() -> Self {
        let limits = dhtm_sim::driver::RunLimits::evaluation();
        SpecLimits {
            target_commits: limits.target_commits,
            max_cycles: limits.max_cycles,
        }
    }
}

/// A complete, serializable description of one simulation run: *which
/// engine* (by registry id), *which workload* (by name), *which machine*
/// (named base + sparse overlay), *how long* (limits) and *which stream*
/// (base seed). The single typed entry point the harness matrix, the crash
/// matrix, the bench bins and the spec-file CLI all construct runs
/// through.
///
/// ```
/// use dhtm_scenario::SimSpec;
/// use dhtm_types::config::BaseConfig;
///
/// let spec = SimSpec::builder("dhtm", "hash")
///     .base(BaseConfig::Small)
///     .commits(10)
///     .build()
///     .unwrap();
/// let result = spec.run().unwrap();
/// assert_eq!(result.stats.committed, 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// The engine's registry id.
    pub engine: EngineId,
    /// The workload name ("queue".."rbtree", "tatp", "tpcc").
    pub workload: String,
    /// The named base machine configuration.
    pub base: BaseConfig,
    /// Sparse overrides applied on top of the base.
    pub overlay: ConfigOverlay,
    /// Termination limits.
    pub limits: SpecLimits,
    /// Base seed; the workload stream seed is derived from it via
    /// [`SimSpec::derived_seed`].
    pub seed: u64,
}

impl SimSpec {
    /// Starts building a spec for `engine` on `workload`.
    pub fn builder(engine: impl Into<EngineId>, workload: impl Into<String>) -> SimSpecBuilder {
        SimSpecBuilder {
            spec: SimSpec {
                engine: engine.into(),
                workload: workload.into(),
                base: BaseConfig::Isca18,
                overlay: ConfigOverlay::none(),
                limits: SpecLimits::default(),
                seed: crate::DEFAULT_SEED,
            },
        }
    }

    /// The fully resolved machine configuration (base + overlay).
    pub fn config(&self) -> SystemConfig {
        self.overlay.apply(self.base.resolve())
    }

    /// The workload-stream seed: a content hash of the spec's
    /// workload-facing coordinates, identical to the experiment harness's
    /// historical per-cell derivation. The engine, the config (beyond the
    /// core count) and the limits are deliberately *not* mixed in, so every
    /// engine and config-sweep point of a (workload, cores) group replays
    /// the same transaction stream.
    pub fn derived_seed(&self) -> u64 {
        stable_cell_seed(self.seed, &self.workload, self.config().num_cores)
    }

    /// Stable content-hash identity of the spec: a 64-bit hash of its
    /// canonical TOML form. Two specs hash equal iff every field that can
    /// affect the run is equal; the hash is stable across platforms and
    /// toolchains (see [`content_hash64`]).
    pub fn content_hash(&self) -> u64 {
        content_hash64(self.to_toml().as_bytes())
    }

    /// The canonical text form of [`SimSpec::content_hash`]: zero-padded
    /// 16-character lowercase hex ([`dhtm_types::seed::hash_hex`]). This is
    /// the form used everywhere a hash is printed, used as a result-store
    /// filename or sent over the service wire protocol.
    pub fn content_hash_hex(&self) -> String {
        dhtm_types::seed::hash_hex(self.content_hash())
    }

    /// Validates the spec: the engine must be registered, the workload
    /// known, the resolved config internally consistent and the limits
    /// positive.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), SpecError> {
        if registry::resolve(&self.engine).is_none() {
            return Err(SpecError::UnknownEngine(self.engine.clone()));
        }
        if !dhtm_workloads::is_known(&self.workload) {
            return Err(SpecError::UnknownWorkload(self.workload.clone()));
        }
        self.config().validate().map_err(SpecError::InvalidConfig)?;
        if self.limits.target_commits == 0 {
            return Err(SpecError::InvalidLimits(
                "target_commits must be > 0".into(),
            ));
        }
        if self.limits.max_cycles == 0 {
            return Err(SpecError::InvalidLimits("max_cycles must be > 0".into()));
        }
        Ok(())
    }

    /// Resolves the spec against the process-wide engine registry into a
    /// runnable form.
    ///
    /// # Errors
    ///
    /// Fails validation errors through unchanged.
    pub fn resolve(&self) -> Result<ResolvedSpec, SpecError> {
        self.validate()?;
        Ok(ResolvedSpec::from_spec(self))
    }

    /// Validates, resolves and runs the spec to completion.
    ///
    /// # Errors
    ///
    /// Fails if the spec does not validate.
    pub fn run(&self) -> Result<SimulationResult, SpecError> {
        Ok(self.resolve()?.run())
    }

    /// Like [`SimSpec::run`], streaming every semantic event of the run to
    /// `observer` (see [`dhtm_sim::observer::SimObserver`]).
    ///
    /// # Errors
    ///
    /// Fails if the spec does not validate.
    pub fn run_with_observer(
        &self,
        observer: &mut dyn SimObserver,
    ) -> Result<SimulationResult, SpecError> {
        Ok(self.resolve()?.run_with_observer(observer))
    }

    /// Serialises the spec to its canonical TOML form.
    pub fn to_toml(&self) -> String {
        format::to_toml(self)
    }

    /// Parses a spec from TOML.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] naming the offending line or key.
    pub fn from_toml(input: &str) -> Result<Self, SpecError> {
        format::from_toml(input)
    }

    /// Serialises the spec to its canonical JSON form.
    pub fn to_json(&self) -> String {
        format::to_json(self)
    }

    /// Parses a spec from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] describing the syntax problem.
    pub fn from_json(input: &str) -> Result<Self, SpecError> {
        format::from_json(input)
    }

    /// Loads a spec from a `.toml` or `.json` file (decided by extension).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] for unreadable files, unknown
    /// extensions or malformed content.
    pub fn load(path: &std::path::Path) -> Result<Self, SpecError> {
        let content = std::fs::read_to_string(path)
            .map_err(|e| SpecError::Parse(format!("cannot read {}: {e}", path.display())))?;
        match path.extension().and_then(|e| e.to_str()) {
            Some("toml") => Self::from_toml(&content),
            Some("json") => Self::from_json(&content),
            other => Err(SpecError::Parse(format!(
                "unsupported spec extension {other:?} for {} (toml|json)",
                path.display()
            ))),
        }
    }
}

/// Builder with validation at the end — the ergonomic way to construct a
/// [`SimSpec`] in code (files go through [`SimSpec::from_toml`] /
/// [`SimSpec::from_json`]).
#[derive(Debug, Clone)]
pub struct SimSpecBuilder {
    spec: SimSpec,
}

impl SimSpecBuilder {
    /// Sets the base machine configuration.
    #[must_use]
    pub fn base(mut self, base: BaseConfig) -> Self {
        self.spec.base = base;
        self
    }

    /// Sets the config overlay.
    #[must_use]
    pub fn overlay(mut self, overlay: ConfigOverlay) -> Self {
        self.spec.overlay = overlay;
        self
    }

    /// Sets the commit target.
    #[must_use]
    pub fn commits(mut self, target_commits: u64) -> Self {
        self.spec.limits.target_commits = target_commits;
        self
    }

    /// Sets the simulated-cycle cap.
    #[must_use]
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.spec.limits.max_cycles = max_cycles;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.spec.seed = seed;
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Returns the first validation violation.
    pub fn build(self) -> Result<SimSpec, SpecError> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// Returns the spec without validating (for tests that need invalid
    /// specs, and for constructing specs before registering their engine).
    pub fn build_unchecked(self) -> SimSpec {
        self.spec
    }
}

/// Errors from spec validation, parsing or loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The engine id is not registered (register it via
    /// `dhtm_baselines::registry::register_global` first).
    UnknownEngine(EngineId),
    /// The workload name is not known to `dhtm_workloads::by_name`.
    UnknownWorkload(String),
    /// The resolved configuration failed `SystemConfig::validate`.
    InvalidConfig(String),
    /// A limit is out of range.
    InvalidLimits(String),
    /// The TOML/JSON input (or file) could not be parsed.
    Parse(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownEngine(id) => write!(
                f,
                "unknown engine '{id}' (not in the registry; registered: {})",
                registry::global_snapshot()
                    .ids_iter()
                    .map(EngineId::as_str)
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            SpecError::UnknownWorkload(name) => write!(f, "unknown workload '{name}'"),
            SpecError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SpecError::InvalidLimits(msg) => write!(f, "invalid limits: {msg}"),
            SpecError::Parse(msg) => write!(f, "spec parse error: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl FromStr for SimSpec {
    type Err = SpecError;

    /// Parses TOML (the canonical text form).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::from_toml(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn builder_produces_a_valid_runnable_spec() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(8)
            .seed(7)
            .build()
            .unwrap();
        let result = spec.run().unwrap();
        assert_eq!(result.stats.committed, 8);
        assert_eq!(result.design, DesignKind::Dhtm);
        assert_eq!(result.workload, "hash");
    }

    #[test]
    fn validation_rejects_unknown_engine_and_workload() {
        let bad_engine = SimSpec::builder("warp-drive", "hash").build_unchecked();
        assert!(matches!(
            bad_engine.validate(),
            Err(SpecError::UnknownEngine(_))
        ));
        let bad_workload = SimSpec::builder(DesignKind::Dhtm, "ycsb").build_unchecked();
        assert!(matches!(
            bad_workload.validate(),
            Err(SpecError::UnknownWorkload(_))
        ));
    }

    #[test]
    fn validation_rejects_bad_config_and_limits() {
        let bad_cfg = SimSpec::builder(DesignKind::Dhtm, "hash")
            .overlay(ConfigOverlay {
                read_signature_bits: Some(100),
                ..Default::default()
            })
            .build_unchecked();
        assert!(matches!(
            bad_cfg.validate(),
            Err(SpecError::InvalidConfig(_))
        ));
        let bad_limits = SimSpec::builder(DesignKind::Dhtm, "hash")
            .commits(0)
            .build_unchecked();
        assert!(matches!(
            bad_limits.validate(),
            Err(SpecError::InvalidLimits(_))
        ));
    }

    #[test]
    fn derived_seed_matches_the_harness_cell_derivation() {
        let spec = SimSpec::builder(DesignKind::SoftwareOnly, "queue")
            .base(BaseConfig::Small)
            .overlay(ConfigOverlay::none().with_num_cores(2))
            .seed(0x15CA_2018)
            .build()
            .unwrap();
        assert_eq!(
            spec.derived_seed(),
            stable_cell_seed(0x15CA_2018, "queue", 2)
        );
        // Engine-independent: a different engine, same stream.
        let other = SimSpec {
            engine: DesignKind::Dhtm.into(),
            ..spec.clone()
        };
        assert_eq!(spec.derived_seed(), other.derived_seed());
        // Config-independent beyond the core count.
        let swept = SimSpec {
            overlay: spec.overlay.with_log_buffer_entries(8),
            ..spec.clone()
        };
        assert_eq!(spec.derived_seed(), swept.derived_seed());
    }

    #[test]
    fn content_hash_distinguishes_every_field() {
        let base = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .build_unchecked();
        let variants = [
            SimSpec {
                engine: EngineId::new("dhtm-instant"),
                ..base.clone()
            },
            SimSpec {
                workload: "queue".into(),
                ..base.clone()
            },
            SimSpec {
                base: BaseConfig::Isca18,
                ..base.clone()
            },
            SimSpec {
                overlay: base.overlay.with_num_cores(2),
                ..base.clone()
            },
            SimSpec {
                seed: base.seed + 1,
                ..base.clone()
            },
            {
                let mut s = base.clone();
                s.limits.target_commits += 1;
                s
            },
        ];
        for v in &variants {
            assert_ne!(v.content_hash(), base.content_hash(), "{v:?}");
        }
        assert_eq!(base.clone().content_hash(), base.content_hash());
    }

    #[test]
    fn content_hash_hex_matches_the_canonical_formatter() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .build_unchecked();
        let hex = spec.content_hash_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(hex, dhtm_types::seed::hash_hex(spec.content_hash()));
        assert_eq!(
            dhtm_types::seed::parse_hash_hex(&hex),
            Some(spec.content_hash())
        );
    }
}
