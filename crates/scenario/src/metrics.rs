//! A streaming metrics sink over the [`SimObserver`] interface.
//!
//! Where [`dhtm_types::stats::RunStats`] is the *end-of-run* aggregate the
//! driver produces, [`MetricsSink`] watches the run *as it executes*:
//! commit timestamps stream in as they happen, abort reasons are tallied
//! live, and the sink can report instantaneous throughput at any cut —
//! which is what progress displays, long-run monitoring and windowed
//! throughput series need. It is also the reference implementation of a
//! non-trivial observer (the crash subsystem's profile recorder is the
//! other).

use dhtm_sim::observer::{SimObserver, StepContext};
use dhtm_types::stats::AbortReason;

/// Streaming per-run metrics collected through observer callbacks.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    /// Logical transactions fetched from the workload.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborted attempts, tallied per reason (indexed by
    /// [`AbortReason::index`]).
    aborts: [u64; AbortReason::ALL.len()],
    /// Steps that advanced the durable-mutation clock.
    pub durable_ticks: u64,
    /// Total durable mutations seen (final clock value at the last tick).
    pub durable_mutations: u64,
    /// Armed crash points crossed.
    pub crash_points: u64,
    /// The simulated cycle of every `stride`-th commit, in commit order —
    /// the streaming throughput series. Non-decreasing: the driver delivers
    /// observer callbacks in simulated-time order.
    pub commit_cycles: Vec<u64>,
    /// Sampling stride for `commit_cycles` (1 = record every commit).
    stride: u64,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink {
            begins: 0,
            commits: 0,
            aborts: [0; AbortReason::ALL.len()],
            durable_ticks: 0,
            durable_mutations: 0,
            crash_points: 0,
            commit_cycles: Vec::new(),
            stride: 1,
        }
    }
}

impl MetricsSink {
    /// A fresh, empty sink recording every commit cycle exactly.
    pub fn new() -> Self {
        Self::default()
    }

    /// A sink that records only every `stride`-th commit cycle, bounding
    /// `commit_cycles` to `⌈commits / stride⌉` entries for long runs. The
    /// scalar tallies (`commits`, aborts, ...) stay exact; windowed counts
    /// become stride-scaled estimates (see
    /// [`MetricsSink::commits_in_window`]).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    pub fn with_commit_stride(stride: u64) -> Self {
        assert!(stride > 0, "commit-cycle stride must be positive");
        MetricsSink {
            stride,
            ..Self::default()
        }
    }

    /// The commit-cycle sampling stride (1 = exact).
    pub fn commit_stride(&self) -> u64 {
        self.stride
    }

    /// Total aborted attempts across all reasons.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Aborts recorded for one reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        self.aborts[reason.index()]
    }

    /// Committed transactions per million cycles up to the latest commit
    /// seen so far (0.0 before the first commit — never NaN/inf, matching
    /// the [`dhtm_types::stats::RunStats::throughput_per_mcycle`] guard).
    pub fn throughput_so_far(&self) -> f64 {
        match self.commit_cycles.last() {
            Some(&last) if last > 0 => self.commits as f64 * 1.0e6 / last as f64,
            _ => 0.0,
        }
    }

    /// Commits that landed in the half-open cycle window `[from, to)` —
    /// the primitive for windowed throughput series. Two binary searches
    /// over the sorted cycle series, not a scan.
    ///
    /// With a sampling stride above 1 this is an estimate: the count of
    /// *sampled* commits in the window scaled by the stride (exact to
    /// within one stride over the whole run).
    pub fn commits_in_window(&self, from: u64, to: u64) -> u64 {
        let lo = self.commit_cycles.partition_point(|&c| c < from);
        let hi = self.commit_cycles.partition_point(|&c| c < to.max(from));
        (hi - lo) as u64 * self.stride
    }

    /// The windowed throughput series: commits per consecutive
    /// `window`-cycle bucket from cycle 0 through the last recorded commit
    /// (empty if nothing committed). Stride-scaled like
    /// [`MetricsSink::commits_in_window`].
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn throughput_series(&self, window: u64) -> Vec<u64> {
        assert!(window > 0, "window must be positive");
        let Some(&last) = self.commit_cycles.last() else {
            return Vec::new();
        };
        (0..=last / window)
            .map(|k| self.commits_in_window(k * window, (k + 1) * window))
            .collect()
    }
}

impl SimObserver for MetricsSink {
    fn on_begin(&mut self, _ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        self.begins += 1;
    }

    fn on_commit(&mut self, ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        debug_assert!(
            self.commit_cycles.last().is_none_or(|&l| l <= ctx.now),
            "commit callbacks must arrive in simulated-time order"
        );
        if self.commits.is_multiple_of(self.stride) {
            self.commit_cycles.push(ctx.now);
        }
        self.commits += 1;
    }

    fn on_abort(&mut self, _ctx: &StepContext<'_>, reason: AbortReason) {
        self.aborts[reason.index()] += 1;
    }

    fn on_durable_tick(&mut self, ctx: &StepContext<'_>) {
        self.durable_ticks += 1;
        self.durable_mutations = self.durable_mutations.max(ctx.mutations_after);
    }

    fn on_crash_point(&mut self, _ctx: &StepContext<'_>, _point: u64) {
        self.crash_points += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use dhtm_types::config::BaseConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn sink_streams_commits_and_matches_final_stats() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(10)
            .seed(5)
            .build()
            .unwrap();
        let mut sink = MetricsSink::new();
        let result = spec.run_with_observer(&mut sink).unwrap();

        assert_eq!(sink.commits, result.stats.committed);
        assert_eq!(sink.total_aborts(), result.stats.total_aborts());
        assert_eq!(sink.commit_cycles.len(), 10);
        assert!(sink.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        assert!(sink.begins >= sink.commits);
        assert!(sink.durable_ticks > 0, "DHTM streams durable log records");
        assert!(sink.throughput_so_far() > 0.0);
        let last = *sink.commit_cycles.last().unwrap();
        assert_eq!(sink.commits_in_window(0, last + 1), 10);
    }

    #[test]
    fn windowed_series_sums_to_total_commits() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(25)
            .seed(9)
            .build()
            .unwrap();
        let mut sink = MetricsSink::new();
        spec.run_with_observer(&mut sink).unwrap();
        let window = 1_000;
        let series = sink.throughput_series(window);
        assert_eq!(series.iter().sum::<u64>(), sink.commits);
        // Each bucket agrees with a brute-force scan over the raw series.
        for (k, &count) in series.iter().enumerate() {
            let (from, to) = (k as u64 * window, (k as u64 + 1) * window);
            let brute = sink
                .commit_cycles
                .iter()
                .filter(|&&c| from <= c && c < to)
                .count() as u64;
            assert_eq!(count, brute, "bucket {k}");
        }
        // Degenerate windows are empty, not panics.
        assert_eq!(sink.commits_in_window(10, 10), 0);
        assert_eq!(sink.commits_in_window(20, 10), 0);
    }

    #[test]
    fn stride_downsampling_bounds_memory_and_approximates_exact() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(40)
            .seed(11)
            .build()
            .unwrap();
        let mut exact = MetricsSink::new();
        spec.run_with_observer(&mut exact).unwrap();
        let stride = 8;
        let mut sampled = MetricsSink::with_commit_stride(stride);
        spec.run_with_observer(&mut sampled).unwrap();

        // Scalar tallies stay exact.
        assert_eq!(sampled.commits, exact.commits);
        assert_eq!(sampled.total_aborts(), exact.total_aborts());
        // Memory is bounded to ceil(commits / stride).
        assert_eq!(
            sampled.commit_cycles.len() as u64,
            exact.commits.div_ceil(stride)
        );
        // The whole-run windowed count is exact to within one stride.
        let full = sampled.commits_in_window(0, u64::MAX);
        assert!(
            full.abs_diff(exact.commits) < stride,
            "estimate {full} vs exact {}",
            exact.commits
        );
        // Exact default is bit-identical to the historical behaviour.
        assert_eq!(exact.commit_stride(), 1);
        assert_eq!(exact.commit_cycles.len() as u64, exact.commits);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_stride_panics() {
        MetricsSink::with_commit_stride(0);
    }

    #[test]
    fn observing_with_a_sink_does_not_change_the_run() {
        let spec = SimSpec::builder(DesignKind::SoftwareOnly, "queue")
            .base(BaseConfig::Small)
            .commits(6)
            .build()
            .unwrap();
        let plain = spec.run().unwrap().stats;
        let mut sink = MetricsSink::new();
        let observed = spec.run_with_observer(&mut sink).unwrap().stats;
        assert_eq!(plain, observed);
    }

    #[test]
    fn empty_sink_reports_finite_zeroes() {
        let sink = MetricsSink::new();
        assert_eq!(sink.throughput_so_far(), 0.0);
        assert_eq!(sink.total_aborts(), 0);
        assert_eq!(sink.commits_in_window(0, u64::MAX), 0);
        for r in AbortReason::ALL {
            assert_eq!(sink.aborts_for(r), 0);
        }
    }
}
