//! A streaming metrics sink over the [`SimObserver`] interface.
//!
//! Where [`dhtm_types::stats::RunStats`] is the *end-of-run* aggregate the
//! driver produces, [`MetricsSink`] watches the run *as it executes*:
//! commit timestamps stream in as they happen, abort reasons are tallied
//! live, and the sink can report instantaneous throughput at any cut —
//! which is what progress displays, long-run monitoring and windowed
//! throughput series need. It is also the reference implementation of a
//! non-trivial observer (the crash subsystem's profile recorder is the
//! other).

use dhtm_sim::observer::{SimObserver, StepContext};
use dhtm_types::stats::AbortReason;

/// Streaming per-run metrics collected through observer callbacks.
#[derive(Debug, Default, Clone)]
pub struct MetricsSink {
    /// Logical transactions fetched from the workload.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborted attempts, tallied per reason (indexed like
    /// [`AbortReason::ALL`]).
    aborts: [u64; AbortReason::ALL.len()],
    /// Steps that advanced the durable-mutation clock.
    pub durable_ticks: u64,
    /// Total durable mutations seen (final clock value at the last tick).
    pub durable_mutations: u64,
    /// Armed crash points crossed.
    pub crash_points: u64,
    /// The simulated cycle of each commit, in commit order — the streaming
    /// throughput series.
    pub commit_cycles: Vec<u64>,
}

impl MetricsSink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total aborted attempts across all reasons.
    pub fn total_aborts(&self) -> u64 {
        self.aborts.iter().sum()
    }

    /// Aborts recorded for one reason.
    pub fn aborts_for(&self, reason: AbortReason) -> u64 {
        let idx = AbortReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("ALL is exhaustive");
        self.aborts[idx]
    }

    /// Committed transactions per million cycles up to the latest commit
    /// seen so far (0.0 before the first commit — never NaN/inf, matching
    /// the [`dhtm_types::stats::RunStats::throughput_per_mcycle`] guard).
    pub fn throughput_so_far(&self) -> f64 {
        match self.commit_cycles.last() {
            Some(&last) if last > 0 => self.commits as f64 * 1.0e6 / last as f64,
            _ => 0.0,
        }
    }

    /// Commits that landed in the half-open cycle window `[from, to)` —
    /// the primitive for windowed throughput series.
    pub fn commits_in_window(&self, from: u64, to: u64) -> u64 {
        self.commit_cycles
            .iter()
            .filter(|&&c| from <= c && c < to)
            .count() as u64
    }
}

impl SimObserver for MetricsSink {
    fn on_begin(&mut self, _ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        self.begins += 1;
    }

    fn on_commit(&mut self, ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        self.commits += 1;
        self.commit_cycles.push(ctx.now);
    }

    fn on_abort(&mut self, _ctx: &StepContext<'_>, reason: AbortReason) {
        let idx = AbortReason::ALL
            .iter()
            .position(|r| *r == reason)
            .expect("ALL is exhaustive");
        self.aborts[idx] += 1;
    }

    fn on_durable_tick(&mut self, ctx: &StepContext<'_>) {
        self.durable_ticks += 1;
        self.durable_mutations = self.durable_mutations.max(ctx.mutations_after);
    }

    fn on_crash_point(&mut self, _ctx: &StepContext<'_>, _point: u64) {
        self.crash_points += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use dhtm_types::config::BaseConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn sink_streams_commits_and_matches_final_stats() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(10)
            .seed(5)
            .build()
            .unwrap();
        let mut sink = MetricsSink::new();
        let result = spec.run_with_observer(&mut sink).unwrap();

        assert_eq!(sink.commits, result.stats.committed);
        assert_eq!(sink.total_aborts(), result.stats.total_aborts());
        assert_eq!(sink.commit_cycles.len(), 10);
        assert!(sink.commit_cycles.windows(2).all(|w| w[0] <= w[1]));
        assert!(sink.begins >= sink.commits);
        assert!(sink.durable_ticks > 0, "DHTM streams durable log records");
        assert!(sink.throughput_so_far() > 0.0);
        let last = *sink.commit_cycles.last().unwrap();
        assert_eq!(sink.commits_in_window(0, last + 1), 10);
    }

    #[test]
    fn observing_with_a_sink_does_not_change_the_run() {
        let spec = SimSpec::builder(DesignKind::SoftwareOnly, "queue")
            .base(BaseConfig::Small)
            .commits(6)
            .build()
            .unwrap();
        let plain = spec.run().unwrap().stats;
        let mut sink = MetricsSink::new();
        let observed = spec.run_with_observer(&mut sink).unwrap().stats;
        assert_eq!(plain, observed);
    }

    #[test]
    fn empty_sink_reports_finite_zeroes() {
        let sink = MetricsSink::new();
        assert_eq!(sink.throughput_so_far(), 0.0);
        assert_eq!(sink.total_aborts(), 0);
        assert_eq!(sink.commits_in_window(0, u64::MAX), 0);
        for r in AbortReason::ALL {
            assert_eq!(sink.aborts_for(r), 0);
        }
    }
}
