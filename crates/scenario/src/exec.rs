//! Executing a spec: the bridge from the serializable [`SimSpec`] to the
//! simulator.
//!
//! A [`ResolvedSpec`] is the runnable form: the engine factory has been
//! looked up in the registry, the config materialised and the workload
//! seed derived. Everything in the workspace that runs a simulation — the
//! harness worker pool, the crash prober, the spec-file CLI — funnels
//! through this one construction path, so "how a run is built" is defined
//! exactly once.

use dhtm_baselines::registry::{self, EngineFactory, EngineId};
use dhtm_baselines::EngineDispatch;
use dhtm_obs::ProbeRegistry;
use dhtm_sim::driver::{RunLimits, SimulationResult, Simulator};
use dhtm_sim::engine::TxEngine;
use dhtm_sim::machine::Machine;
use dhtm_sim::observer::SimObserver;
use dhtm_sim::workload::Workload;
use dhtm_types::config::SystemConfig;

use crate::spec::{SimSpec, SpecLimits};

/// A spec resolved against the engine registry: directly runnable, no
/// further lookups or derivations. Unlike [`SimSpec`] it can also carry a
/// raw (non-overlay) configuration and an explicit workload seed, which is
/// what the crash subsystem and legacy harness entry points need.
#[derive(Debug, Clone)]
pub struct ResolvedSpec {
    /// The engine factory (cheap clone of the registry entry).
    pub factory: EngineFactory,
    /// The workload name.
    pub workload: String,
    /// The fully materialised machine configuration.
    pub config: SystemConfig,
    /// Termination limits.
    pub limits: SpecLimits,
    /// The exact seed handed to the workload (already derived).
    pub workload_seed: u64,
}

impl ResolvedSpec {
    /// Resolves a validated spec (panics on an unregistered engine — the
    /// caller validates first; see [`SimSpec::resolve`]).
    pub(crate) fn from_spec(spec: &SimSpec) -> Self {
        let factory =
            registry::resolve(&spec.engine).expect("spec validated: engine is registered");
        ResolvedSpec {
            factory,
            workload: spec.workload.clone(),
            config: spec.config(),
            limits: spec.limits,
            workload_seed: spec.derived_seed(),
        }
    }

    /// Builds a runnable form directly from raw parts, bypassing the
    /// overlay/seed derivation — for callers that already hold a resolved
    /// configuration and an exact workload seed (the crash matrix, the
    /// legacy `run_pair` path).
    ///
    /// # Panics
    ///
    /// Panics if `engine` is not registered.
    pub fn from_parts(
        engine: &EngineId,
        workload: impl Into<String>,
        config: SystemConfig,
        limits: SpecLimits,
        workload_seed: u64,
    ) -> Self {
        let factory = registry::resolve(engine)
            .unwrap_or_else(|| panic!("engine '{engine}' is not registered"));
        ResolvedSpec {
            factory,
            workload: workload.into(),
            config,
            limits,
            workload_seed,
        }
    }

    /// Constructs the run's components: a fresh machine, engine and
    /// workload, plus the driver limits. Callers that need a
    /// [`dhtm_sim::driver::SimulationSession`] (stepping, crash arming)
    /// assemble it from these; everyone else uses [`ResolvedSpec::run`].
    ///
    /// # Panics
    ///
    /// Panics if the workload name is unknown (validated specs cannot hit
    /// this).
    ///
    /// The engine comes back as the registry's [`EngineDispatch`]: a closed
    /// enum over the built-in designs, so the driver's step loop
    /// monomorphises to a match instead of a vtable call. Out-of-tree
    /// engines ride in its `Custom` variant.
    pub fn components(&self) -> (Machine, EngineDispatch, Box<dyn Workload>, RunLimits) {
        let machine = Machine::new(self.config.clone());
        let engine = self.factory.build(&self.config);
        let workload = dhtm_workloads::try_by_name(&self.workload, self.workload_seed)
            .unwrap_or_else(|e| panic!("{e}"));
        let limits = RunLimits {
            target_commits: self.limits.target_commits,
            max_cycles: self.limits.max_cycles,
        };
        (machine, engine, workload, limits)
    }

    /// Runs the spec to completion on a fresh machine.
    pub fn run(&self) -> SimulationResult {
        let (mut machine, mut engine, mut workload, limits) = self.components();
        Simulator::new().run(&mut machine, &mut engine, workload.as_mut(), &limits)
    }

    /// Runs the spec with every semantic event streamed to `observer`.
    /// Bit-identical to [`ResolvedSpec::run`].
    pub fn run_with_observer(&self, observer: &mut dyn SimObserver) -> SimulationResult {
        let (mut machine, mut engine, mut workload, limits) = self.components();
        Simulator::new().run_with_observer(
            &mut machine,
            &mut engine,
            workload.as_mut(),
            &limits,
            observer,
        )
    }

    /// The engine's table label (from the registry metadata).
    pub fn label(&self) -> &str {
        &self.factory.info().label
    }

    /// Runs the spec (optionally observed) and collects the component-stat
    /// registry afterwards: per-core L1s/log buffers, LLC, directory,
    /// persistence domain, memory channel and engine internals.
    ///
    /// The probes are read off the machine and engine only *after* the run
    /// finishes — nothing is sampled on the hot path — so a probed run is
    /// bit-identical to [`ResolvedSpec::run`] (the registry parity tests
    /// enforce this across every engine).
    pub fn run_probed(
        &self,
        observer: Option<&mut dyn SimObserver>,
    ) -> (SimulationResult, ProbeRegistry) {
        let (mut machine, mut engine, mut workload, limits) = self.components();
        let result = match observer {
            Some(obs) => Simulator::new().run_with_observer(
                &mut machine,
                &mut engine,
                workload.as_mut(),
                &limits,
                obs,
            ),
            None => Simulator::new().run(&mut machine, &mut engine, workload.as_mut(), &limits),
        };
        let mut reg = ProbeRegistry::new();
        machine.mem.probes_into(result.stats.total_cycles, &mut reg);
        engine.probes_into(&mut reg);
        (result, reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use dhtm_types::config::BaseConfig;
    use dhtm_types::policy::DesignKind;

    #[test]
    fn resolved_run_matches_direct_simulator_run() {
        let spec = SimSpec::builder(DesignKind::SoftwareOnly, "queue")
            .base(BaseConfig::Small)
            .commits(6)
            .seed(3)
            .build()
            .unwrap();
        let via_spec = spec.run().unwrap().stats;

        // The same run assembled by hand.
        let resolved = spec.resolve().unwrap();
        let (mut machine, mut engine, mut workload, limits) = resolved.components();
        let by_hand = Simulator::new()
            .run(&mut machine, &mut engine, workload.as_mut(), &limits)
            .stats;
        assert_eq!(via_spec, by_hand);
    }

    #[test]
    fn probed_run_is_bit_identical_and_collects_probes() {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(8)
            .seed(7)
            .build()
            .unwrap();
        let resolved = spec.resolve().unwrap();
        let plain = resolved.run().stats;
        let (probed, reg) = resolved.run_probed(None);
        assert_eq!(plain, probed.stats);
        assert!(!reg.is_empty());
        assert!(reg.get("llc/hits").is_some());
        assert!(reg.get("channel/busy_cycles").is_some());
        assert!(
            reg.get("core0/log_buffer/inserts").is_some(),
            "DHTM exports its log buffers"
        );
        assert!(reg.get("engine/commit_persist_waits").is_some());
    }

    #[test]
    fn from_parts_respects_the_explicit_seed() {
        let a = ResolvedSpec::from_parts(
            &DesignKind::Dhtm.into(),
            "hash",
            BaseConfig::Small.resolve(),
            SpecLimits {
                target_commits: 5,
                max_cycles: 50_000_000,
            },
            42,
        );
        let b = ResolvedSpec::from_parts(
            &DesignKind::Dhtm.into(),
            "hash",
            BaseConfig::Small.resolve(),
            SpecLimits {
                target_commits: 5,
                max_cycles: 50_000_000,
            },
            43,
        );
        assert_eq!(a.run().stats.committed, 5);
        // Different seeds, different streams (almost surely different cycles).
        assert_ne!(a.run().stats, b.run().stats);
        assert_eq!(a.label(), "DHTM");
    }
}
