#![forbid(unsafe_code)]
//! # dhtm-scenario
//!
//! The typed scenario API: one serializable entry point —
//! [`spec::SimSpec`] — for constructing any simulation run in the
//! workspace, decoupling experiment *description* from simulator
//! internals.
//!
//! A spec names:
//!
//! * an **engine** by [`dhtm_baselines::registry::EngineId`] (any of the
//!   six designs, a built-in DHTM variant, or an out-of-tree engine
//!   registered via [`dhtm_baselines::registry::register_global`]),
//! * a **workload** by name,
//! * a machine as a named [`dhtm_types::config::BaseConfig`] plus a sparse
//!   [`dhtm_types::config::ConfigOverlay`],
//! * run **limits** (commit target, cycle cap) and a base **seed**.
//!
//! Specs round-trip through TOML and JSON ([`mod@format`]), carry a stable
//! [`spec::SimSpec::content_hash`] identity and reproduce the experiment
//! harness's per-cell seed derivation exactly
//! ([`spec::SimSpec::derived_seed`]), so a spec file is a complete,
//! reproducible description of a run. [`exec`] resolves a spec against the
//! engine registry and executes it; [`metrics::MetricsSink`] is a streaming
//! [`dhtm_sim::observer::SimObserver`] over any spec run.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod exec;
pub mod format;
pub mod metrics;
pub mod result;
pub mod spec;
pub mod trace;

pub use exec::ResolvedSpec;
pub use metrics::MetricsSink;
pub use result::{RunRecord, RESULT_SCHEMA};
pub use spec::{SimSpec, SimSpecBuilder, SpecError, SpecLimits};
pub use trace::TraceRecorder;

/// The base seed every experiment uses unless a spec overrides it (the
/// value `dhtm_harness::EXPERIMENT_SEED` re-exports).
pub const DEFAULT_SEED: u64 = 0x15CA_2018;
