//! Canonical TOML and JSON forms of a [`SimSpec`].
//!
//! The container this repository builds in has no crates registry, so the
//! (de)serialisers are hand-rolled for exactly the spec grammar — a flat
//! table of scalars plus one optional `[config]` overlay table — and are
//! strict: unknown keys, sections or malformed values are errors, never
//! silently ignored (a typo'd overlay key must not silently run the
//! default machine).
//!
//! Writers emit fields in one canonical order with `None` overlay fields
//! omitted, so the emitted text doubles as the spec's content-hash input.

use dhtm_baselines::registry::EngineId;
use dhtm_types::config::{BaseConfig, ConfigOverlay};
use dhtm_types::policy::ConflictPolicy;

use crate::spec::{SimSpec, SpecError, SpecLimits};

// ---------------------------------------------------------------------------
// Writers
// ---------------------------------------------------------------------------

/// Overlay fields as (key, rendered value) pairs, canonical order, set
/// fields only — shared by both writers so the formats cannot drift.
fn overlay_fields(o: &ConfigOverlay) -> Vec<(&'static str, String)> {
    let mut fields = Vec::new();
    if let Some(v) = o.num_cores {
        fields.push(("num_cores", v.to_string()));
    }
    if let Some(v) = o.log_buffer_entries {
        fields.push(("log_buffer_entries", v.to_string()));
    }
    if let Some(v) = o.bandwidth_multiplier {
        // {:?} prints the shortest representation that round-trips to the
        // same f64 (e.g. "2.0", "0.1"), which keeps hashes and parses exact.
        fields.push(("bandwidth_multiplier", format!("{v:?}")));
    }
    if let Some(v) = o.conflict_policy {
        fields.push(("conflict_policy", format!("\"{v}\"")));
    }
    if let Some(v) = o.max_htm_retries {
        fields.push(("max_htm_retries", v.to_string()));
    }
    if let Some(v) = o.mshrs {
        fields.push(("mshrs", v.to_string()));
    }
    if let Some(v) = o.read_signature_bits {
        fields.push(("read_signature_bits", v.to_string()));
    }
    if let Some(v) = o.llc_capacity_bytes {
        fields.push(("llc_capacity_bytes", v.to_string()));
    }
    if let Some(v) = o.llc_ways {
        fields.push(("llc_ways", v.to_string()));
    }
    fields
}

/// Serialises a spec to canonical TOML.
pub fn to_toml(spec: &SimSpec) -> String {
    let mut out = String::new();
    out.push_str(&format!("engine = \"{}\"\n", spec.engine));
    out.push_str(&format!("workload = \"{}\"\n", spec.workload));
    out.push_str(&format!("base_config = \"{}\"\n", spec.base));
    out.push_str(&format!("seed = {}\n", spec.seed));
    out.push_str(&format!("commits = {}\n", spec.limits.target_commits));
    out.push_str(&format!("max_cycles = {}\n", spec.limits.max_cycles));
    let overlay = overlay_fields(&spec.overlay);
    if !overlay.is_empty() {
        out.push_str("\n[config]\n");
        for (key, value) in overlay {
            out.push_str(&format!("{key} = {value}\n"));
        }
    }
    out
}

/// Serialises a spec to canonical JSON (one object, `config` nested).
pub fn to_json(spec: &SimSpec) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"engine\": \"{}\", ", spec.engine));
    out.push_str(&format!("\"workload\": \"{}\", ", spec.workload));
    out.push_str(&format!("\"base_config\": \"{}\", ", spec.base));
    out.push_str(&format!("\"seed\": {}, ", spec.seed));
    out.push_str(&format!("\"commits\": {}, ", spec.limits.target_commits));
    out.push_str(&format!("\"max_cycles\": {}", spec.limits.max_cycles));
    let overlay = overlay_fields(&spec.overlay);
    if !overlay.is_empty() {
        out.push_str(", \"config\": {");
        let rendered: Vec<String> = overlay
            .into_iter()
            .map(|(key, value)| format!("\"{key}\": {value}"))
            .collect();
        out.push_str(&rendered.join(", "));
        out.push('}');
    }
    out.push_str("}\n");
    out
}

// ---------------------------------------------------------------------------
// Shared field assembly
// ---------------------------------------------------------------------------

/// One parsed scalar value, format-independent.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Int(u64),
    Float(f64),
}

impl Scalar {
    fn type_name(&self) -> &'static str {
        match self {
            Scalar::Str(_) => "string",
            Scalar::Int(_) => "integer",
            Scalar::Float(_) => "float",
        }
    }

    fn as_str(&self, key: &str) -> Result<&str, SpecError> {
        match self {
            Scalar::Str(s) => Ok(s),
            other => Err(SpecError::Parse(format!(
                "{key} must be a string, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_u64(&self, key: &str) -> Result<u64, SpecError> {
        match self {
            Scalar::Int(n) => Ok(*n),
            other => Err(SpecError::Parse(format!(
                "{key} must be an integer, got {}",
                other.type_name()
            ))),
        }
    }

    fn as_usize(&self, key: &str) -> Result<usize, SpecError> {
        usize::try_from(self.as_u64(key)?)
            .map_err(|_| SpecError::Parse(format!("{key} out of range")))
    }

    fn as_f64(&self, key: &str) -> Result<f64, SpecError> {
        match self {
            Scalar::Float(v) => Ok(*v),
            Scalar::Int(n) => Ok(*n as f64),
            other => Err(SpecError::Parse(format!(
                "{key} must be a number, got {}",
                other.type_name()
            ))),
        }
    }
}

/// Builds a [`SimSpec`] from parsed `(section, key, value)` triples —
/// shared by the TOML and JSON parsers. `section` is `None` for top-level
/// keys, `Some("config")` for overlay keys.
fn assemble(fields: Vec<(Option<String>, String, Scalar)>) -> Result<SimSpec, SpecError> {
    let mut engine: Option<EngineId> = None;
    let mut workload: Option<String> = None;
    let mut base = BaseConfig::Isca18;
    let mut overlay = ConfigOverlay::none();
    let mut limits = SpecLimits::default();
    let mut seed = crate::DEFAULT_SEED;

    for (section, key, value) in fields {
        match (section.as_deref(), key.as_str()) {
            (None, "engine") => engine = Some(EngineId::new(value.as_str("engine")?)),
            (None, "workload") => workload = Some(value.as_str("workload")?.to_string()),
            (None, "base_config") => {
                base = value
                    .as_str("base_config")?
                    .parse()
                    .map_err(SpecError::Parse)?;
            }
            (None, "seed") => seed = value.as_u64("seed")?,
            (None, "commits") => limits.target_commits = value.as_u64("commits")?,
            (None, "max_cycles") => limits.max_cycles = value.as_u64("max_cycles")?,
            (Some("config"), "num_cores") => {
                overlay.num_cores = Some(value.as_usize("num_cores")?);
            }
            (Some("config"), "log_buffer_entries") => {
                overlay.log_buffer_entries = Some(value.as_usize("log_buffer_entries")?);
            }
            (Some("config"), "bandwidth_multiplier") => {
                overlay.bandwidth_multiplier = Some(value.as_f64("bandwidth_multiplier")?);
            }
            (Some("config"), "conflict_policy") => {
                let p: ConflictPolicy = value
                    .as_str("conflict_policy")?
                    .parse()
                    .map_err(SpecError::Parse)?;
                overlay.conflict_policy = Some(p);
            }
            (Some("config"), "max_htm_retries") => {
                overlay.max_htm_retries = Some(value.as_usize("max_htm_retries")?);
            }
            (Some("config"), "mshrs") => overlay.mshrs = Some(value.as_usize("mshrs")?),
            (Some("config"), "read_signature_bits") => {
                overlay.read_signature_bits = Some(value.as_usize("read_signature_bits")?);
            }
            (Some("config"), "llc_capacity_bytes") => {
                overlay.llc_capacity_bytes = Some(value.as_usize("llc_capacity_bytes")?);
            }
            (Some("config"), "llc_ways") => {
                overlay.llc_ways = Some(value.as_usize("llc_ways")?);
            }
            (section, key) => {
                let place = section.map_or_else(String::new, |s| format!(" in [{s}]"));
                return Err(SpecError::Parse(format!("unknown key '{key}'{place}")));
            }
        }
    }

    let engine = engine.ok_or_else(|| SpecError::Parse("missing required key 'engine'".into()))?;
    let workload =
        workload.ok_or_else(|| SpecError::Parse("missing required key 'workload'".into()))?;
    Ok(SimSpec {
        engine,
        workload,
        base,
        overlay,
        limits,
        seed,
    })
}

/// Parses one scalar literal: `"string"`, integer or float.
fn parse_scalar(raw: &str) -> Result<Scalar, SpecError> {
    let raw = raw.trim();
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(inner) = rest.strip_suffix('"') else {
            return Err(SpecError::Parse(format!("unterminated string {raw}")));
        };
        if inner.contains('"') || inner.contains('\\') {
            return Err(SpecError::Parse(format!(
                "escapes are not supported in spec strings: {raw}"
            )));
        }
        return Ok(Scalar::Str(inner.to_string()));
    }
    if raw.contains('.') || raw.contains('e') || raw.contains('E') {
        return raw
            .parse::<f64>()
            .map(Scalar::Float)
            .map_err(|_| SpecError::Parse(format!("malformed number '{raw}'")));
    }
    raw.parse::<u64>()
        .map(Scalar::Int)
        .map_err(|_| SpecError::Parse(format!("malformed value '{raw}'")))
}

// ---------------------------------------------------------------------------
// TOML parser
// ---------------------------------------------------------------------------

/// Parses the spec's TOML subset: `key = value` lines, one optional
/// `[config]` section, `#` comments.
pub fn from_toml(input: &str) -> Result<SimSpec, SpecError> {
    let mut section: Option<String> = None;
    let mut fields = Vec::new();
    for (lineno, raw_line) in input.lines().enumerate() {
        let line = match raw_line.find('#') {
            // A '#' inside a quoted value is content, not a comment.
            Some(pos) if raw_line[..pos].matches('"').count() % 2 == 0 => &raw_line[..pos],
            _ => raw_line,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| SpecError::Parse(format!("line {}: {msg}", lineno + 1));
        if let Some(name) = line.strip_prefix('[') {
            let Some(name) = name.strip_suffix(']') else {
                return Err(err(format!("malformed section header '{line}'")));
            };
            if name != "config" {
                return Err(err(format!("unknown section [{name}] (only [config])")));
            }
            section = Some(name.to_string());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(format!("expected 'key = value', got '{line}'")));
        };
        let scalar = parse_scalar(value).map_err(|e| match e {
            SpecError::Parse(msg) => err(msg),
            other => other,
        })?;
        fields.push((section.clone(), key.trim().to_string(), scalar));
    }
    assemble(fields)
}

// ---------------------------------------------------------------------------
// JSON parser
// ---------------------------------------------------------------------------

struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonCursor<'a> {
    fn new(input: &'a str) -> Self {
        JsonCursor {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), SpecError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SpecError::Parse(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn string(&mut self) -> Result<String, SpecError> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| SpecError::Parse("invalid utf-8 in string".into()))?
                        .to_string();
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    return Err(SpecError::Parse(
                        "escapes are not supported in spec strings".into(),
                    ))
                }
                _ => self.pos += 1,
            }
        }
        Err(SpecError::Parse("unterminated string".into()))
    }

    fn scalar(&mut self) -> Result<Scalar, SpecError> {
        if self.peek() == Some(b'"') {
            return self.string().map(Scalar::Str);
        }
        self.skip_ws();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| SpecError::Parse("invalid utf-8 in number".into()))?;
        if raw.is_empty() {
            return Err(SpecError::Parse(format!(
                "expected a value at byte {start}"
            )));
        }
        parse_scalar(raw)
    }

    /// Parses `{ "key": scalar-or-config-object, ... }`.
    fn object(
        &mut self,
        section: Option<String>,
        fields: &mut Vec<(Option<String>, String, Scalar)>,
    ) -> Result<(), SpecError> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            if self.peek() == Some(b'{') {
                if section.is_some() || key != "config" {
                    return Err(SpecError::Parse(format!(
                        "unexpected nested object under '{key}'"
                    )));
                }
                self.object(Some("config".to_string()), fields)?;
            } else {
                fields.push((section.clone(), key, self.scalar()?));
            }
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {
                    return Err(SpecError::Parse(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

/// Parses the spec's JSON form (one object, optional nested `"config"`).
pub fn from_json(input: &str) -> Result<SimSpec, SpecError> {
    let mut cursor = JsonCursor::new(input);
    let mut fields = Vec::new();
    cursor.object(None, &mut fields)?;
    cursor.skip_ws();
    if cursor.pos != cursor.bytes.len() {
        return Err(SpecError::Parse(format!(
            "trailing content after the spec object at byte {}",
            cursor.pos
        )));
    }
    assemble(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::policy::DesignKind;

    fn rich_spec() -> SimSpec {
        SimSpec::builder(DesignKind::Dhtm, "tatp")
            .base(BaseConfig::Small)
            .overlay(ConfigOverlay {
                num_cores: Some(2),
                log_buffer_entries: Some(16),
                bandwidth_multiplier: Some(2.5),
                conflict_policy: Some(ConflictPolicy::RequesterWins),
                max_htm_retries: Some(4),
                mshrs: Some(16),
                read_signature_bits: Some(512),
                llc_capacity_bytes: Some(64 * 1024),
                llc_ways: Some(4),
            })
            .commits(9)
            .max_cycles(123_456_789)
            .seed(0xDEAD_BEEF)
            .build()
            .unwrap()
    }

    #[test]
    fn toml_round_trips_a_rich_spec() {
        let spec = rich_spec();
        let text = to_toml(&spec);
        assert_eq!(SimSpec::from_toml(&text).unwrap(), spec);
    }

    #[test]
    fn json_round_trips_a_rich_spec() {
        let spec = rich_spec();
        let text = to_json(&spec);
        assert_eq!(SimSpec::from_json(&text).unwrap(), spec);
    }

    #[test]
    fn minimal_spec_round_trips_with_defaults() {
        let spec = SimSpec::builder("so", "hash").build_unchecked();
        assert_eq!(SimSpec::from_toml(&to_toml(&spec)).unwrap(), spec);
        assert_eq!(SimSpec::from_json(&to_json(&spec)).unwrap(), spec);
        // A hand-written two-line file is enough.
        let parsed = SimSpec::from_toml("engine = \"so\"\nworkload = \"hash\"\n").unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn toml_comments_and_whitespace_are_tolerated() {
        let text = "\n# a spec\nengine = \"dhtm\"  # the proposal\n\nworkload = \"queue\"\n\n[config]\nnum_cores = 2\n";
        let spec = SimSpec::from_toml(text).unwrap();
        assert_eq!(spec.engine.as_str(), "dhtm");
        assert_eq!(spec.workload, "queue");
        assert_eq!(spec.overlay.num_cores, Some(2));
    }

    #[test]
    fn unknown_keys_and_sections_are_rejected() {
        assert!(SimSpec::from_toml("engine = \"so\"\nworkload = \"hash\"\nwarp = 9\n").is_err());
        assert!(SimSpec::from_toml("[turbo]\n").is_err());
        assert!(SimSpec::from_toml(
            "engine = \"so\"\nworkload = \"hash\"\n[config]\nlog_bufer_entries = 4\n"
        )
        .is_err());
        assert!(
            SimSpec::from_json("{\"engine\": \"so\", \"workload\": \"hash\", \"warp\": 9}")
                .is_err()
        );
    }

    #[test]
    fn missing_required_keys_are_rejected() {
        assert!(matches!(
            SimSpec::from_toml("workload = \"hash\"\n"),
            Err(SpecError::Parse(msg)) if msg.contains("engine")
        ));
        assert!(matches!(
            SimSpec::from_json("{\"engine\": \"so\"}"),
            Err(SpecError::Parse(msg)) if msg.contains("workload")
        ));
    }

    #[test]
    fn malformed_values_are_rejected() {
        assert!(SimSpec::from_toml("engine = so\nworkload = \"hash\"\n").is_err());
        assert!(
            SimSpec::from_toml("engine = \"so\"\nworkload = \"hash\"\nseed = \"x\"\n").is_err()
        );
        assert!(SimSpec::from_json("{\"engine\": \"so\", \"workload\": \"hash\"").is_err());
        assert!(SimSpec::from_json("{} trailing").is_err());
        assert!(SimSpec::from_toml(
            "engine = \"so\"\nworkload = \"hash\"\n[config]\nconflict_policy = \"dice\"\n"
        )
        .is_err());
    }

    #[test]
    fn float_rendering_round_trips_exactly() {
        for mult in [0.1, 1.0, 2.5, 10.0, 1.0 / 3.0] {
            let spec = SimSpec::builder("dhtm", "hash")
                .overlay(ConfigOverlay::none().with_bandwidth_multiplier(mult))
                .build_unchecked();
            let back = SimSpec::from_toml(&to_toml(&spec)).unwrap();
            assert_eq!(back.overlay.bandwidth_multiplier, Some(mult));
        }
    }
}
