//! Canonical serialization of a finished run: the persisted face of the
//! simulation service's content-addressed result store.
//!
//! A [`RunRecord`] bundles everything the service serves for one spec
//! hash: the canonical spec TOML (the content-hash pre-image — kept
//! verbatim so cache hits can be *verified*, not just trusted), the final
//! [`RunStats`] and the flattened post-run probe snapshot. Every field in
//! the workspace's statistics is an integer, so the JSON form
//! ([`RunRecord::to_json`]) round-trips exactly: `from_json(to_json(r))`
//! reproduces `r` bit-for-bit and `to_json` is a normal form — the
//! byte-identity guarantee the service's cold/warm-path tests pin.
//!
//! The parser is deliberately strict: unknown or missing statistics
//! fields, a schema-tag mismatch or a hash inconsistent with the embedded
//! spec all *fail the parse*. A stale record written by a different
//! code revision therefore falls back to recompute instead of being
//! served with silently-misinterpreted numbers.

use dhtm_obs::json::JsonValue;
use dhtm_obs::ProbeRegistry;
use dhtm_types::seed::{content_hash64, hash_hex};
use dhtm_types::stats::{AbortReason, RecoveryCounters, RunStats};

use crate::spec::SimSpec;

/// Version tag carried by every serialized record.
pub const RESULT_SCHEMA: &str = "dhtm-result-v1";

/// A finished run in its canonical, servable form.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// The spec's canonical TOML — the exact pre-image of its content
    /// hash, stored so a cache hit can re-derive and compare the hash.
    pub spec_toml: String,
    /// The run's final aggregate statistics.
    pub stats: RunStats,
    /// The flattened post-run probe registry (`name → value`, sorted by
    /// name as [`ProbeRegistry::flatten`] yields it).
    pub probes: Vec<(String, u64)>,
}

/// Field order of the `stats` object — one place, shared by the writer
/// and the strict reader, so the two cannot drift.
const STAT_FIELDS: &[&str] = &[
    "committed",
    "steps",
    "total_cycles",
    "loads",
    "stores",
    "log_records_written",
    "log_bytes_written",
    "data_bytes_written",
    "nvm_line_reads",
    "l1_hits",
    "l1_misses",
    "llc_hits",
    "llc_misses",
    "write_set_overflows",
    "lock_wait_cycles",
    "commit_stall_cycles",
    "total_stall_cycles",
    "fallback_commits",
    "sum_write_set_lines",
    "sum_read_set_lines",
];

const RECOVERY_FIELDS: &[&str] = &[
    "crash_points",
    "oracle_failures",
    "replayed_transactions",
    "rolled_back_transactions",
    "skipped_complete",
    "skipped_uncommitted",
    "lines_written",
    "words_written",
    "redo_lines_applied",
    "undo_lines_applied",
    "sentinel_edges",
];

fn stat_field(stats: &RunStats, name: &str) -> u64 {
    match name {
        "committed" => stats.committed,
        "steps" => stats.steps,
        "total_cycles" => stats.total_cycles,
        "loads" => stats.loads,
        "stores" => stats.stores,
        "log_records_written" => stats.log_records_written,
        "log_bytes_written" => stats.log_bytes_written,
        "data_bytes_written" => stats.data_bytes_written,
        "nvm_line_reads" => stats.nvm_line_reads,
        "l1_hits" => stats.l1_hits,
        "l1_misses" => stats.l1_misses,
        "llc_hits" => stats.llc_hits,
        "llc_misses" => stats.llc_misses,
        "write_set_overflows" => stats.write_set_overflows,
        "lock_wait_cycles" => stats.lock_wait_cycles,
        "commit_stall_cycles" => stats.commit_stall_cycles,
        "total_stall_cycles" => stats.total_stall_cycles,
        "fallback_commits" => stats.fallback_commits,
        "sum_write_set_lines" => stats.sum_write_set_lines,
        "sum_read_set_lines" => stats.sum_read_set_lines,
        other => unreachable!("unlisted stat field {other}"),
    }
}

fn set_stat_field(stats: &mut RunStats, name: &str, value: u64) {
    match name {
        "committed" => stats.committed = value,
        "steps" => stats.steps = value,
        "total_cycles" => stats.total_cycles = value,
        "loads" => stats.loads = value,
        "stores" => stats.stores = value,
        "log_records_written" => stats.log_records_written = value,
        "log_bytes_written" => stats.log_bytes_written = value,
        "data_bytes_written" => stats.data_bytes_written = value,
        "nvm_line_reads" => stats.nvm_line_reads = value,
        "l1_hits" => stats.l1_hits = value,
        "l1_misses" => stats.l1_misses = value,
        "llc_hits" => stats.llc_hits = value,
        "llc_misses" => stats.llc_misses = value,
        "write_set_overflows" => stats.write_set_overflows = value,
        "lock_wait_cycles" => stats.lock_wait_cycles = value,
        "commit_stall_cycles" => stats.commit_stall_cycles = value,
        "total_stall_cycles" => stats.total_stall_cycles = value,
        "fallback_commits" => stats.fallback_commits = value,
        "sum_write_set_lines" => stats.sum_write_set_lines = value,
        "sum_read_set_lines" => stats.sum_read_set_lines = value,
        other => unreachable!("unlisted stat field {other}"),
    }
}

fn recovery_field(r: &RecoveryCounters, name: &str) -> u64 {
    match name {
        "crash_points" => r.crash_points,
        "oracle_failures" => r.oracle_failures,
        "replayed_transactions" => r.replayed_transactions,
        "rolled_back_transactions" => r.rolled_back_transactions,
        "skipped_complete" => r.skipped_complete,
        "skipped_uncommitted" => r.skipped_uncommitted,
        "lines_written" => r.lines_written,
        "words_written" => r.words_written,
        "redo_lines_applied" => r.redo_lines_applied,
        "undo_lines_applied" => r.undo_lines_applied,
        "sentinel_edges" => r.sentinel_edges,
        other => unreachable!("unlisted recovery field {other}"),
    }
}

fn set_recovery_field(r: &mut RecoveryCounters, name: &str, value: u64) {
    match name {
        "crash_points" => r.crash_points = value,
        "oracle_failures" => r.oracle_failures = value,
        "replayed_transactions" => r.replayed_transactions = value,
        "rolled_back_transactions" => r.rolled_back_transactions = value,
        "skipped_complete" => r.skipped_complete = value,
        "skipped_uncommitted" => r.skipped_uncommitted = value,
        "lines_written" => r.lines_written = value,
        "words_written" => r.words_written = value,
        "redo_lines_applied" => r.redo_lines_applied = value,
        "undo_lines_applied" => r.undo_lines_applied = value,
        "sentinel_edges" => r.sentinel_edges = value,
        other => unreachable!("unlisted recovery field {other}"),
    }
}

fn abort_reason_from_name(name: &str) -> Option<AbortReason> {
    AbortReason::ALL.into_iter().find(|r| r.to_string() == name)
}

impl RunRecord {
    /// Assembles a record from a spec and its finished run (stats + probe
    /// registry as [`crate::ResolvedSpec::run_probed`] returns them).
    pub fn from_run(spec: &SimSpec, stats: &RunStats, probes: &ProbeRegistry) -> Self {
        RunRecord {
            spec_toml: spec.to_toml(),
            stats: stats.clone(),
            probes: probes.flatten(),
        }
    }

    /// The spec's 64-bit content hash, re-derived from the stored TOML.
    pub fn content_hash(&self) -> u64 {
        content_hash64(self.spec_toml.as_bytes())
    }

    /// [`RunRecord::content_hash`] in canonical 16-hex-digit form.
    pub fn content_hash_hex(&self) -> String {
        hash_hex(self.content_hash())
    }

    /// Renders the canonical JSON form (single line, no trailing newline).
    /// Deterministic: equal records render byte-identically.
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    /// The canonical form as a [`JsonValue`] — for embedding a record
    /// inside a larger message (the service's `done` event) without a
    /// render/re-parse round trip.
    pub fn to_value(&self) -> JsonValue {
        let stats_obj = {
            let mut pairs: Vec<(String, JsonValue)> = STAT_FIELDS
                .iter()
                .map(|&f| (f.to_string(), JsonValue::UInt(stat_field(&self.stats, f))))
                .collect();
            pairs.push((
                "aborts".to_string(),
                JsonValue::Object(
                    self.stats
                        .aborts
                        .iter()
                        .map(|(r, &n)| (r.to_string(), JsonValue::UInt(n)))
                        .collect(),
                ),
            ));
            pairs.push((
                "recovery".to_string(),
                JsonValue::Object(
                    RECOVERY_FIELDS
                        .iter()
                        .map(|&f| {
                            (
                                f.to_string(),
                                JsonValue::UInt(recovery_field(&self.stats.recovery, f)),
                            )
                        })
                        .collect(),
                ),
            ));
            JsonValue::Object(pairs)
        };
        JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::Str(RESULT_SCHEMA.to_string()),
            ),
            ("hash".to_string(), JsonValue::Str(self.content_hash_hex())),
            (
                "spec_toml".to_string(),
                JsonValue::Str(self.spec_toml.clone()),
            ),
            ("stats".to_string(), stats_obj),
            (
                "probes".to_string(),
                JsonValue::Object(
                    self.probes
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::UInt(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses the canonical JSON form back. Strict by design: a schema-tag
    /// mismatch, a missing/unknown statistics field, a malformed abort
    /// reason or a `hash` field inconsistent with the embedded spec TOML
    /// all fail — which is what lets the result store treat *any* parse
    /// failure as "recompute", never "serve a misread record".
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn from_json(input: &str) -> Result<Self, String> {
        Self::from_value(&JsonValue::parse(input)?)
    }

    /// Like [`RunRecord::from_json`], over an already-parsed value (the
    /// service protocol embeds records inside larger messages).
    ///
    /// # Errors
    ///
    /// Returns a message naming the first violated constraint.
    pub fn from_value(v: &JsonValue) -> Result<Self, String> {
        let top = v.as_object().ok_or("record is not a JSON object")?;
        for (key, _) in top {
            if !matches!(
                key.as_str(),
                "schema" | "hash" | "spec_toml" | "stats" | "probes"
            ) {
                return Err(format!("unknown record field '{key}'"));
            }
        }
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(s) if s == RESULT_SCHEMA => {}
            Some(s) => return Err(format!("record schema '{s}' != '{RESULT_SCHEMA}'")),
            None => return Err("missing string field 'schema'".to_string()),
        }
        let spec_toml = v
            .get("spec_toml")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field 'spec_toml'")?
            .to_string();
        let claimed = v
            .get("hash")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field 'hash'")?;
        let actual = hash_hex(content_hash64(spec_toml.as_bytes()));
        if claimed != actual {
            return Err(format!(
                "hash field '{claimed}' does not match the embedded spec ('{actual}')"
            ));
        }

        let stats_v = v.get("stats").ok_or("missing object field 'stats'")?;
        let stats_obj = stats_v.as_object().ok_or("'stats' is not an object")?;
        let mut stats = RunStats::new();
        for (key, value) in stats_obj {
            match key.as_str() {
                "aborts" => {
                    let pairs = value.as_object().ok_or("'aborts' is not an object")?;
                    for (name, count) in pairs {
                        let reason = abort_reason_from_name(name)
                            .ok_or_else(|| format!("unknown abort reason '{name}'"))?;
                        let n = count
                            .as_u64()
                            .ok_or_else(|| format!("abort count '{name}' is not an integer"))?;
                        stats.aborts.insert(reason, n);
                    }
                }
                "recovery" => {
                    let pairs = value.as_object().ok_or("'recovery' is not an object")?;
                    for (name, count) in pairs {
                        if !RECOVERY_FIELDS.contains(&name.as_str()) {
                            return Err(format!("unknown recovery field '{name}'"));
                        }
                        let n = count
                            .as_u64()
                            .ok_or_else(|| format!("recovery field '{name}' is not an integer"))?;
                        set_recovery_field(&mut stats.recovery, name, n);
                    }
                    for &f in RECOVERY_FIELDS {
                        if value.get(f).is_none() {
                            return Err(format!("missing recovery field '{f}'"));
                        }
                    }
                }
                name if STAT_FIELDS.contains(&name) => {
                    let n = value
                        .as_u64()
                        .ok_or_else(|| format!("stat field '{name}' is not an integer"))?;
                    set_stat_field(&mut stats, name, n);
                }
                other => return Err(format!("unknown stat field '{other}'")),
            }
        }
        for &f in STAT_FIELDS {
            if stats_v.get(f).is_none() {
                return Err(format!("missing stat field '{f}'"));
            }
        }
        if stats_v.get("recovery").is_none() {
            return Err("missing stat field 'recovery'".to_string());
        }

        let probes_v = v.get("probes").ok_or("missing object field 'probes'")?;
        let probes = probes_v
            .as_object()
            .ok_or("'probes' is not an object")?
            .iter()
            .map(|(k, pv)| {
                pv.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("probe '{k}' is not an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(RunRecord {
            spec_toml,
            stats,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::config::BaseConfig;
    use dhtm_types::policy::DesignKind;

    fn sample_record() -> (SimSpec, RunRecord) {
        let spec = SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(6)
            .seed(3)
            .build()
            .unwrap();
        let (result, reg) = spec.resolve().unwrap().run_probed(None);
        let record = RunRecord::from_run(&spec, &result.stats, &reg);
        (spec, record)
    }

    #[test]
    fn record_round_trips_bit_for_bit() {
        let (spec, record) = sample_record();
        assert_eq!(record.content_hash(), spec.content_hash());
        assert_eq!(record.content_hash_hex(), spec.content_hash_hex());
        let json = record.to_json();
        let back = RunRecord::from_json(&json).unwrap();
        assert_eq!(back, record);
        // Canonical: the re-rendered form is byte-identical.
        assert_eq!(back.to_json(), json);
        assert!(json.contains("\"schema\":\"dhtm-result-v1\""));
    }

    #[test]
    fn identical_runs_render_identical_records() {
        let (_, a) = sample_record();
        let (_, b) = sample_record();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn strict_parse_rejects_drifted_records() {
        let (_, record) = sample_record();
        let json = record.to_json();
        // Unknown stat field.
        let extra = json.replacen("\"committed\":", "\"committed_v2\":", 1);
        assert!(RunRecord::from_json(&extra).is_err());
        // Missing stat field (drop "steps" by renaming it away is covered
        // above; drop the whole stats object).
        let no_stats = json.replacen("\"stats\":", "\"statz\":", 1);
        assert!(RunRecord::from_json(&no_stats).is_err());
        // Wrong schema tag.
        let wrong = json.replacen("dhtm-result-v1", "dhtm-result-v0", 1);
        assert!(RunRecord::from_json(&wrong).is_err());
        // Hash inconsistent with the embedded spec.
        let hex = record.content_hash_hex();
        let lead = if hex.starts_with('0') { '1' } else { '0' };
        let flipped = json.replacen(&hex, &format!("{lead}{}", &hex[1..]), 1);
        assert!(RunRecord::from_json(&flipped)
            .unwrap_err()
            .contains("does not match"));
        // Not JSON at all.
        assert!(RunRecord::from_json("").is_err());
        assert!(RunRecord::from_json("{\"schema\"").is_err());
    }

    #[test]
    fn abort_reasons_survive_the_name_round_trip() {
        let (spec, mut record) = sample_record();
        for r in AbortReason::ALL {
            record.stats.aborts.insert(r, 7 + r.index() as u64);
        }
        let back = RunRecord::from_json(&record.to_json()).unwrap();
        assert_eq!(back.stats.aborts, record.stats.aborts);
        assert_eq!(back.content_hash(), spec.content_hash());
        // An unknown reason name fails the parse.
        let bad = record.to_json().replacen("conflict", "cosmic-ray", 1);
        assert!(RunRecord::from_json(&bad).is_err());
    }
}
