//! An NDJSON trace recorder over the [`SimObserver`] interface.
//!
//! [`TraceRecorder`] turns the driver's semantic event stream into
//! [`dhtm_obs::TraceEvent`]s inside a bounded [`dhtm_obs::TraceWriter`]
//! ring, and [`TraceRecorder::finish`] appends the end-of-run component
//! probes plus a `run_end` summary event. Like every observer, recording a
//! run leaves it bit-identical to an unobserved run; the trace is pure
//! output.

use dhtm_obs::{ProbeRegistry, TraceEvent, TraceWriter};
use dhtm_sim::observer::{SimObserver, StepContext};
use dhtm_types::stats::{AbortReason, RunStats};

/// A [`SimObserver`] that records every semantic event of one run (cell) as
/// trace events, oldest dropped first when the ring bound is hit.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    cell: String,
    writer: TraceWriter,
}

impl TraceRecorder {
    /// A recorder for the run labelled `cell`, with the default ring bound.
    pub fn new(cell: impl Into<String>) -> Self {
        TraceRecorder {
            cell: cell.into(),
            writer: TraceWriter::default(),
        }
    }

    /// A recorder retaining at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(cell: impl Into<String>, capacity: usize) -> Self {
        TraceRecorder {
            cell: cell.into(),
            writer: TraceWriter::with_capacity(capacity),
        }
    }

    /// The cell label this recorder stamps on every event.
    pub fn cell(&self) -> &str {
        &self.cell
    }

    /// The underlying writer (event counts, retained events).
    pub fn writer(&self) -> &TraceWriter {
        &self.writer
    }

    /// Appends the end-of-run events: one `probes` event carrying the
    /// flattened component-stat registry (when one was collected) and a
    /// `run_end` summary with the final tallies and the ring's drop count.
    pub fn finish(&mut self, stats: &RunStats, probes: Option<&ProbeRegistry>) {
        if let Some(reg) = probes {
            let mut event = TraceEvent::new("probes", &self.cell, stats.total_cycles);
            for (name, value) in reg.flatten() {
                event = event.field(name, value);
            }
            self.writer.record(event);
        }
        let dropped_so_far = self.writer.dropped();
        self.writer.record(
            TraceEvent::new("run_end", &self.cell, stats.total_cycles)
                .field("committed", stats.committed)
                .field("aborts", stats.total_aborts())
                .field("events_dropped", dropped_so_far),
        );
    }

    /// Renders every retained event as NDJSON lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.writer.lines()
    }
}

impl SimObserver for TraceRecorder {
    fn on_begin(&mut self, ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        self.writer
            .record(TraceEvent::new("begin", &self.cell, ctx.now).on_core(ctx.core.get()));
    }

    fn on_commit(&mut self, ctx: &StepContext<'_>, _tx: &dhtm_sim::workload::Transaction) {
        self.writer.record(
            TraceEvent::new("commit", &self.cell, ctx.now)
                .on_core(ctx.core.get())
                .field("total_committed", ctx.total_committed),
        );
    }

    fn on_abort(&mut self, ctx: &StepContext<'_>, reason: AbortReason) {
        self.writer.record(
            TraceEvent::new("abort", &self.cell, ctx.now)
                .on_core(ctx.core.get())
                .field("reason", reason.index() as u64),
        );
    }

    fn on_durable_tick(&mut self, ctx: &StepContext<'_>) {
        self.writer.record(
            TraceEvent::new("durable", &self.cell, ctx.now)
                .on_core(ctx.core.get())
                .field("mutations", ctx.mutations_after),
        );
    }

    fn on_crash_point(&mut self, ctx: &StepContext<'_>, point: u64) {
        self.writer.record(
            TraceEvent::new("crash_point", &self.cell, ctx.now)
                .on_core(ctx.core.get())
                .field("point", point),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SimSpec;
    use dhtm_obs::{event_from_line, validate_line};
    use dhtm_types::config::BaseConfig;
    use dhtm_types::policy::DesignKind;

    fn spec() -> SimSpec {
        SimSpec::builder(DesignKind::Dhtm, "hash")
            .base(BaseConfig::Small)
            .commits(6)
            .seed(3)
            .build()
            .unwrap()
    }

    #[test]
    fn traced_run_is_bit_identical_and_every_line_validates() {
        let resolved = spec().resolve().unwrap();
        let plain = resolved.run().stats;

        let mut rec = TraceRecorder::new("test/dhtm/hash");
        let (result, reg) = resolved.run_probed(Some(&mut rec));
        assert_eq!(plain, result.stats, "tracing must not perturb the run");
        rec.finish(&result.stats, Some(&reg));

        let lines = rec.lines();
        assert!(!lines.is_empty());
        for line in &lines {
            validate_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        // The stream carries commits and ends with the run_end summary.
        let events: Vec<_> = lines.iter().map(|l| event_from_line(l).unwrap()).collect();
        assert!(events.iter().any(|e| e.kind == "commit"));
        assert!(events.iter().any(|e| e.kind == "probes"));
        let last = events.last().unwrap();
        assert_eq!(last.kind, "run_end");
        assert_eq!(
            last.fields.iter().find(|(k, _)| k == "committed"),
            Some(&("committed".to_string(), result.stats.committed))
        );
    }

    #[test]
    fn ring_bound_truncates_oldest_events() {
        let resolved = spec().resolve().unwrap();
        let mut rec = TraceRecorder::with_capacity("bounded", 4);
        let (result, _) = resolved.run_probed(Some(&mut rec));
        rec.finish(&result.stats, None);
        assert_eq!(rec.lines().len(), 4);
        assert!(rec.writer().dropped() > 0);
        // The run_end summary always survives (it is recorded last).
        let last = event_from_line(rec.lines().last().unwrap()).unwrap();
        assert_eq!(last.kind, "run_end");
    }
}
