#![forbid(unsafe_code)]
//! # dhtm-nvm
//!
//! The persistent-memory substrate of the DHTM reproduction.
//!
//! The paper assumes byte-addressable non-volatile main memory attached to
//! the memory bus (Section II-B). Everything that must survive a crash lives
//! in this crate:
//!
//! * [`memory::PersistentMemory`] — the in-place data image (what the paper
//!   calls "in-place values" in Figure 4).
//! * [`log::TransactionLog`] — the per-thread circular transaction log that
//!   holds redo/undo [`record::LogRecord`]s, commit/complete/abort markers
//!   and sentinel dependency entries.
//! * [`overflow::OverflowList`] — the per-thread list of cache-line addresses
//!   whose dirty data overflowed from the L1 to the LLC (Section III-C).
//! * [`domain::PersistentDomain`] — the aggregate of all of the above, which
//!   can be snapshotted to emulate a crash.
//! * [`recovery::RecoveryManager`] — the OS service that replays committed
//!   but incomplete transactions after a restart (Section III-B, Recovery).
//! * [`bandwidth::MemoryChannel`] — the shared, bandwidth-limited memory bus
//!   (5.3 GB/s at baseline) that log writes, data write-backs and line fills
//!   all contend for; this is the mechanism behind Table VII.
//!
//! ## Example
//!
//! ```
//! use dhtm_nvm::domain::PersistentDomain;
//! use dhtm_nvm::record::LogRecord;
//! use dhtm_nvm::recovery::RecoveryManager;
//! use dhtm_types::{LineAddr, ThreadId, TxId};
//!
//! let mut domain = PersistentDomain::new(2, 1024, 256);
//! let t0 = ThreadId::new(0);
//! let tx = TxId::new(1);
//!
//! // Hardware appends a redo record and a commit record, then crashes before
//! // the data is written back in place.
//! let line = LineAddr::new(10);
//! domain.log_mut(t0).append(LogRecord::redo(tx, line, [42; 8])).unwrap();
//! domain.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
//!
//! let mut crashed = domain.crash_snapshot();
//! let report = RecoveryManager::new().recover(&mut crashed).unwrap();
//! assert_eq!(report.replayed_transactions, 1);
//! assert_eq!(crashed.memory().read_line(line)[0], 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod domain;
pub mod log;
pub mod memory;
pub mod overflow;
pub mod record;
pub mod recovery;

pub use bandwidth::MemoryChannel;
pub use domain::PersistentDomain;
pub use log::TransactionLog;
pub use memory::PersistentMemory;
pub use overflow::OverflowList;
pub use record::{LogRecord, RecordKind};
pub use recovery::{RecoveryManager, RecoveryReport};
