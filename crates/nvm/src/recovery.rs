//! The recovery manager (Section III-B, "Recovery").
//!
//! The recovery manager is an OS service invoked on restart. It scans every
//! registered per-thread transaction log and:
//!
//! * **replays** transactions that are *committed but not complete* — their
//!   redo records carry the new values, which are copied in place;
//! * **skips** transactions that are *complete* (all data already in place)
//!   or *active*/*aborted* (no in-place data was written for redo-based
//!   designs, so memory already holds the pre-transaction state);
//! * **rolls back** transactions that used *undo* logging (the ATOM and
//!   LogTM-ATOM baselines) and were still active at the crash: their undo
//!   records carry the old values, which are copied back in place;
//! * orders the replay of transactions with conflicting updates using the
//!   *sentinel* dependency records written at conflict-detection time.

use std::collections::{BTreeMap, BTreeSet};

use dhtm_types::error::{DhtmError, Result};
use dhtm_types::ids::TxId;

use crate::domain::PersistentDomain;
use crate::record::{LogRecord, RecordKind};

/// Summary of one recovery pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed-but-incomplete transactions whose redo records were replayed.
    pub replayed_transactions: usize,
    /// Active transactions with undo records that were rolled back.
    pub rolled_back_transactions: usize,
    /// Transactions skipped because they were already complete.
    pub skipped_complete: usize,
    /// Transactions skipped because they never committed (redo designs) or
    /// were explicitly aborted.
    pub skipped_uncommitted: usize,
    /// Total cache lines written to the in-place image during recovery.
    pub lines_written: usize,
    /// Total word-granular writes performed during recovery.
    pub words_written: usize,
    /// Lines written while replaying redo records (a subset of
    /// [`RecoveryReport::lines_written`]); non-zero only for redo-logging
    /// designs (SO, sdTM, DHTM).
    pub redo_lines_applied: usize,
    /// Lines written while rolling back via undo records (the other subset
    /// of [`RecoveryReport::lines_written`]); non-zero only for undo-logging
    /// designs (ATOM, LogTM-ATOM).
    pub undo_lines_applied: usize,
    /// Sentinel dependency edges honoured while ordering the replay of
    /// conflicting committed-but-incomplete transactions.
    pub sentinel_edges: usize,
}

/// Per-transaction status, derived from the markers present in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxDisposition {
    /// Has a commit marker but no complete marker: replay redo records.
    Replay,
    /// Complete: nothing to do.
    Complete,
    /// Aborted or never committed (redo design): nothing to do; but if undo
    /// records exist the transaction must be rolled back.
    NotCommitted,
}

/// The recovery manager.
#[derive(Debug, Clone, Default)]
pub struct RecoveryManager {
    _private: (),
}

impl RecoveryManager {
    /// Creates a recovery manager.
    pub fn new() -> Self {
        RecoveryManager::default()
    }

    /// Runs recovery over the given crashed persistence domain, mutating its
    /// in-place memory image so that it reflects a transactionally-consistent
    /// state, then reclaims the logs.
    ///
    /// # Errors
    ///
    /// Returns [`DhtmError::CorruptLog`] if the sentinel dependency graph
    /// contains a cycle (which a correct hardware implementation can never
    /// produce).
    pub fn recover(&self, domain: &mut PersistentDomain) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();

        // Gather every record of every log, grouped by transaction, keeping
        // per-log order (log order == program order for a single thread).
        let mut records_by_tx: BTreeMap<TxId, Vec<LogRecord>> = BTreeMap::new();
        for log in domain.logs() {
            for rec in log.iter() {
                records_by_tx.entry(rec.tx).or_default().push(*rec);
            }
        }

        // Classify each transaction.
        let mut disposition: BTreeMap<TxId, TxDisposition> = BTreeMap::new();
        for (&tx, recs) in &records_by_tx {
            let committed = recs.iter().any(|r| matches!(r.kind, RecordKind::Commit));
            let complete = recs.iter().any(|r| matches!(r.kind, RecordKind::Complete));
            let aborted = recs.iter().any(|r| matches!(r.kind, RecordKind::Abort));
            let disp = if complete {
                TxDisposition::Complete
            } else if committed && !aborted {
                TxDisposition::Replay
            } else {
                TxDisposition::NotCommitted
            };
            disposition.insert(tx, disp);
        }

        // Build the sentinel dependency graph restricted to replayable
        // transactions: an edge B -> A means B must be replayed before A.
        let replayable: BTreeSet<TxId> = disposition
            .iter()
            .filter(|&(_, d)| *d == TxDisposition::Replay)
            .map(|(&tx, _)| tx)
            .collect();
        let mut deps: BTreeMap<TxId, BTreeSet<TxId>> = BTreeMap::new();
        for &tx in &replayable {
            deps.insert(tx, BTreeSet::new());
        }
        for (&tx, recs) in &records_by_tx {
            for rec in recs {
                if let RecordKind::Sentinel { depends_on } = rec.kind {
                    // Self-edges are trivially satisfied and are ignored.
                    if depends_on != tx
                        && replayable.contains(&tx)
                        && replayable.contains(&depends_on)
                        && deps.get_mut(&tx).expect("tx present").insert(depends_on)
                    {
                        report.sentinel_edges += 1;
                    }
                }
            }
        }

        let order = topo_sort(&deps)?;

        // Phase 1: replay committed-but-incomplete transactions in dependency
        // order (redo records carry the after-images).
        for tx in order {
            let recs = &records_by_tx[&tx];
            for rec in recs {
                match rec.kind {
                    RecordKind::Redo { line, data } => {
                        domain.memory_mut().write_line(line, data);
                        report.lines_written += 1;
                        report.redo_lines_applied += 1;
                    }
                    RecordKind::RedoWord { line, word, value } => {
                        domain.memory_mut().write_line_word(
                            line,
                            dhtm_types::addr::WordIndex::new(word),
                            value,
                        );
                        report.words_written += 1;
                    }
                    _ => {}
                }
            }
            report.replayed_transactions += 1;
        }

        // Phase 2: roll back uncommitted transactions that wrote undo
        // records (eager designs may have written data in place before
        // committing). Undo records are applied newest-first so that the
        // oldest before-image wins.
        for (&tx, recs) in &records_by_tx {
            match disposition[&tx] {
                TxDisposition::Complete => report.skipped_complete += 1,
                TxDisposition::NotCommitted => {
                    let mut undone = false;
                    for rec in recs.iter().rev() {
                        if let RecordKind::Undo { line, data } = rec.kind {
                            domain.memory_mut().write_line(line, data);
                            report.lines_written += 1;
                            report.undo_lines_applied += 1;
                            undone = true;
                        }
                    }
                    if undone {
                        report.rolled_back_transactions += 1;
                    } else {
                        report.skipped_uncommitted += 1;
                    }
                }
                TxDisposition::Replay => {}
            }
        }

        // Recovery leaves every surviving transaction either fully applied or
        // fully undone; the logs can now be reclaimed wholesale.
        let threads = domain.threads();
        for t in 0..threads {
            domain.log_mut(dhtm_types::ids::ThreadId::new(t)).clear();
            domain
                .overflow_list_mut(dhtm_types::ids::ThreadId::new(t))
                .clear();
        }

        Ok(report)
    }
}

/// Deterministic topological sort of the dependency map (`tx -> set of
/// transactions that must replay before it`). Ties are broken by ascending
/// transaction id.
fn topo_sort(deps: &BTreeMap<TxId, BTreeSet<TxId>>) -> Result<Vec<TxId>> {
    let mut remaining: BTreeMap<TxId, BTreeSet<TxId>> = deps.clone();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let ready: Vec<TxId> = remaining
            .iter()
            .filter(|(_, d)| d.iter().all(|dep| !remaining.contains_key(dep)))
            .map(|(&tx, _)| tx)
            .collect();
        if ready.is_empty() {
            return Err(DhtmError::CorruptLog(
                "cycle in sentinel dependency graph".to_string(),
            ));
        }
        for tx in ready {
            remaining.remove(&tx);
            order.push(tx);
        }
    }
    Ok(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::addr::LineAddr;
    use dhtm_types::ids::ThreadId;

    fn domain() -> PersistentDomain {
        PersistentDomain::new(2, 256, 64)
    }

    #[test]
    fn committed_incomplete_transaction_is_replayed() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(5);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, line, [7; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();

        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 1);
        assert_eq!(d.read_line(line), [7; 8]);
        assert!(d.log(t0).is_empty(), "logs are reclaimed after recovery");
    }

    #[test]
    fn active_transaction_is_not_replayed() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(5);
        d.write_line(line, [1; 8]);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, line, [9; 8]))
            .unwrap();
        // No commit marker: the values must not be applied.
        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 0);
        assert_eq!(report.skipped_uncommitted, 1);
        assert_eq!(d.read_line(line), [1; 8]);
    }

    #[test]
    fn aborted_transaction_is_not_replayed() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(5);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, line, [9; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::abort(tx)).unwrap();
        RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(d.read_line(line), [0; 8]);
    }

    #[test]
    fn complete_transaction_is_skipped() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(5);
        // Data already made it in place before the crash.
        d.write_line(line, [3; 8]);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, line, [3; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
        d.log_mut(t0).append(LogRecord::complete(tx)).unwrap();
        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 0);
        assert_eq!(report.skipped_complete, 1);
        assert_eq!(d.read_line(line), [3; 8]);
    }

    #[test]
    fn sentinel_orders_conflicting_replays() {
        // TB wrote line 9 = 5 and committed; TA then read/modified line 9 and
        // wrote 6, also committed. Both are incomplete. Without the sentinel
        // the replay order would be ambiguous; with it, TA replays after TB
        // and the final value is TA's.
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let tb = TxId::new(1);
        let ta = TxId::new(2);
        let line = LineAddr::new(9);

        d.log_mut(t0)
            .append(LogRecord::redo(tb, line, [5; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tb)).unwrap();

        d.log_mut(t1)
            .append(LogRecord::redo(ta, line, [6; 8]))
            .unwrap();
        d.log_mut(t1).append(LogRecord::sentinel(ta, tb)).unwrap();
        d.log_mut(t1).append(LogRecord::commit(ta)).unwrap();

        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 2);
        assert_eq!(d.read_line(line), [6; 8]);
    }

    #[test]
    fn sentinel_order_holds_regardless_of_txid_order() {
        // Same as above but the dependent transaction has the *smaller* id,
        // so a naive id-ordered replay would be wrong.
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let tb = TxId::new(7); // writes second value... committed first
        let ta = TxId::new(3); // depends on tb
        let line = LineAddr::new(9);

        d.log_mut(t0)
            .append(LogRecord::redo(tb, line, [5; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tb)).unwrap();

        d.log_mut(t1)
            .append(LogRecord::redo(ta, line, [6; 8]))
            .unwrap();
        d.log_mut(t1).append(LogRecord::sentinel(ta, tb)).unwrap();
        d.log_mut(t1).append(LogRecord::commit(ta)).unwrap();

        RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(d.read_line(line), [6; 8]);
    }

    #[test]
    fn undo_records_roll_back_uncommitted_transactions() {
        // ATOM-style: data was written in place eagerly, the undo log holds
        // the before-image, and the crash happened before commit.
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(4);
        d.write_line(line, [8; 8]); // eager in-place update (new value)
        d.log_mut(t0)
            .append(LogRecord::undo(tx, line, [2; 8]))
            .unwrap();

        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.rolled_back_transactions, 1);
        assert_eq!(d.read_line(line), [2; 8]);
    }

    #[test]
    fn committed_undo_transaction_is_not_rolled_back() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(4);
        d.write_line(line, [8; 8]);
        d.log_mut(t0)
            .append(LogRecord::undo(tx, line, [2; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
        RecoveryManager::new().recover(&mut d).unwrap();
        // Committed: the new value stays.
        assert_eq!(d.read_line(line), [8; 8]);
    }

    #[test]
    fn word_granular_redo_records_replay() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(4);
        d.write_line(line, [1; 8]);
        d.log_mut(t0)
            .append(LogRecord::redo_word(tx, line, 3, 99))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.words_written, 1);
        let data = d.read_line(line);
        assert_eq!(data[3], 99);
        assert_eq!(data[0], 1);
    }

    #[test]
    fn report_splits_redo_and_undo_lines_and_counts_sentinel_edges() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        let tb = TxId::new(1);
        let ta = TxId::new(2);
        let undone = TxId::new(3);
        let line = LineAddr::new(9);
        // Two committed-but-incomplete redo transactions ordered by one
        // sentinel edge, plus one in-flight undo transaction to roll back.
        d.log_mut(t0)
            .append(LogRecord::redo(tb, line, [5; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tb)).unwrap();
        d.log_mut(t1)
            .append(LogRecord::redo(ta, line, [6; 8]))
            .unwrap();
        d.log_mut(t1).append(LogRecord::sentinel(ta, tb)).unwrap();
        d.log_mut(t1).append(LogRecord::commit(ta)).unwrap();
        d.log_mut(t0)
            .append(LogRecord::undo(undone, LineAddr::new(20), [2; 8]))
            .unwrap();

        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.redo_lines_applied, 2);
        assert_eq!(report.undo_lines_applied, 1);
        assert_eq!(report.lines_written, 3);
        assert_eq!(report.sentinel_edges, 1);
        assert_eq!(d.read_line(line), [6; 8]);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        let line = LineAddr::new(5);
        d.log_mut(t0)
            .append(LogRecord::redo(tx, line, [7; 8]))
            .unwrap();
        d.log_mut(t0).append(LogRecord::commit(tx)).unwrap();
        RecoveryManager::new().recover(&mut d).unwrap();
        let after_first = d.read_line(line);
        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 0);
        assert_eq!(d.read_line(line), after_first);
    }

    #[test]
    fn multiple_independent_transactions_all_replay() {
        let mut d = domain();
        let t0 = ThreadId::new(0);
        let t1 = ThreadId::new(1);
        for i in 0..10u64 {
            let tx = TxId::new(i + 1);
            let thread = if i % 2 == 0 { t0 } else { t1 };
            d.log_mut(thread)
                .append(LogRecord::redo(tx, LineAddr::new(100 + i), [i; 8]))
                .unwrap();
            d.log_mut(thread).append(LogRecord::commit(tx)).unwrap();
        }
        let report = RecoveryManager::new().recover(&mut d).unwrap();
        assert_eq!(report.replayed_transactions, 10);
        for i in 0..10u64 {
            assert_eq!(d.read_line(LineAddr::new(100 + i)), [i; 8]);
        }
    }
}
