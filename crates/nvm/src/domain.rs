//! The persistence domain: everything that survives a crash.

use dhtm_types::addr::{Address, LineAddr, LineData};
use dhtm_types::error::Result;
use dhtm_types::ids::{ThreadId, TxId};

use crate::log::TransactionLog;
use crate::memory::PersistentMemory;
use crate::overflow::OverflowList;
use crate::record::LogRecord;

/// The set of persistent structures visible to the recovery manager: the
/// in-place data image, one transaction log per thread and one overflow list
/// per thread.
///
/// The simulator mutates the domain as the hardware would (log appends on log
/// buffer evictions, in-place line writes on write-backs). Because volatile
/// state (caches, registers, log buffer) lives elsewhere, *cloning* the
/// domain is exactly a crash: the clone contains precisely the durable state
/// at that instant, and running the [`crate::recovery::RecoveryManager`] on
/// the clone reproduces the paper's recovery procedure.
///
/// # The durable-mutation clock
///
/// Every content mutation that reaches the domain through the first-class
/// mutator methods ([`PersistentDomain::append_log`],
/// [`PersistentDomain::write_line`], [`PersistentDomain::reclaim_log`], ...)
/// ticks a monotone *mutation clock*. The clock defines the persist-boundary
/// semantics of the crash-injection subsystem (`dhtm_crash`): a crash point
/// `n` means "power was lost after exactly the first `n` durable mutations
/// became persistent". Arming the domain with
/// [`PersistentDomain::arm_crash_captures`] makes it snapshot itself at each
/// requested clock value, *without* disturbing the run — the simulation
/// continues to completion and the snapshots are collected afterwards with
/// [`PersistentDomain::take_crash_captures`].
///
/// Direct access through [`PersistentDomain::log_mut`] /
/// [`PersistentDomain::memory_mut`] bypasses the clock; it is meant for
/// setup, recovery (which operates on a crashed copy) and tests.
#[derive(Debug, Clone)]
pub struct PersistentDomain {
    memory: PersistentMemory,
    logs: Vec<TransactionLog>,
    overflow_lists: Vec<OverflowList>,
    /// Durable-mutation clock: number of content mutations applied through
    /// the counting mutator methods.
    mutations: u64,
    /// Pending crash-capture points (ascending clock values).
    armed: Vec<u64>,
    /// Captured crash images, as (clock value, image) pairs.
    captured: Vec<(u64, PersistentDomain)>,
}

impl PersistentDomain {
    /// Creates a domain with `threads` per-thread logs of `log_capacity`
    /// records each and overflow lists of `overflow_capacity` entries each.
    pub fn new(threads: usize, log_capacity: usize, overflow_capacity: usize) -> Self {
        PersistentDomain {
            memory: PersistentMemory::new(),
            logs: (0..threads)
                .map(|t| TransactionLog::new(ThreadId::new(t), log_capacity))
                .collect(),
            overflow_lists: (0..threads)
                .map(|t| OverflowList::new(ThreadId::new(t), overflow_capacity))
                .collect(),
            mutations: 0,
            armed: Vec::new(),
            captured: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // The durable-mutation clock and crash captures.
    // ------------------------------------------------------------------

    /// Number of durable content mutations applied so far through the
    /// counting mutator methods.
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Arms the domain to capture a crash image at each of the given clock
    /// values: the image at point `n` reflects exactly the first `n` counted
    /// mutations. Points are sorted and de-duplicated; points at or beyond
    /// the final clock value resolve to the end-of-run state when the
    /// captures are taken.
    pub fn arm_crash_captures<I: IntoIterator<Item = u64>>(&mut self, points: I) {
        self.armed.extend(points);
        self.armed.sort_unstable();
        self.armed.dedup();
    }

    /// Takes the captured crash images, resolving any still-armed points
    /// (at or beyond the current clock) with the current state. Returns
    /// (clock value, image) pairs in ascending clock order.
    pub fn take_crash_captures(&mut self) -> Vec<(u64, PersistentDomain)> {
        if !self.armed.is_empty() {
            let image = self.capture_image();
            let rest: Vec<u64> = std::mem::take(&mut self.armed);
            for n in rest {
                self.captured.push((n.min(self.mutations), image.clone()));
            }
        }
        std::mem::take(&mut self.captured)
    }

    /// Captures a crash image for every armed point at or below the current
    /// clock value. Called by each counting mutator *before* it applies its
    /// change: a crash at point `n` preserves exactly the first `n`
    /// mutations, so the image must be taken before mutation `n` lands.
    /// (Calling this ahead of an operation that then fails or turns out to
    /// be a no-op is harmless — the content is unchanged until the next
    /// successful mutation, so the image is identical.)
    fn pre_mutation_capture(&mut self) {
        while self.armed.first().is_some_and(|&n| n <= self.mutations) {
            let n = self.armed.remove(0);
            let image = self.capture_image();
            self.captured.push((n, image));
        }
    }

    /// An exact copy of the durable state at this instant, with the capture
    /// instrumentation stripped (a crash image is never itself armed).
    fn capture_image(&self) -> PersistentDomain {
        PersistentDomain {
            memory: self.memory.clone(),
            logs: self.logs.clone(),
            overflow_lists: self.overflow_lists.clone(),
            mutations: self.mutations,
            armed: Vec::new(),
            captured: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Counting mutators: the paths hardware/engines use to reach NVM.
    // ------------------------------------------------------------------

    /// Appends a record to `thread`'s transaction log, ticking the mutation
    /// clock on success.
    ///
    /// # Errors
    ///
    /// Returns [`dhtm_types::error::DhtmError::LogOverflow`] when the log is
    /// full (nothing becomes durable and the clock does not tick).
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn append_log(&mut self, thread: ThreadId, record: LogRecord) -> Result<()> {
        self.pre_mutation_capture();
        self.logs[thread.get()].append(record)?;
        self.mutations += 1;
        Ok(())
    }

    /// Reclaims complete/aborted transactions from `thread`'s log (the
    /// head-pointer advance). Ticks the clock only when records were
    /// actually reclaimed. Returns the number of reclaimed records.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn reclaim_log(&mut self, thread: ThreadId) -> usize {
        self.pre_mutation_capture();
        let reclaimed = self.logs[thread.get()].reclaim();
        if reclaimed > 0 {
            self.mutations += 1;
        }
        reclaimed
    }

    /// Removes every record of `tx` from `thread`'s log regardless of
    /// markers (see [`TransactionLog::purge_tx`]). Ticks the clock only when
    /// records were removed. Returns the number of removed records.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn purge_log_tx(&mut self, thread: ThreadId, tx: TxId) -> usize {
        self.pre_mutation_capture();
        let purged = self.logs[thread.get()].purge_tx(tx);
        if purged > 0 {
            self.mutations += 1;
        }
        purged
    }

    /// Appends `(tx, line)` to `thread`'s overflow list, ticking the clock
    /// on success.
    ///
    /// # Errors
    ///
    /// Returns [`dhtm_types::error::DhtmError::OverflowListFull`] when the
    /// list is full.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn append_overflow(&mut self, thread: ThreadId, tx: TxId, line: LineAddr) -> Result<()> {
        self.pre_mutation_capture();
        self.overflow_lists[thread.get()].append(tx, line)?;
        self.mutations += 1;
        Ok(())
    }

    /// Removes every overflow-list entry of `tx` on `thread`, ticking the
    /// clock only when entries were removed. Returns the number removed.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn clear_overflow_tx(&mut self, thread: ThreadId, tx: TxId) -> usize {
        self.pre_mutation_capture();
        let list = &mut self.overflow_lists[thread.get()];
        let before = list.len();
        list.clear_tx(tx);
        let cleared = before - list.len();
        if cleared > 0 {
            self.mutations += 1;
        }
        cleared
    }

    /// Number of per-thread logs (== number of threads).
    pub fn threads(&self) -> usize {
        self.logs.len()
    }

    /// Immutable access to the in-place data image.
    pub fn memory(&self) -> &PersistentMemory {
        &self.memory
    }

    /// Mutable access to the in-place data image.
    pub fn memory_mut(&mut self) -> &mut PersistentMemory {
        &mut self.memory
    }

    /// Convenience: reads a full line from the in-place image.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.memory.read_line(line)
    }

    /// Writes a full line to the in-place image (a data write-back reaching
    /// persistent memory), ticking the mutation clock.
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.pre_mutation_capture();
        self.memory.write_line(line, data);
        self.mutations += 1;
    }

    /// Convenience: reads one word from the in-place image.
    pub fn read_word(&self, addr: Address) -> u64 {
        self.memory.read_word(addr)
    }

    /// Writes one word to the in-place image, ticking the mutation clock.
    pub fn write_word(&mut self, addr: Address, value: u64) {
        self.pre_mutation_capture();
        self.memory.write_word(addr, value);
        self.mutations += 1;
    }

    /// The transaction log owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn log(&self, thread: ThreadId) -> &TransactionLog {
        &self.logs[thread.get()]
    }

    /// Mutable access to the transaction log owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn log_mut(&mut self, thread: ThreadId) -> &mut TransactionLog {
        &mut self.logs[thread.get()]
    }

    /// The overflow list owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn overflow_list(&self, thread: ThreadId) -> &OverflowList {
        &self.overflow_lists[thread.get()]
    }

    /// Mutable access to the overflow list owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn overflow_list_mut(&mut self, thread: ThreadId) -> &mut OverflowList {
        &mut self.overflow_lists[thread.get()]
    }

    /// Iterates over all per-thread logs.
    pub fn logs(&self) -> impl Iterator<Item = &TransactionLog> {
        self.logs.iter()
    }

    /// Whether `line` appears in any thread's overflow list — i.e. some
    /// in-flight transaction's speculative copy of the line lives in the
    /// LLC. Such lines must never be written in place on an LLC eviction:
    /// redo logging forbids uncommitted data in persistent memory.
    pub fn line_is_speculative_overflow(&self, line: LineAddr) -> bool {
        self.overflow_lists.iter().any(|l| l.contains_line(line))
    }

    /// The thread whose overflow list records `line`, if any.
    pub fn speculative_overflow_owner(&self, line: LineAddr) -> Option<ThreadId> {
        self.overflow_lists
            .iter()
            .find(|l| l.contains_line(line))
            .map(|l| l.owner())
    }

    /// Takes a crash snapshot: an exact copy of the durable state at this
    /// instant. All volatile state (caches, log buffer contents, transaction
    /// status registers) is implicitly discarded because it simply is not
    /// part of the domain. Capture instrumentation is not carried over.
    pub fn crash_snapshot(&self) -> PersistentDomain {
        self.capture_image()
    }

    /// Total log bytes appended across all threads (bandwidth accounting).
    pub fn total_log_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.appended_bytes()).sum()
    }

    /// Total log records appended across all threads.
    pub fn total_log_records(&self) -> u64 {
        self.logs.iter().map(|l| l.appended_records()).sum()
    }

    /// Registers the domain's durable-structure counters: aggregate log
    /// traffic plus per-thread overflow-list growth (`threadN/overflow/...`).
    pub fn probes_into(&self, reg: &mut dhtm_obs::ProbeRegistry) {
        reg.add("domain/log_bytes", self.total_log_bytes());
        reg.add("domain/log_records", self.total_log_records());
        reg.add("domain/mutations", self.mutations);
        for list in &self.overflow_lists {
            let t = list.owner().get();
            reg.add(&format!("thread{t}/overflow/appended"), list.appended());
            reg.set(
                &format!("thread{t}/overflow/peak_len"),
                list.peak_len() as u64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use dhtm_types::ids::TxId;

    #[test]
    fn domain_construction() {
        let d = PersistentDomain::new(4, 100, 50);
        assert_eq!(d.threads(), 4);
        for t in 0..4 {
            assert_eq!(d.log(ThreadId::new(t)).capacity(), 100);
            assert_eq!(d.overflow_list(ThreadId::new(t)).capacity(), 50);
        }
    }

    #[test]
    fn snapshot_isolates_later_mutations() {
        let mut d = PersistentDomain::new(1, 16, 16);
        d.write_line(LineAddr::new(1), [1; 8]);
        let snap = d.crash_snapshot();
        d.write_line(LineAddr::new(1), [2; 8]);
        d.log_mut(ThreadId::new(0))
            .append(LogRecord::commit(TxId::new(1)))
            .unwrap();
        assert_eq!(snap.read_line(LineAddr::new(1)), [1; 8]);
        assert!(snap.log(ThreadId::new(0)).is_empty());
        assert_eq!(d.read_line(LineAddr::new(1)), [2; 8]);
    }

    #[test]
    fn total_log_accounting_spans_threads() {
        let mut d = PersistentDomain::new(2, 16, 16);
        d.log_mut(ThreadId::new(0))
            .append(LogRecord::redo(TxId::new(1), LineAddr::new(1), [0; 8]))
            .unwrap();
        d.log_mut(ThreadId::new(1))
            .append(LogRecord::commit(TxId::new(2)))
            .unwrap();
        assert_eq!(d.total_log_records(), 2);
        assert_eq!(d.total_log_bytes(), 72 + 16);
    }

    #[test]
    fn domain_probes_cover_logs_and_overflow_lists() {
        let mut d = PersistentDomain::new(2, 16, 16);
        let t1 = ThreadId::new(1);
        d.append_log(t1, LogRecord::commit(TxId::new(1))).unwrap();
        d.append_overflow(t1, TxId::new(1), LineAddr::new(3))
            .unwrap();
        let mut reg = dhtm_obs::ProbeRegistry::new();
        d.probes_into(&mut reg);
        assert_eq!(reg.counter("domain/log_records"), 1);
        assert_eq!(reg.counter("domain/mutations"), 2);
        assert_eq!(reg.counter("thread0/overflow/appended"), 0);
        assert_eq!(reg.counter("thread1/overflow/appended"), 1);
        assert_eq!(reg.counter("thread1/overflow/peak_len"), 1);
    }

    #[test]
    #[should_panic]
    fn out_of_range_thread_panics() {
        let d = PersistentDomain::new(1, 16, 16);
        let _ = d.log(ThreadId::new(5));
    }

    #[test]
    fn mutation_clock_counts_content_mutations_only() {
        let mut d = PersistentDomain::new(2, 16, 16);
        let t0 = ThreadId::new(0);
        assert_eq!(d.mutation_count(), 0);
        d.append_log(t0, LogRecord::redo(TxId::new(1), LineAddr::new(1), [1; 8]))
            .unwrap();
        d.write_line(LineAddr::new(9), [2; 8]);
        d.write_word(dhtm_types::addr::Address::new(0x80), 7);
        assert_eq!(d.mutation_count(), 3);
        // Reads do not tick the clock.
        let _ = d.read_line(LineAddr::new(9));
        assert_eq!(d.mutation_count(), 3);
        // Reclaiming when nothing is reclaimable does not tick the clock.
        assert_eq!(d.reclaim_log(t0), 0);
        assert_eq!(d.mutation_count(), 3);
        // Direct log_mut access bypasses the clock (setup/test path).
        d.log_mut(t0)
            .append(LogRecord::commit(TxId::new(1)))
            .unwrap();
        assert_eq!(d.mutation_count(), 3);
    }

    #[test]
    fn overflow_log_failure_does_not_tick_the_clock() {
        let mut d = PersistentDomain::new(1, 1, 1);
        let t0 = ThreadId::new(0);
        d.append_log(t0, LogRecord::commit(TxId::new(1))).unwrap();
        assert!(d.append_log(t0, LogRecord::commit(TxId::new(2))).is_err());
        assert_eq!(d.mutation_count(), 1);
        d.append_overflow(t0, TxId::new(1), LineAddr::new(4))
            .unwrap();
        assert!(d
            .append_overflow(t0, TxId::new(2), LineAddr::new(5))
            .is_err());
        assert_eq!(d.mutation_count(), 2);
    }

    #[test]
    fn armed_captures_freeze_state_at_the_requested_clock_values() {
        let mut d = PersistentDomain::new(1, 16, 16);
        d.arm_crash_captures([0, 2, 100]);
        d.write_line(LineAddr::new(1), [1; 8]); // mutation 0
        d.write_line(LineAddr::new(1), [2; 8]); // mutation 1
        d.write_line(LineAddr::new(1), [3; 8]); // mutation 2
        let captures = d.take_crash_captures();
        assert_eq!(captures.len(), 3);
        // Point 0: before any mutation.
        assert_eq!(captures[0].0, 0);
        assert_eq!(captures[0].1.read_line(LineAddr::new(1)), [0; 8]);
        // Point 2: exactly two mutations durable.
        assert_eq!(captures[1].0, 2);
        assert_eq!(captures[1].1.read_line(LineAddr::new(1)), [2; 8]);
        // Point 100: beyond the run, resolved to the final state (clamped).
        assert_eq!(captures[2].0, 3);
        assert_eq!(captures[2].1.read_line(LineAddr::new(1)), [3; 8]);
        // Captures were drained.
        assert!(d.take_crash_captures().is_empty());
    }

    #[test]
    fn captured_images_carry_logs_and_overflow_lists() {
        let mut d = PersistentDomain::new(1, 16, 16);
        let t0 = ThreadId::new(0);
        let tx = TxId::new(1);
        d.arm_crash_captures([2]);
        d.append_log(t0, LogRecord::redo(tx, LineAddr::new(1), [1; 8]))
            .unwrap();
        d.append_overflow(t0, tx, LineAddr::new(2)).unwrap();
        d.append_log(t0, LogRecord::commit(tx)).unwrap(); // not in the capture
        let captures = d.take_crash_captures();
        let image = &captures[0].1;
        assert_eq!(image.log(t0).len(), 1, "commit marker is past the cut");
        assert!(image.overflow_list(t0).contains(tx, LineAddr::new(2)));
        assert!(!image.log(t0).is_committed(tx));
    }
}
