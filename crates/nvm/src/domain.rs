//! The persistence domain: everything that survives a crash.

use dhtm_types::addr::{LineAddr, LineData};
use dhtm_types::ids::ThreadId;

use crate::log::TransactionLog;
use crate::memory::PersistentMemory;
use crate::overflow::OverflowList;

/// The set of persistent structures visible to the recovery manager: the
/// in-place data image, one transaction log per thread and one overflow list
/// per thread.
///
/// The simulator mutates the domain as the hardware would (log appends on log
/// buffer evictions, in-place line writes on write-backs). Because volatile
/// state (caches, registers, log buffer) lives elsewhere, *cloning* the
/// domain is exactly a crash: the clone contains precisely the durable state
/// at that instant, and running the [`crate::recovery::RecoveryManager`] on
/// the clone reproduces the paper's recovery procedure.
#[derive(Debug, Clone)]
pub struct PersistentDomain {
    memory: PersistentMemory,
    logs: Vec<TransactionLog>,
    overflow_lists: Vec<OverflowList>,
}

impl PersistentDomain {
    /// Creates a domain with `threads` per-thread logs of `log_capacity`
    /// records each and overflow lists of `overflow_capacity` entries each.
    pub fn new(threads: usize, log_capacity: usize, overflow_capacity: usize) -> Self {
        PersistentDomain {
            memory: PersistentMemory::new(),
            logs: (0..threads)
                .map(|t| TransactionLog::new(ThreadId::new(t), log_capacity))
                .collect(),
            overflow_lists: (0..threads)
                .map(|t| OverflowList::new(ThreadId::new(t), overflow_capacity))
                .collect(),
        }
    }

    /// Number of per-thread logs (== number of threads).
    pub fn threads(&self) -> usize {
        self.logs.len()
    }

    /// Immutable access to the in-place data image.
    pub fn memory(&self) -> &PersistentMemory {
        &self.memory
    }

    /// Mutable access to the in-place data image.
    pub fn memory_mut(&mut self) -> &mut PersistentMemory {
        &mut self.memory
    }

    /// Convenience: reads a full line from the in-place image.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.memory.read_line(line)
    }

    /// Convenience: writes a full line to the in-place image (a data
    /// write-back reaching persistent memory).
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.memory.write_line(line, data);
    }

    /// Convenience: reads one word from the in-place image.
    pub fn read_word(&self, addr: dhtm_types::addr::Address) -> u64 {
        self.memory.read_word(addr)
    }

    /// Convenience: writes one word to the in-place image.
    pub fn write_word(&mut self, addr: dhtm_types::addr::Address, value: u64) {
        self.memory.write_word(addr, value);
    }

    /// The transaction log owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn log(&self, thread: ThreadId) -> &TransactionLog {
        &self.logs[thread.get()]
    }

    /// Mutable access to the transaction log owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn log_mut(&mut self, thread: ThreadId) -> &mut TransactionLog {
        &mut self.logs[thread.get()]
    }

    /// The overflow list owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn overflow_list(&self, thread: ThreadId) -> &OverflowList {
        &self.overflow_lists[thread.get()]
    }

    /// Mutable access to the overflow list owned by `thread`.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is out of range.
    pub fn overflow_list_mut(&mut self, thread: ThreadId) -> &mut OverflowList {
        &mut self.overflow_lists[thread.get()]
    }

    /// Iterates over all per-thread logs.
    pub fn logs(&self) -> impl Iterator<Item = &TransactionLog> {
        self.logs.iter()
    }

    /// Takes a crash snapshot: an exact copy of the durable state at this
    /// instant. All volatile state (caches, log buffer contents, transaction
    /// status registers) is implicitly discarded because it simply is not
    /// part of the domain.
    pub fn crash_snapshot(&self) -> PersistentDomain {
        self.clone()
    }

    /// Total log bytes appended across all threads (bandwidth accounting).
    pub fn total_log_bytes(&self) -> u64 {
        self.logs.iter().map(|l| l.appended_bytes()).sum()
    }

    /// Total log records appended across all threads.
    pub fn total_log_records(&self) -> u64 {
        self.logs.iter().map(|l| l.appended_records()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use dhtm_types::ids::TxId;

    #[test]
    fn domain_construction() {
        let d = PersistentDomain::new(4, 100, 50);
        assert_eq!(d.threads(), 4);
        for t in 0..4 {
            assert_eq!(d.log(ThreadId::new(t)).capacity(), 100);
            assert_eq!(d.overflow_list(ThreadId::new(t)).capacity(), 50);
        }
    }

    #[test]
    fn snapshot_isolates_later_mutations() {
        let mut d = PersistentDomain::new(1, 16, 16);
        d.write_line(LineAddr::new(1), [1; 8]);
        let snap = d.crash_snapshot();
        d.write_line(LineAddr::new(1), [2; 8]);
        d.log_mut(ThreadId::new(0))
            .append(LogRecord::commit(TxId::new(1)))
            .unwrap();
        assert_eq!(snap.read_line(LineAddr::new(1)), [1; 8]);
        assert!(snap.log(ThreadId::new(0)).is_empty());
        assert_eq!(d.read_line(LineAddr::new(1)), [2; 8]);
    }

    #[test]
    fn total_log_accounting_spans_threads() {
        let mut d = PersistentDomain::new(2, 16, 16);
        d.log_mut(ThreadId::new(0))
            .append(LogRecord::redo(TxId::new(1), LineAddr::new(1), [0; 8]))
            .unwrap();
        d.log_mut(ThreadId::new(1))
            .append(LogRecord::commit(TxId::new(2)))
            .unwrap();
        assert_eq!(d.total_log_records(), 2);
        assert_eq!(d.total_log_bytes(), 72 + 16);
    }

    #[test]
    #[should_panic]
    fn out_of_range_thread_panics() {
        let d = PersistentDomain::new(1, 16, 16);
        let _ = d.log(ThreadId::new(5));
    }
}
