//! The in-place persistent data image.

use dhtm_types::addr::{Address, LineAddr, LineData, WordIndex, ZERO_LINE};

/// Initial slot count of the open-addressed line table (must be a power of
/// two). Sized so typical test/benchmark footprints never rehash.
const INITIAL_SLOTS: usize = 1 << 12;

/// splitmix64 finaliser: spreads a line number over all 64 bits so linear
/// probing sees a uniform start slot regardless of address locality.
fn hash_line(line: LineAddr) -> u64 {
    let mut z = line.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Byte-addressable persistent memory, stored sparsely at cache-line
/// granularity.
///
/// Lines that have never been written read as zero, matching the behaviour a
/// freshly-mapped persistent heap would exhibit. Everything stored here is
/// considered durable: the contents of this structure are exactly what the
/// recovery manager sees after a crash (volatile caches are lost).
///
/// The backing store is a pre-sized open-addressed table (power-of-two
/// capacity, splitmix64-hashed keys, linear probing, no deletion — lines
/// are only ever written, never unmapped), replacing the former
/// `std::collections::HashMap`: lookups and inserts on the simulator's
/// hottest read/fill path cost one multiply-shift hash and a short probe
/// run instead of SipHash, and the table's iteration order is a pure
/// function of its contents rather than of a per-process random state.
#[derive(Debug, Clone)]
pub struct PersistentMemory {
    /// Open-addressed slots: `None` = empty, `Some((line, data))` = occupied.
    slots: Box<[Option<(LineAddr, LineData)>]>,
    /// Power-of-two mask for the probe start.
    mask: usize,
    /// Occupied slot count.
    populated: usize,
    line_writes: u64,
    word_writes: u64,
}

impl Default for PersistentMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl PersistentMemory {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        PersistentMemory {
            slots: vec![None; INITIAL_SLOTS].into_boxed_slice(),
            mask: INITIAL_SLOTS - 1,
            populated: 0,
            line_writes: 0,
            word_writes: 0,
        }
    }

    /// The stored data for `line`, distinguishing "never written" from an
    /// explicitly written zero line (unlike [`PersistentMemory::read_line`]).
    fn get(&self, line: LineAddr) -> Option<&LineData> {
        self.slots[self.probe(line)].as_ref().map(|(_, d)| d)
    }

    /// Index of the slot holding `line`, or of the empty slot where it
    /// would be inserted.
    fn probe(&self, line: LineAddr) -> usize {
        let mut i = hash_line(line) as usize & self.mask;
        loop {
            match &self.slots[i] {
                Some((l, _)) if *l == line => return i,
                None => return i,
                _ => i = (i + 1) & self.mask,
            }
        }
    }

    /// Doubles the table when the load factor crosses 7/8 (the table never
    /// deletes, so no tombstone handling is needed).
    fn grow_if_needed(&mut self) {
        if self.populated * 8 < self.slots.len() * 7 {
            return;
        }
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; new_cap].into_boxed_slice());
        self.mask = new_cap - 1;
        for (line, data) in old.into_vec().into_iter().flatten() {
            let i = self.probe(line);
            debug_assert!(self.slots[i].is_none());
            self.slots[i] = Some((line, data));
        }
    }

    /// Reads a full cache line. Unwritten lines read as zero.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        match &self.slots[self.probe(line)] {
            Some((_, data)) => *data,
            None => ZERO_LINE,
        }
    }

    /// Mutable reference to a line's stored data, materialising a zero line
    /// on first touch.
    fn line_mut(&mut self, line: LineAddr) -> &mut LineData {
        self.grow_if_needed();
        let i = self.probe(line);
        if self.slots[i].is_none() {
            self.slots[i] = Some((line, ZERO_LINE));
            self.populated += 1;
        }
        &mut self.slots[i].as_mut().expect("just ensured").1
    }

    /// Writes a full cache line in place (a data write-back from the cache
    /// hierarchy or a recovery-time replay).
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.line_writes += 1;
        *self.line_mut(line) = data;
    }

    /// Reads one 64-bit word.
    pub fn read_word(&self, addr: Address) -> u64 {
        self.read_line(addr.line())[addr.word_index().get()]
    }

    /// Writes one 64-bit word in place (used by word-granular software
    /// logging designs and by recovery when replaying word-granular records).
    pub fn write_word(&mut self, addr: Address, value: u64) {
        self.word_writes += 1;
        self.line_mut(addr.line())[addr.word_index().get()] = value;
    }

    /// Writes one word of a line identified by line + word index.
    pub fn write_line_word(&mut self, line: LineAddr, word: WordIndex, value: u64) {
        self.write_word(line.word_address(word), value);
    }

    /// Number of distinct lines that have ever been written.
    pub fn populated_lines(&self) -> usize {
        self.populated
    }

    /// Total number of full-line writes performed.
    pub fn line_write_count(&self) -> u64 {
        self.line_writes
    }

    /// Total number of word writes performed.
    pub fn word_write_count(&self) -> u64 {
        self.word_writes
    }

    /// Iterates over all populated lines (used by consistency checkers in
    /// tests). Order is table order: deterministic for a given sequence of
    /// writes (unlike the former `HashMap`'s per-process random order), but
    /// otherwise unspecified.
    pub fn iter(&self) -> impl Iterator<Item = (&LineAddr, &LineData)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(l, d)| (l, d)))
    }
}

/// Content equality (plus the write counters, as the former derive
/// compared): independent of table capacity and probe layout. Matches the
/// old `HashMap` equality exactly — an explicitly written zero line is a
/// *populated* line, so two images whose zero lines sit at different
/// addresses are unequal even though both read as zero everywhere.
impl PartialEq for PersistentMemory {
    fn eq(&self, other: &Self) -> bool {
        self.populated == other.populated
            && self.line_writes == other.line_writes
            && self.word_writes == other.word_writes
            && self.iter().all(|(l, d)| other.get(*l) == Some(d))
    }
}

impl Eq for PersistentMemory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PersistentMemory::new();
        assert_eq!(m.read_line(LineAddr::new(5)), ZERO_LINE);
        assert_eq!(m.read_word(Address::new(0x4008)), 0);
        assert_eq!(m.populated_lines(), 0);
    }

    #[test]
    fn line_write_read_roundtrip() {
        let mut m = PersistentMemory::new();
        let line = LineAddr::new(3);
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        m.write_line(line, data);
        assert_eq!(m.read_line(line), data);
        assert_eq!(m.populated_lines(), 1);
        assert_eq!(m.line_write_count(), 1);
    }

    #[test]
    fn word_write_updates_only_that_word() {
        let mut m = PersistentMemory::new();
        let line = LineAddr::new(7);
        m.write_line(line, [9; 8]);
        m.write_line_word(line, WordIndex::new(2), 77);
        let data = m.read_line(line);
        assert_eq!(data[2], 77);
        assert_eq!(data[0], 9);
        assert_eq!(data[7], 9);
        assert_eq!(m.word_write_count(), 1);
    }

    #[test]
    fn word_addressing_is_consistent_with_line_addressing() {
        let mut m = PersistentMemory::new();
        let addr = Address::new(64 * 12 + 8 * 5);
        m.write_word(addr, 0xdead_beef);
        assert_eq!(m.read_word(addr), 0xdead_beef);
        assert_eq!(m.read_line(LineAddr::new(12))[5], 0xdead_beef);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut m = PersistentMemory::new();
        m.write_word(Address::new(0), 1);
        let snap = m.clone();
        m.write_word(Address::new(0), 2);
        assert_eq!(snap.read_word(Address::new(0)), 1);
        assert_eq!(m.read_word(Address::new(0)), 2);
    }

    #[test]
    fn iter_visits_all_populated_lines() {
        let mut m = PersistentMemory::new();
        for i in 0..10 {
            m.write_line(LineAddr::new(i), [i; 8]);
        }
        let mut lines: Vec<u64> = m.iter().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn growth_preserves_contents() {
        // Push well past the initial capacity (and its 7/8 load limit) so
        // the table rehashes several times.
        let mut m = PersistentMemory::new();
        let lines = (INITIAL_SLOTS as u64) * 4;
        for i in 0..lines {
            m.write_line(LineAddr::new(i * 17 + 3), [i; 8]);
        }
        assert_eq!(m.populated_lines(), lines as usize);
        for i in 0..lines {
            assert_eq!(m.read_line(LineAddr::new(i * 17 + 3)), [i; 8]);
        }
        assert_eq!(m.read_line(LineAddr::new(1)), ZERO_LINE);
    }

    #[test]
    fn explicit_zero_lines_at_different_addresses_are_unequal() {
        // A zero-valued write is a populated line: replaying it to the
        // wrong address must be detectable through equality, exactly as
        // the former HashMap-derived PartialEq guaranteed.
        let mut a = PersistentMemory::new();
        let mut b = PersistentMemory::new();
        a.write_line(LineAddr::new(7), ZERO_LINE);
        b.write_line(LineAddr::new(9), ZERO_LINE);
        assert_ne!(a, b);
    }

    #[test]
    fn equality_is_content_based_not_layout_based() {
        // Same content reached through different write orders (and thus
        // different probe layouts after growth) must compare equal.
        let mut a = PersistentMemory::new();
        let mut b = PersistentMemory::new();
        for i in 0..100u64 {
            a.write_line(LineAddr::new(i), [i; 8]);
        }
        for i in (0..100u64).rev() {
            b.write_line(LineAddr::new(i), [i; 8]);
        }
        assert_eq!(a, b);
        b.write_line(LineAddr::new(5), [0xff; 8]);
        assert_ne!(a, b, "content difference must break equality");
    }
}
