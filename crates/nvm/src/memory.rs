//! The in-place persistent data image.

use std::collections::HashMap;

use dhtm_types::addr::{Address, LineAddr, LineData, WordIndex, ZERO_LINE};

/// Byte-addressable persistent memory, stored sparsely at cache-line
/// granularity.
///
/// Lines that have never been written read as zero, matching the behaviour a
/// freshly-mapped persistent heap would exhibit. Everything stored here is
/// considered durable: the contents of this structure are exactly what the
/// recovery manager sees after a crash (volatile caches are lost).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PersistentMemory {
    lines: HashMap<LineAddr, LineData>,
    line_writes: u64,
    word_writes: u64,
}

impl PersistentMemory {
    /// Creates an empty (all-zero) memory image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a full cache line. Unwritten lines read as zero.
    pub fn read_line(&self, line: LineAddr) -> LineData {
        self.lines.get(&line).copied().unwrap_or(ZERO_LINE)
    }

    /// Writes a full cache line in place (a data write-back from the cache
    /// hierarchy or a recovery-time replay).
    pub fn write_line(&mut self, line: LineAddr, data: LineData) {
        self.line_writes += 1;
        self.lines.insert(line, data);
    }

    /// Reads one 64-bit word.
    pub fn read_word(&self, addr: Address) -> u64 {
        self.read_line(addr.line())[addr.word_index().get()]
    }

    /// Writes one 64-bit word in place (used by word-granular software
    /// logging designs and by recovery when replaying word-granular records).
    pub fn write_word(&mut self, addr: Address, value: u64) {
        self.word_writes += 1;
        let entry = self.lines.entry(addr.line()).or_insert(ZERO_LINE);
        entry[addr.word_index().get()] = value;
    }

    /// Writes one word of a line identified by line + word index.
    pub fn write_line_word(&mut self, line: LineAddr, word: WordIndex, value: u64) {
        self.write_word(line.word_address(word), value);
    }

    /// Number of distinct lines that have ever been written.
    pub fn populated_lines(&self) -> usize {
        self.lines.len()
    }

    /// Total number of full-line writes performed.
    pub fn line_write_count(&self) -> u64 {
        self.line_writes
    }

    /// Total number of word writes performed.
    pub fn word_write_count(&self) -> u64 {
        self.word_writes
    }

    /// Iterates over all populated lines (used by consistency checkers in
    /// tests).
    pub fn iter(&self) -> impl Iterator<Item = (&LineAddr, &LineData)> {
        self.lines.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = PersistentMemory::new();
        assert_eq!(m.read_line(LineAddr::new(5)), ZERO_LINE);
        assert_eq!(m.read_word(Address::new(0x4008)), 0);
        assert_eq!(m.populated_lines(), 0);
    }

    #[test]
    fn line_write_read_roundtrip() {
        let mut m = PersistentMemory::new();
        let line = LineAddr::new(3);
        let data = [1, 2, 3, 4, 5, 6, 7, 8];
        m.write_line(line, data);
        assert_eq!(m.read_line(line), data);
        assert_eq!(m.populated_lines(), 1);
        assert_eq!(m.line_write_count(), 1);
    }

    #[test]
    fn word_write_updates_only_that_word() {
        let mut m = PersistentMemory::new();
        let line = LineAddr::new(7);
        m.write_line(line, [9; 8]);
        m.write_line_word(line, WordIndex::new(2), 77);
        let data = m.read_line(line);
        assert_eq!(data[2], 77);
        assert_eq!(data[0], 9);
        assert_eq!(data[7], 9);
        assert_eq!(m.word_write_count(), 1);
    }

    #[test]
    fn word_addressing_is_consistent_with_line_addressing() {
        let mut m = PersistentMemory::new();
        let addr = Address::new(64 * 12 + 8 * 5);
        m.write_word(addr, 0xdead_beef);
        assert_eq!(m.read_word(addr), 0xdead_beef);
        assert_eq!(m.read_line(LineAddr::new(12))[5], 0xdead_beef);
    }

    #[test]
    fn clone_is_a_snapshot() {
        let mut m = PersistentMemory::new();
        m.write_word(Address::new(0), 1);
        let snap = m.clone();
        m.write_word(Address::new(0), 2);
        assert_eq!(snap.read_word(Address::new(0)), 1);
        assert_eq!(m.read_word(Address::new(0)), 2);
    }

    #[test]
    fn iter_visits_all_populated_lines() {
        let mut m = PersistentMemory::new();
        for i in 0..10 {
            m.write_line(LineAddr::new(i), [i; 8]);
        }
        let mut lines: Vec<u64> = m.iter().map(|(l, _)| l.raw()).collect();
        lines.sort_unstable();
        assert_eq!(lines, (0..10).collect::<Vec<_>>());
    }
}
