//! The per-thread circular transaction log.
//!
//! In DHTM the log space is thread-private, allocated by the OS when the
//! thread is spawned, and organised as a circular buffer similar to
//! Mnemosyne (Section III-A, "Log management"). The hardware keeps a start
//! pointer, a next pointer and a size register (Table II); when the log
//! overflows, the transaction aborts with a log-overflow indication and the
//! OS allocates a larger log before retrying.

use std::collections::VecDeque;

use dhtm_types::error::{DhtmError, Result};
use dhtm_types::ids::{ThreadId, TxId};

use crate::record::{LogRecord, RecordKind};

/// A per-thread circular transaction log held in persistent memory.
///
/// The log stores [`LogRecord`]s for one or more transactions: the currently
/// active transaction plus any committed-but-not-yet-completed predecessors.
/// Records of completed or aborted transactions are reclaimed by
/// [`TransactionLog::reclaim`], mimicking the head-pointer advance of a
/// circular buffer.
#[derive(Debug, Clone)]
pub struct TransactionLog {
    owner: ThreadId,
    capacity_records: usize,
    records: VecDeque<LogRecord>,
    appended_records: u64,
    appended_bytes: u64,
}

impl TransactionLog {
    /// Creates an empty log owned by `owner` with space for
    /// `capacity_records` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_records` is zero.
    pub fn new(owner: ThreadId, capacity_records: usize) -> Self {
        assert!(capacity_records > 0, "log capacity must be positive");
        TransactionLog {
            owner,
            capacity_records,
            records: VecDeque::new(),
            appended_records: 0,
            appended_bytes: 0,
        }
    }

    /// The thread that owns this log.
    pub fn owner(&self) -> ThreadId {
        self.owner
    }

    /// Maximum number of records the log can hold.
    pub fn capacity(&self) -> usize {
        self.capacity_records
    }

    /// Number of records currently occupying log space.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log currently holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record to the log.
    ///
    /// # Errors
    ///
    /// Returns [`DhtmError::LogOverflow`] if the log is full; the caller
    /// (the DHTM engine) reacts by aborting the transaction, as the paper
    /// prescribes.
    pub fn append(&mut self, record: LogRecord) -> Result<()> {
        if self.records.len() >= self.capacity_records {
            return Err(DhtmError::LogOverflow {
                tx: record.tx,
                capacity: self.capacity_records,
            });
        }
        self.appended_records += 1;
        self.appended_bytes += record.size_bytes();
        self.records.push_back(record);
        Ok(())
    }

    /// Iterates over the records currently in the log, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &LogRecord> {
        self.records.iter()
    }

    /// Returns all records belonging to transaction `tx`, oldest first.
    pub fn records_for(&self, tx: TxId) -> Vec<LogRecord> {
        self.records
            .iter()
            .filter(|r| r.tx == tx)
            .copied()
            .collect()
    }

    /// Returns the set of transaction ids that appear in the log.
    pub fn transactions(&self) -> Vec<TxId> {
        let mut txs: Vec<TxId> = self.records.iter().map(|r| r.tx).collect();
        txs.sort_unstable();
        txs.dedup();
        txs
    }

    /// Whether transaction `tx` has a commit marker in the log.
    pub fn is_committed(&self, tx: TxId) -> bool {
        self.has_marker(tx, |k| matches!(k, RecordKind::Commit))
    }

    /// Whether transaction `tx` has a completion marker in the log.
    pub fn is_complete(&self, tx: TxId) -> bool {
        self.has_marker(tx, |k| matches!(k, RecordKind::Complete))
    }

    /// Whether transaction `tx` has an abort marker in the log.
    pub fn is_aborted(&self, tx: TxId) -> bool {
        self.has_marker(tx, |k| matches!(k, RecordKind::Abort))
    }

    fn has_marker(&self, tx: TxId, pred: impl Fn(&RecordKind) -> bool) -> bool {
        self.records.iter().any(|r| r.tx == tx && pred(&r.kind))
    }

    /// Reclaims log space for transactions that no longer need their records:
    /// completed transactions (data is in place) and aborted transactions
    /// (state will never be replayed). This models the head-pointer advance
    /// of the circular log.
    ///
    /// Returns the number of reclaimed records.
    pub fn reclaim(&mut self) -> usize {
        let done: Vec<TxId> = self
            .transactions()
            .into_iter()
            .filter(|&tx| self.is_complete(tx) || self.is_aborted(tx))
            .collect();
        let before = self.records.len();
        self.records.retain(|r| !done.contains(&r.tx));
        before - self.records.len()
    }

    /// Removes every record from the log (used after recovery has replayed
    /// the log, and by tests).
    pub fn clear(&mut self) {
        self.records.clear();
    }

    /// Removes every record belonging to `tx`, regardless of its markers.
    ///
    /// Used when a transaction aborts because the log itself is full: the
    /// abort marker cannot be appended, but since the transaction never
    /// wrote a commit record the recovery manager would ignore it anyway, so
    /// its space can be reclaimed immediately.
    pub fn purge_tx(&mut self, tx: TxId) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.tx != tx);
        before - self.records.len()
    }

    /// Mutable iteration over the records currently in the log, oldest
    /// first. This is the fault-injection surface of the crash-validation
    /// subsystem: it models bit-rot / torn writes inside the durable log, so
    /// the recovery oracles can be tested against deliberately corrupted
    /// state. Mutations through this iterator do not affect the lifetime
    /// byte/record counters.
    pub fn records_mut(&mut self) -> impl Iterator<Item = &mut LogRecord> {
        self.records.iter_mut()
    }

    /// Retains only the records for which `pred` returns `true` (oldest
    /// first), returning the number of dropped records. Fault-injection
    /// surface: models the loss of individual durable records (e.g. a commit
    /// marker that never reached NVM).
    pub fn retain_records<F: FnMut(&LogRecord) -> bool>(&mut self, mut pred: F) -> usize {
        let before = self.records.len();
        self.records.retain(|r| pred(r));
        before - self.records.len()
    }

    /// Total records appended over the lifetime of the log (not reduced by
    /// reclamation) — the basis for log-write statistics.
    pub fn appended_records(&self) -> u64 {
        self.appended_records
    }

    /// Total bytes appended over the lifetime of the log.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Remaining capacity in records.
    pub fn remaining(&self) -> usize {
        self.capacity_records - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_types::addr::LineAddr;

    fn log() -> TransactionLog {
        TransactionLog::new(ThreadId::new(0), 16)
    }

    #[test]
    fn append_and_query_markers() {
        let mut l = log();
        let tx = TxId::new(1);
        l.append(LogRecord::redo(tx, LineAddr::new(1), [1; 8]))
            .unwrap();
        assert!(!l.is_committed(tx));
        l.append(LogRecord::commit(tx)).unwrap();
        assert!(l.is_committed(tx));
        assert!(!l.is_complete(tx));
        assert!(!l.is_aborted(tx));
        l.append(LogRecord::complete(tx)).unwrap();
        assert!(l.is_complete(tx));
    }

    #[test]
    fn overflow_returns_error_with_capacity() {
        let mut l = TransactionLog::new(ThreadId::new(2), 2);
        let tx = TxId::new(9);
        l.append(LogRecord::redo(tx, LineAddr::new(1), [0; 8]))
            .unwrap();
        l.append(LogRecord::redo(tx, LineAddr::new(2), [0; 8]))
            .unwrap();
        let err = l.append(LogRecord::commit(tx)).unwrap_err();
        assert_eq!(err, DhtmError::LogOverflow { tx, capacity: 2 });
    }

    #[test]
    fn reclaim_removes_complete_and_aborted_only() {
        let mut l = log();
        let done = TxId::new(1);
        let aborted = TxId::new(2);
        let pending = TxId::new(3);
        l.append(LogRecord::redo(done, LineAddr::new(1), [0; 8]))
            .unwrap();
        l.append(LogRecord::commit(done)).unwrap();
        l.append(LogRecord::complete(done)).unwrap();
        l.append(LogRecord::redo(aborted, LineAddr::new(2), [0; 8]))
            .unwrap();
        l.append(LogRecord::abort(aborted)).unwrap();
        l.append(LogRecord::redo(pending, LineAddr::new(3), [0; 8]))
            .unwrap();
        l.append(LogRecord::commit(pending)).unwrap();

        let reclaimed = l.reclaim();
        assert_eq!(reclaimed, 5);
        assert_eq!(l.transactions(), vec![pending]);
        // Committed-but-incomplete records must be preserved for recovery.
        assert!(l.is_committed(pending));
    }

    #[test]
    fn records_for_filters_by_transaction() {
        let mut l = log();
        let a = TxId::new(1);
        let b = TxId::new(2);
        l.append(LogRecord::redo(a, LineAddr::new(1), [1; 8]))
            .unwrap();
        l.append(LogRecord::redo(b, LineAddr::new(2), [2; 8]))
            .unwrap();
        l.append(LogRecord::redo(a, LineAddr::new(3), [3; 8]))
            .unwrap();
        assert_eq!(l.records_for(a).len(), 2);
        assert_eq!(l.records_for(b).len(), 1);
        assert_eq!(l.transactions(), vec![a, b]);
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut l = log();
        let tx = TxId::new(1);
        l.append(LogRecord::redo(tx, LineAddr::new(1), [0; 8]))
            .unwrap();
        l.append(LogRecord::commit(tx)).unwrap();
        assert_eq!(l.appended_records(), 2);
        assert_eq!(l.appended_bytes(), 72 + 16);
        l.clear();
        // Lifetime counters survive clearing.
        assert_eq!(l.appended_records(), 2);
        assert!(l.is_empty());
    }

    #[test]
    fn remaining_tracks_capacity() {
        let mut l = TransactionLog::new(ThreadId::new(0), 4);
        assert_eq!(l.remaining(), 4);
        l.append(LogRecord::commit(TxId::new(1))).unwrap();
        assert_eq!(l.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        TransactionLog::new(ThreadId::new(0), 0);
    }
}
