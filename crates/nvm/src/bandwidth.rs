//! The shared, bandwidth-limited memory channel.
//!
//! The paper's setup has a peak memory bandwidth of 5.3 GB/s; Section VI-D
//! shows that the gap between DHTM and a non-persistent HTM is largely a
//! bandwidth effect (Table VII sweeps 1×/2×/10× the baseline bandwidth). The
//! [`MemoryChannel`] models the bus as a single shared resource: every
//! transfer (log write, data write-back, line fill) occupies the channel for
//! `bytes / bytes_per_cycle` cycles, and transfers are serialised in the
//! order they are requested.

/// A bandwidth-limited, work-conserving memory channel.
///
/// The channel keeps a cursor (`next_free`) to the earliest cycle at which a
/// new transfer can start. A request made at time `now` starts at
/// `max(now, next_free)` and completes after its transfer time; the channel
/// is then busy until that completion. Fractional bytes-per-cycle rates are
/// handled by accumulating fractional occupancy.
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    bytes_per_cycle: f64,
    next_free: f64,
    total_bytes: u64,
    busy_cycles: f64,
    transfers: u64,
}

impl MemoryChannel {
    /// Creates a channel with the given sustained rate.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive and finite.
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "bytes_per_cycle must be positive, got {bytes_per_cycle}"
        );
        MemoryChannel {
            bytes_per_cycle,
            next_free: 0.0,
            total_bytes: 0,
            busy_cycles: 0.0,
            transfers: 0,
        }
    }

    /// Creates the paper's baseline channel: 5.3 GB/s at 2 GHz = 2.65 B/cycle.
    pub fn isca18_baseline() -> Self {
        MemoryChannel::new(2.65)
    }

    /// The configured transfer rate in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.bytes_per_cycle
    }

    /// Schedules a transfer of `bytes` requested at cycle `now`.
    ///
    /// Returns the cycle at which the transfer completes (i.e. the data is
    /// fully on the other side of the bus). Queueing delay caused by earlier
    /// transfers is included.
    pub fn request(&mut self, now: u64, bytes: u64) -> u64 {
        let start = self.next_free.max(now as f64);
        let duration = bytes as f64 / self.bytes_per_cycle;
        let done = start + duration;
        self.next_free = done;
        self.total_bytes += bytes;
        self.busy_cycles += duration;
        self.transfers += 1;
        done.ceil() as u64
    }

    /// Earliest cycle at which a new transfer could start.
    pub fn next_free_cycle(&self) -> u64 {
        self.next_free.ceil() as u64
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles the channel has been busy.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles.round() as u64
    }

    /// Number of individual transfers serviced.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Channel utilisation over the interval `[0, horizon]` as a fraction.
    pub fn utilisation(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy_cycles / horizon as f64).min(1.0)
        }
    }
}

impl Default for MemoryChannel {
    fn default() -> Self {
        Self::isca18_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time() {
        let mut ch = MemoryChannel::new(2.0);
        // 64 bytes at 2 B/cycle = 32 cycles, requested at time 100.
        let done = ch.request(100, 64);
        assert_eq!(done, 132);
        assert_eq!(ch.total_bytes(), 64);
        assert_eq!(ch.transfers(), 1);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = MemoryChannel::new(2.0);
        let d1 = ch.request(0, 64); // finishes at 32
        let d2 = ch.request(0, 64); // queued behind the first, finishes at 64
        assert_eq!(d1, 32);
        assert_eq!(d2, 64);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut ch = MemoryChannel::new(2.0);
        let d1 = ch.request(0, 64);
        assert_eq!(d1, 32);
        // Next request arrives long after the channel went idle.
        let d2 = ch.request(1000, 64);
        assert_eq!(d2, 1032);
        assert_eq!(ch.busy_cycles(), 64);
    }

    #[test]
    fn fractional_rate_accumulates() {
        let mut ch = MemoryChannel::new(2.65);
        // Paper baseline: a 64-byte line takes ~24.15 cycles.
        let d = ch.request(0, 64);
        assert_eq!(d, 25); // ceiling of 24.15
        let d2 = ch.request(0, 64);
        // Two lines take ~48.3 cycles total; queuing preserved fractions.
        assert_eq!(d2, 49);
    }

    #[test]
    fn higher_bandwidth_finishes_sooner() {
        let mut base = MemoryChannel::new(2.65);
        let mut fast = MemoryChannel::new(26.5);
        let slow_done = base.request(0, 6400);
        let fast_done = fast.request(0, 6400);
        assert!(fast_done * 9 < slow_done, "{fast_done} vs {slow_done}");
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut ch = MemoryChannel::new(1.0);
        ch.request(0, 100);
        assert!((ch.utilisation(200) - 0.5).abs() < 1e-9);
        assert_eq!(ch.utilisation(0), 0.0);
        assert!(ch.utilisation(50) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        MemoryChannel::new(0.0);
    }

    #[test]
    fn default_is_baseline() {
        let ch = MemoryChannel::default();
        assert!((ch.bytes_per_cycle() - 2.65).abs() < 1e-12);
    }
}
