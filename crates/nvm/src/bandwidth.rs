//! The shared, bandwidth-limited memory channel.
//!
//! The paper's setup has a peak memory bandwidth of 5.3 GB/s; Section VI-D
//! shows that the gap between DHTM and a non-persistent HTM is largely a
//! bandwidth effect (Table VII sweeps 1×/2×/10× the baseline bandwidth). The
//! [`MemoryChannel`] models the bus as a single shared resource: every
//! transfer (log write, data write-back, line fill) occupies the channel for
//! `bytes / bytes_per_cycle` cycles, and transfers are serialised in the
//! order they are requested.
//!
//! # Determinism: integer fixed-point, no floating-point state
//!
//! The configured rate is an `f64` (it comes from `bandwidth / frequency`),
//! but the channel itself keeps **no floating-point state**. The rate is
//! decomposed into the exact rational `num / den` bytes per cycle that the
//! configuration *means*: the shortest decimal that round-trips the `f64`
//! (the paper's 5.3 GB/s ÷ 2 GHz is the decimal 2.65 = 53/20, which no
//! binary `f64` can represent — the `f64` is the approximation, the decimal
//! is the intent). The busy cursor is kept in integer units of `1/num`
//! cycles; in those units a transfer of `b` bytes lasts exactly `b × den`
//! units, so scheduling is pure integer addition: billions of
//! fractional-rate transfers accumulate with zero drift, an
//! exactly-integral duration (53 bytes at 2.65 B/cycle is exactly 20
//! cycles) is exactly integral, and `next_free_cycle()` and `request()`
//! can never disagree by a phantom idle cycle the way an accumulating
//! `f64` cursor can when rounding residue pushes it just past an integer.

/// A bandwidth-limited, work-conserving memory channel.
///
/// The channel keeps a cursor to the earliest instant at which a new
/// transfer can start, in integer units of `1/num` cycles (see the module
/// docs). A request made at time `now` starts at `max(now, cursor)` and
/// completes after its exact transfer time; the channel is then busy until
/// that completion. Fractional bytes-per-cycle rates are exact by
/// construction.
#[derive(Debug, Clone)]
pub struct MemoryChannel {
    /// Rate numerator: the channel moves `num / den` bytes per cycle.
    num: u128,
    /// Rate denominator (a gcd-reduced power of ten, from the decimal
    /// decomposition).
    den: u128,
    /// Earliest start instant for a new transfer, in `1/num` cycle units
    /// (`cycles = cursor / num`, exactly).
    cursor: u128,
    /// Accumulated busy time in `1/num` cycle units.
    busy: u128,
    /// Accumulated queueing delay in `1/num` cycle units: how long
    /// requests waited behind earlier transfers before starting.
    queue_delay: u128,
    total_bytes: u64,
    transfers: u64,
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Decomposes a positive finite `f64` rate into the reduced `(num, den)`
/// rational it denotes: the shortest decimal that round-trips the `f64`
/// (Rust's `Display`), read as an exact decimal fraction. 2.65 → 53/20,
/// 0.5 → 1/2, 26.5 → 53/2. Round-trips: `num as f64 / den as f64 == rate`.
fn rational_from_f64(rate: f64) -> (u128, u128) {
    // `Display` for f64 never uses scientific notation and emits the
    // shortest digit string that parses back to the same bits.
    let s = format!("{rate}");
    let (int_part, frac_part) = s.split_once('.').unwrap_or((s.as_str(), ""));
    let mut num: u128 = int_part.parse().expect("integer part of a finite f64");
    let mut den: u128 = 1;
    for c in frac_part.chars() {
        num = num * 10 + u128::from(c.to_digit(10).expect("decimal digit"));
        den *= 10;
    }
    let g = gcd(num, den);
    (num / g, den / g)
}

impl MemoryChannel {
    /// Creates a channel with the given sustained rate.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not strictly positive and finite, or
    /// lies outside `[2^-16, 2^16]` (far beyond any physical configuration;
    /// the bound keeps the integer arithmetic comfortably inside `u128`
    /// for any realistic timestamp).
    pub fn new(bytes_per_cycle: f64) -> Self {
        assert!(
            bytes_per_cycle.is_finite() && bytes_per_cycle > 0.0,
            "bytes_per_cycle must be positive, got {bytes_per_cycle}"
        );
        assert!(
            (2f64.powi(-16)..=2f64.powi(16)).contains(&bytes_per_cycle),
            "bytes_per_cycle must lie within [2^-16, 2^16], got {bytes_per_cycle}"
        );
        let (num, den) = rational_from_f64(bytes_per_cycle);
        MemoryChannel {
            num,
            den,
            cursor: 0,
            busy: 0,
            queue_delay: 0,
            total_bytes: 0,
            transfers: 0,
        }
    }

    /// Creates the paper's baseline channel: 5.3 GB/s at 2 GHz = 2.65 B/cycle.
    pub fn isca18_baseline() -> Self {
        MemoryChannel::new(2.65)
    }

    /// The configured transfer rate in bytes per cycle. Derived on demand
    /// from the exact rational; for any rate whose shortest decimal fits
    /// in 15 significant digits (every physical configuration) both
    /// conversions are exact and the division is correctly rounded, so the
    /// getter reproduces the constructor argument.
    pub fn bytes_per_cycle(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Duration of a `bytes`-sized transfer in `1/num` cycle units.
    fn duration_units(&self, bytes: u64) -> u128 {
        (bytes as u128)
            .checked_mul(self.den)
            .expect("transfer size overflows the channel clock")
    }

    /// Converts a cycle count to cursor units.
    fn units_of_cycle(&self, cycle: u64) -> u128 {
        (cycle as u128)
            .checked_mul(self.num)
            .expect("timestamp overflows the channel clock")
    }

    /// Schedules a transfer of `bytes` requested at cycle `now`.
    ///
    /// Returns the cycle at which the transfer completes (i.e. the data is
    /// fully on the other side of the bus). Queueing delay caused by earlier
    /// transfers is included.
    pub fn request(&mut self, now: u64, bytes: u64) -> u64 {
        let arrival = self.units_of_cycle(now);
        let start = self.cursor.max(arrival);
        let duration = self.duration_units(bytes);
        let done = start + duration;
        self.cursor = done;
        self.total_bytes += bytes;
        self.busy += duration;
        self.queue_delay += start - arrival;
        self.transfers += 1;
        done.div_ceil(self.num) as u64
    }

    /// Earliest cycle at which a new transfer could start without queueing
    /// delay. Consistent with [`MemoryChannel::request`] by construction:
    /// a request issued at exactly this cycle starts the moment it is
    /// issued (both views derive from the same exact integer cursor), and
    /// after a transfer it equals the completion cycle `request` returned.
    pub fn next_free_cycle(&self) -> u64 {
        self.cursor.div_ceil(self.num) as u64
    }

    /// Total bytes transferred so far.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total cycles the channel has been busy, rounded half-up (matching
    /// the rounding of the historical floating-point accumulator).
    pub fn busy_cycles(&self) -> u64 {
        ((self.busy * 2 + self.num) / (self.num * 2)) as u64
    }

    /// Number of individual transfers serviced.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total cycles requests spent queued behind earlier transfers before
    /// starting, rounded half-up like [`MemoryChannel::busy_cycles`].
    pub fn queue_delay_cycles(&self) -> u64 {
        ((self.queue_delay * 2 + self.num) / (self.num * 2)) as u64
    }

    /// Cycles the channel sat idle over `[0, horizon]`: the busy-vs-idle
    /// split of the run (saturating when rounding puts busy past the
    /// horizon).
    pub fn idle_cycles(&self, horizon: u64) -> u64 {
        horizon.saturating_sub(self.busy_cycles())
    }

    /// Registers the channel's probes under the `channel/` scope:
    /// busy-vs-idle cycles over `[0, horizon]`, accumulated queueing
    /// delay, transferred bytes and transfer count.
    pub fn probes_into(&self, horizon: u64, reg: &mut dhtm_obs::ProbeRegistry) {
        reg.add("channel/busy_cycles", self.busy_cycles());
        reg.add("channel/idle_cycles", self.idle_cycles(horizon));
        reg.add("channel/queue_delay_cycles", self.queue_delay_cycles());
        reg.add("channel/total_bytes", self.total_bytes);
        reg.add("channel/transfers", self.transfers);
    }

    /// Channel utilisation over the interval `[0, horizon]` as a fraction.
    /// (Derived output only — the state it is computed from is integral.)
    pub fn utilisation(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy as f64 / (self.num as f64 * horizon as f64)).min(1.0)
        }
    }
}

impl Default for MemoryChannel {
    fn default() -> Self {
        Self::isca18_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_time() {
        let mut ch = MemoryChannel::new(2.0);
        // 64 bytes at 2 B/cycle = 32 cycles, requested at time 100.
        let done = ch.request(100, 64);
        assert_eq!(done, 132);
        assert_eq!(ch.total_bytes(), 64);
        assert_eq!(ch.transfers(), 1);
    }

    #[test]
    fn back_to_back_transfers_queue() {
        let mut ch = MemoryChannel::new(2.0);
        let d1 = ch.request(0, 64); // finishes at 32
        let d2 = ch.request(0, 64); // queued behind the first, finishes at 64
        assert_eq!(d1, 32);
        assert_eq!(d2, 64);
    }

    #[test]
    fn idle_gaps_are_not_charged() {
        let mut ch = MemoryChannel::new(2.0);
        let d1 = ch.request(0, 64);
        assert_eq!(d1, 32);
        // Next request arrives long after the channel went idle.
        let d2 = ch.request(1000, 64);
        assert_eq!(d2, 1032);
        assert_eq!(ch.busy_cycles(), 64);
    }

    #[test]
    fn fractional_rate_accumulates() {
        let mut ch = MemoryChannel::new(2.65);
        // Paper baseline: a 64-byte line takes ~24.15 cycles.
        let d = ch.request(0, 64);
        assert_eq!(d, 25); // ceiling of 24.15
        let d2 = ch.request(0, 64);
        // Two lines take ~48.3 cycles total; queuing preserved fractions.
        assert_eq!(d2, 49);
    }

    #[test]
    fn higher_bandwidth_finishes_sooner() {
        let mut base = MemoryChannel::new(2.65);
        let mut fast = MemoryChannel::new(26.5);
        let slow_done = base.request(0, 6400);
        let fast_done = fast.request(0, 6400);
        assert!(fast_done * 9 < slow_done, "{fast_done} vs {slow_done}");
    }

    #[test]
    fn utilisation_is_bounded() {
        let mut ch = MemoryChannel::new(1.0);
        ch.request(0, 100);
        assert!((ch.utilisation(200) - 0.5).abs() < 1e-9);
        assert_eq!(ch.utilisation(0), 0.0);
        assert!(ch.utilisation(50) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        MemoryChannel::new(0.0);
    }

    #[test]
    #[should_panic(expected = "2^16")]
    fn absurd_rate_panics() {
        MemoryChannel::new(1.0e12);
    }

    #[test]
    fn default_is_baseline() {
        let ch = MemoryChannel::default();
        assert!((ch.bytes_per_cycle() - 2.65).abs() < 1e-12);
    }

    #[test]
    fn rate_round_trips_exactly() {
        // The rational decomposition of the f64 is lossless, so the getter
        // reproduces the constructor argument bit-for-bit.
        for rate in [2.65, 0.1, 1.0, 26.5, 0.015625, 3.0, 5.3e9 / 2.0e9] {
            let ch = MemoryChannel::new(rate);
            assert_eq!(ch.bytes_per_cycle(), rate, "rate {rate} must round-trip");
        }
    }

    /// The satellite bugfix pinned: the historical model ceiled an
    /// accumulating f64 cursor in `next_free_cycle()` while `request()`
    /// scheduled against the un-rounded cursor, so rounding residue could
    /// make the two views differ by one idle cycle at integral boundaries.
    /// Both views now derive from the same exact integer cursor.
    #[test]
    fn next_free_cycle_is_consistent_with_request_at_the_boundary() {
        // Integral-duration stream: the cursor lands exactly on a cycle
        // boundary, and next_free_cycle() must equal the completion cycle
        // request() reported — no phantom extra cycle.
        let mut ch = MemoryChannel::new(0.5);
        let done = ch.request(0, 1); // exactly 2 cycles
        assert_eq!(done, 2);
        assert_eq!(ch.next_free_cycle(), done);
        // A request issued at exactly next_free_cycle() sees zero queueing
        // delay: it completes at issue time + its own exact duration.
        let done2 = ch.request(ch.next_free_cycle(), 1);
        assert_eq!(done2, 4);
        assert_eq!(ch.next_free_cycle(), 4);

        // Decimal boundary: 53 bytes at 2.65 B/cycle (= 53/20) is exactly
        // 20 cycles. Twenty such transfers land the cursor exactly on
        // cycle 400, and both views must report exactly that — the f64
        // model could end up a rounding residue above 400 here and
        // advertise a phantom busy cycle 401.
        let mut ch = MemoryChannel::new(2.65);
        let mut last_done = 0;
        for i in 1..=20u64 {
            last_done = ch.request(0, 53);
            assert_eq!(last_done, i * 20, "integral durations stay integral");
        }
        assert_eq!(ch.next_free_cycle(), last_done);
        assert_eq!(last_done, 400);
    }

    #[test]
    fn queue_delay_counts_waiting_not_service() {
        let mut ch = MemoryChannel::new(2.0);
        // First request at an idle channel: no queueing delay.
        ch.request(0, 64); // busy until cycle 32
        assert_eq!(ch.queue_delay_cycles(), 0);
        // Second request at cycle 10 waits 22 cycles behind the first.
        ch.request(10, 64);
        assert_eq!(ch.queue_delay_cycles(), 22);
        // A request after the channel went idle adds no delay.
        ch.request(1000, 64);
        assert_eq!(ch.queue_delay_cycles(), 22);
        assert_eq!(ch.busy_cycles(), 96);
        assert_eq!(ch.idle_cycles(1032), 1032 - 96);
    }

    #[test]
    fn probes_cover_the_busy_idle_split() {
        let mut ch = MemoryChannel::new(2.0);
        ch.request(0, 64);
        ch.request(0, 64);
        let mut reg = dhtm_obs::ProbeRegistry::new();
        ch.probes_into(100, &mut reg);
        assert_eq!(reg.counter("channel/busy_cycles"), 64);
        assert_eq!(reg.counter("channel/idle_cycles"), 36);
        assert_eq!(reg.counter("channel/queue_delay_cycles"), 32);
        assert_eq!(reg.counter("channel/total_bytes"), 128);
        assert_eq!(reg.counter("channel/transfers"), 2);
    }

    #[test]
    fn rates_decompose_to_their_decimal_rational() {
        assert_eq!(rational_from_f64(2.65), (53, 20));
        assert_eq!(rational_from_f64(5.3), (53, 10));
        assert_eq!(rational_from_f64(26.5), (53, 2));
        assert_eq!(rational_from_f64(0.5), (1, 2));
        assert_eq!(rational_from_f64(2.0), (2, 1));
        assert_eq!(rational_from_f64(0.1), (1, 10));
    }

    #[test]
    fn fractional_cursor_rounds_the_same_way_in_both_views() {
        let mut ch = MemoryChannel::new(2.65);
        let done = ch.request(0, 64); // cursor at ~24.15 cycles
        assert_eq!(done, 25);
        assert_eq!(ch.next_free_cycle(), 25);
        // A request at the advertised next_free_cycle starts exactly there.
        let done2 = ch.request(25, 64);
        assert_eq!(done2, 50); // 25 + 24.15 → ceil 50
    }

    #[test]
    fn millions_of_fractional_transfers_do_not_drift() {
        // Back-to-back 64-byte transfers at the paper rate: after k
        // transfers the exact cursor is k × 64 × den units. Any drift at
        // all would eventually flip a ceil; the fixed-point cursor matches
        // the closed form exactly at every checkpoint.
        let mut ch = MemoryChannel::new(2.65);
        let (num, den) = rational_from_f64(2.65);
        let mut k: u128 = 0;
        for checkpoint in 0..64 {
            for _ in 0..10_000 {
                ch.request(0, 64);
            }
            k += 10_000;
            let exact_units = k * 64 * den;
            assert_eq!(
                u128::from(ch.next_free_cycle()),
                exact_units.div_ceil(num),
                "drift after {k} transfers (checkpoint {checkpoint})"
            );
        }
    }
}
