//! The per-thread write-set overflow list.
//!
//! When a dirty cache line belonging to the write set of a DHTM transaction
//! is evicted from the L1 to the LLC, the address of that line is appended to
//! an overflow list kept in persistent memory alongside the redo log
//! (Section III-C). At commit the list identifies the overflowed lines that
//! must be written back in place; at abort it identifies the LLC lines that
//! must be invalidated. Like the log, the list has start/next/size registers
//! (Table II) and a bounded capacity.

use dhtm_types::addr::LineAddr;
use dhtm_types::error::{DhtmError, Result};
use dhtm_types::ids::{ThreadId, TxId};

/// The per-thread overflow list.
#[derive(Debug, Clone)]
pub struct OverflowList {
    owner: ThreadId,
    capacity: usize,
    entries: Vec<(TxId, LineAddr)>,
    appended: u64,
    peak_len: usize,
}

impl OverflowList {
    /// Creates an empty overflow list with room for `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(owner: ThreadId, capacity: usize) -> Self {
        assert!(capacity > 0, "overflow list capacity must be positive");
        OverflowList {
            owner,
            capacity,
            entries: Vec::new(),
            appended: 0,
            peak_len: 0,
        }
    }

    /// The owning thread.
    pub fn owner(&self) -> ThreadId {
        self.owner
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends the address of an overflowed dirty line.
    ///
    /// Appending the same line twice for the same transaction is idempotent —
    /// the hardware only needs one write-back/invalidate per line, and the
    /// L1 can only overflow a given line again after re-fetching it.
    ///
    /// # Errors
    ///
    /// Returns [`DhtmError::OverflowListFull`] when the list is full, which
    /// the engine treats like a log overflow (abort + retry with a larger
    /// allocation).
    pub fn append(&mut self, tx: TxId, line: LineAddr) -> Result<()> {
        if self.entries.iter().any(|&(t, l)| t == tx && l == line) {
            return Ok(());
        }
        if self.entries.len() >= self.capacity {
            return Err(DhtmError::OverflowListFull {
                tx,
                capacity: self.capacity,
            });
        }
        self.appended += 1;
        self.entries.push((tx, line));
        self.peak_len = self.peak_len.max(self.entries.len());
        Ok(())
    }

    /// Returns the overflowed lines recorded for transaction `tx`, in the
    /// order they overflowed.
    pub fn lines_for(&self, tx: TxId) -> Vec<LineAddr> {
        self.lines_for_iter(tx).collect()
    }

    /// Iterates the overflowed lines recorded for transaction `tx` in the
    /// order they overflowed, without allocating.
    pub fn lines_for_iter(&self, tx: TxId) -> impl Iterator<Item = LineAddr> + '_ {
        self.entries
            .iter()
            .filter(move |&&(t, _)| t == tx)
            .map(|&(_, l)| l)
    }

    /// Whether `line` is recorded as overflowed for transaction `tx`.
    pub fn contains(&self, tx: TxId, line: LineAddr) -> bool {
        self.entries.iter().any(|&(t, l)| t == tx && l == line)
    }

    /// Whether `line` is recorded as overflowed for *any* transaction — i.e.
    /// the LLC copy of the line holds speculative (uncommitted) data. Used
    /// by the memory system to keep speculative lines from being written in
    /// place when the LLC evicts them.
    pub fn contains_line(&self, line: LineAddr) -> bool {
        self.entries.iter().any(|&(_, l)| l == line)
    }

    /// Clears the entries belonging to transaction `tx` (done at the end of
    /// commit-complete or abort-complete).
    pub fn clear_tx(&mut self, tx: TxId) {
        self.entries.retain(|&(t, _)| t != tx);
    }

    /// Clears the whole list.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Lifetime count of appended entries (for bandwidth statistics).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Highest simultaneous entry count observed — how far the list actually
    /// grew towards its capacity over the run.
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> OverflowList {
        OverflowList::new(ThreadId::new(0), 4)
    }

    #[test]
    fn append_and_query() {
        let mut l = list();
        let tx = TxId::new(1);
        l.append(tx, LineAddr::new(10)).unwrap();
        l.append(tx, LineAddr::new(11)).unwrap();
        assert_eq!(l.lines_for(tx), vec![LineAddr::new(10), LineAddr::new(11)]);
        assert!(l.contains(tx, LineAddr::new(10)));
        assert!(!l.contains(tx, LineAddr::new(12)));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn duplicate_append_is_idempotent() {
        let mut l = list();
        let tx = TxId::new(1);
        l.append(tx, LineAddr::new(10)).unwrap();
        l.append(tx, LineAddr::new(10)).unwrap();
        assert_eq!(l.len(), 1);
        assert_eq!(l.appended(), 1);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut l = OverflowList::new(ThreadId::new(1), 2);
        let tx = TxId::new(5);
        l.append(tx, LineAddr::new(1)).unwrap();
        l.append(tx, LineAddr::new(2)).unwrap();
        let err = l.append(tx, LineAddr::new(3)).unwrap_err();
        assert_eq!(err, DhtmError::OverflowListFull { tx, capacity: 2 });
    }

    #[test]
    fn clear_tx_only_touches_that_transaction() {
        let mut l = list();
        let a = TxId::new(1);
        let b = TxId::new(2);
        l.append(a, LineAddr::new(1)).unwrap();
        l.append(b, LineAddr::new(2)).unwrap();
        l.clear_tx(a);
        assert!(l.lines_for(a).is_empty());
        assert_eq!(l.lines_for(b), vec![LineAddr::new(2)]);
    }

    #[test]
    fn peak_len_survives_clearing() {
        let mut l = list();
        let tx = TxId::new(1);
        l.append(tx, LineAddr::new(1)).unwrap();
        l.append(tx, LineAddr::new(2)).unwrap();
        l.append(tx, LineAddr::new(3)).unwrap();
        l.clear_tx(tx);
        assert!(l.is_empty());
        assert_eq!(l.peak_len(), 3);
    }

    #[test]
    fn entries_for_different_transactions_are_separate() {
        let mut l = list();
        let a = TxId::new(1);
        let b = TxId::new(2);
        l.append(a, LineAddr::new(7)).unwrap();
        // Same line for a different transaction is a distinct entry.
        l.append(b, LineAddr::new(7)).unwrap();
        assert_eq!(l.len(), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        OverflowList::new(ThreadId::new(0), 0);
    }
}
