//! Transaction-log record types.
//!
//! The DHTM hardware writes records to the per-thread transaction log in
//! persistent memory (Section III-A/III-B). Five kinds of record exist:
//!
//! * **Redo** — `(address, new value)` for a cache line modified by the
//!   transaction; written when the line is evicted from the log buffer or at
//!   transaction end.
//! * **Undo** — `(address, old value)`; used by the ATOM and LogTM-ATOM
//!   baselines, which log before-images instead of after-images.
//! * **Commit** — marks the transaction as committed; once this record is
//!   durable the transaction's updates survive a crash.
//! * **Complete** — marks that all in-place data has been written back; not a
//!   correctness requirement, but it lets the recovery manager skip replay
//!   (Section III-B, Recovery).
//! * **Abort** — logically discards the transaction's log entries.
//! * **Sentinel** — records that this transaction depends on another
//!   committed-but-incomplete transaction's updates, so the recovery manager
//!   replays them in the correct order.

use dhtm_types::addr::{LineAddr, LineData, LINE_SIZE};
use dhtm_types::ids::TxId;

/// The payload-bearing kind of a log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// Redo record: after-image of a modified cache line.
    Redo {
        /// The modified line.
        line: LineAddr,
        /// The new (after) value of the whole line.
        data: LineData,
    },
    /// Undo record: before-image of a modified cache line.
    Undo {
        /// The modified line.
        line: LineAddr,
        /// The old (before) value of the whole line.
        data: LineData,
    },
    /// Word-granular redo record (used by the naive design of Figure 2b and
    /// by software logging, which logs at the granularity of the store).
    RedoWord {
        /// The modified line.
        line: LineAddr,
        /// Index of the modified word within the line.
        word: usize,
        /// The new value of the word.
        value: u64,
    },
    /// Transaction commit marker.
    Commit,
    /// Transaction completion marker (all in-place updates written back).
    Complete,
    /// Transaction abort marker (log entries logically discarded).
    Abort,
    /// Dependency sentinel: this transaction observed data written by
    /// `depends_on`, which had committed but not yet completed.
    Sentinel {
        /// The transaction whose updates must be replayed first.
        depends_on: TxId,
    },
}

/// One record in a per-thread transaction log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// The transaction this record belongs to.
    pub tx: TxId,
    /// The record payload.
    pub kind: RecordKind,
}

/// Size in bytes of the address metadata stored with each data record.
pub const RECORD_ADDR_BYTES: u64 = 8;
/// Size in bytes of a marker record (commit/complete/abort/sentinel).
pub const MARKER_RECORD_BYTES: u64 = 16;

impl LogRecord {
    /// Creates a cache-line-granular redo record.
    pub fn redo(tx: TxId, line: LineAddr, data: LineData) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Redo { line, data },
        }
    }

    /// Creates a cache-line-granular undo record.
    pub fn undo(tx: TxId, line: LineAddr, data: LineData) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Undo { line, data },
        }
    }

    /// Creates a word-granular redo record.
    ///
    /// # Panics
    ///
    /// Panics if `word >= 8`.
    pub fn redo_word(tx: TxId, line: LineAddr, word: usize, value: u64) -> Self {
        assert!(word < 8, "word index out of range");
        LogRecord {
            tx,
            kind: RecordKind::RedoWord { line, word, value },
        }
    }

    /// Creates a commit marker.
    pub fn commit(tx: TxId) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Commit,
        }
    }

    /// Creates a completion marker.
    pub fn complete(tx: TxId) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Complete,
        }
    }

    /// Creates an abort marker.
    pub fn abort(tx: TxId) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Abort,
        }
    }

    /// Creates a dependency sentinel.
    pub fn sentinel(tx: TxId, depends_on: TxId) -> Self {
        LogRecord {
            tx,
            kind: RecordKind::Sentinel { depends_on },
        }
    }

    /// Number of bytes this record occupies on the memory bus.
    ///
    /// Cache-line-granular records carry the 64-byte payload plus 8 bytes of
    /// address metadata; word-granular records carry 8 bytes of data plus
    /// 8 bytes of metadata (this is why word-granular logging consumes more
    /// bandwidth per useful byte, Section III-A); markers are 16 bytes.
    pub fn size_bytes(&self) -> u64 {
        match self.kind {
            RecordKind::Redo { .. } | RecordKind::Undo { .. } => {
                LINE_SIZE as u64 + RECORD_ADDR_BYTES
            }
            RecordKind::RedoWord { .. } => 8 + RECORD_ADDR_BYTES,
            RecordKind::Commit
            | RecordKind::Complete
            | RecordKind::Abort
            | RecordKind::Sentinel { .. } => MARKER_RECORD_BYTES,
        }
    }

    /// Whether this record carries data (a redo/undo image) as opposed to
    /// being a marker.
    pub fn is_data(&self) -> bool {
        matches!(
            self.kind,
            RecordKind::Redo { .. } | RecordKind::Undo { .. } | RecordKind::RedoWord { .. }
        )
    }

    /// The line this record refers to, if it is a data record.
    pub fn line(&self) -> Option<LineAddr> {
        match self.kind {
            RecordKind::Redo { line, .. }
            | RecordKind::Undo { line, .. }
            | RecordKind::RedoWord { line, .. } => Some(line),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_sizes_reflect_granularity() {
        let tx = TxId::new(1);
        let line = LineAddr::new(4);
        assert_eq!(LogRecord::redo(tx, line, [0; 8]).size_bytes(), 72);
        assert_eq!(LogRecord::undo(tx, line, [0; 8]).size_bytes(), 72);
        assert_eq!(LogRecord::redo_word(tx, line, 3, 9).size_bytes(), 16);
        assert_eq!(LogRecord::commit(tx).size_bytes(), 16);
        assert_eq!(LogRecord::sentinel(tx, TxId::new(2)).size_bytes(), 16);
    }

    #[test]
    fn word_granular_logging_costs_more_per_line_than_line_granular() {
        // Figure 2: five word stores over two lines produce five word records
        // (5 × 16 = 80 bytes) versus two line records (2 × 72 = 144 bytes)...
        // but for a line whose words are all written, word-granular logging
        // costs 8 × 16 = 128 bytes versus 72 bytes for one line record.
        let tx = TxId::new(1);
        let line = LineAddr::new(0);
        let word_cost: u64 = (0..8)
            .map(|w| LogRecord::redo_word(tx, line, w, 1).size_bytes())
            .sum();
        let line_cost = LogRecord::redo(tx, line, [1; 8]).size_bytes();
        assert!(word_cost > line_cost);
    }

    #[test]
    fn data_classification() {
        let tx = TxId::new(3);
        let line = LineAddr::new(9);
        assert!(LogRecord::redo(tx, line, [0; 8]).is_data());
        assert!(LogRecord::undo(tx, line, [0; 8]).is_data());
        assert!(LogRecord::redo_word(tx, line, 0, 0).is_data());
        assert!(!LogRecord::commit(tx).is_data());
        assert!(!LogRecord::complete(tx).is_data());
        assert!(!LogRecord::abort(tx).is_data());
        assert!(!LogRecord::sentinel(tx, TxId::new(1)).is_data());
    }

    #[test]
    fn line_accessor() {
        let tx = TxId::new(3);
        let line = LineAddr::new(9);
        assert_eq!(LogRecord::redo(tx, line, [0; 8]).line(), Some(line));
        assert_eq!(LogRecord::commit(tx).line(), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_word_index_panics() {
        LogRecord::redo_word(TxId::new(1), LineAddr::new(0), 8, 0);
    }
}
