//! Cycle-exact equivalence of the integer fixed-point [`MemoryChannel`]
//! with the historical accumulating-`f64` model, plus the drift regression
//! the rewrite exists to close.
//!
//! The fixed-point channel interprets the configured rate as the exact
//! decimal rational it denotes (2.65 B/cycle = 53/20). On any request
//! stream the two models can only disagree where the exact cursor lands
//! *exactly on* (or within one f64 rounding residue of) an integer cycle
//! boundary — precisely the places where the old model's answer depended
//! on accumulated floating-point noise rather than on the modelled
//! hardware. The equivalence test asserts agreement everywhere else and a
//! worst-case difference of one cycle at the boundaries; the golden-stats
//! suite (`tests/golden_stats.rs`) is the proof that on the actual golden
//! runs the agreement is cycle-exact end to end.

use dhtm_nvm::bandwidth::MemoryChannel;

/// The pre-PR5 channel, verbatim: an accumulating `f64` cursor.
struct F64Reference {
    bytes_per_cycle: f64,
    next_free: f64,
}

impl F64Reference {
    fn new(bytes_per_cycle: f64) -> Self {
        F64Reference {
            bytes_per_cycle,
            next_free: 0.0,
        }
    }

    fn request(&mut self, now: u64, bytes: u64) -> u64 {
        let start = self.next_free.max(now as f64);
        let duration = bytes as f64 / self.bytes_per_cycle;
        let done = start + duration;
        self.next_free = done;
        done.ceil() as u64
    }
}

/// splitmix64: the deterministic stream generator used across the repo.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Exact-rational shadow of the channel: cursor in 1/num cycle units.
struct ExactShadow {
    num: u128,
    den: u128,
    cursor: u128,
}

impl ExactShadow {
    /// `num/den` must be the reduced decimal rational of the rate.
    fn new(num: u128, den: u128) -> Self {
        ExactShadow {
            num,
            den,
            cursor: 0,
        }
    }

    /// Advances the shadow and reports whether the completed transfer ends
    /// exactly on an integer cycle boundary — the only places where the
    /// old model's answer was decided by its accumulated f64 rounding
    /// residue (the true value is the integer itself; the residue decides
    /// which side of it the f64 lands on).
    fn request(&mut self, now: u64, bytes: u64) -> bool {
        let start = self.cursor.max(now as u128 * self.num);
        self.cursor = start + bytes as u128 * self.den;
        self.cursor.is_multiple_of(self.num)
    }
}

/// Replays a pseudo-random but realistic request stream (line fills, log
/// records, jumbo drains; bursts and idle gaps) against both models.
///
/// * Rates whose reduced rational is dyadic in both numerator and
///   denominator make every transfer duration exactly representable, so
///   the old model was already exact: every completion cycle must match
///   outright.
/// * For genuinely fractional rates the two models must match everywhere
///   except where the exact cursor lands *exactly on* an integer boundary
///   (e.g. 26.5 B/cycle is representable, but `b/26.5 = 2b/53` is not) —
///   there the old model's ceil was a coin flip on its rounding residue,
///   and the difference is at most the one cycle that residue is worth.
#[test]
fn fixed_point_matches_f64_model_cycle_for_cycle() {
    // (rate, decimal rational) — Table III baseline, the Table VII sweep,
    // and assorted fractions.
    let rates: [(f64, u128, u128); 8] = [
        (2.65, 53, 20),
        (5.3, 53, 10),
        (26.5, 53, 2),
        (13.25, 53, 4),
        (1.0, 1, 1),
        (2.0, 2, 1),
        (0.5, 1, 2),
        (7.77, 777, 100),
    ];
    for (rate, num, den) in rates {
        let binary_exact = num.is_power_of_two() && den.is_power_of_two();
        let mut fixed = MemoryChannel::new(rate);
        let mut reference = F64Reference::new(rate);
        let mut shadow = ExactShadow::new(num, den);
        let mut rng = 0x15CA_2018u64 ^ rate.to_bits();
        let mut now = 0u64;
        let mut boundary_ops = 0u64;
        for i in 0..200_000u64 {
            let r = splitmix64(&mut rng);
            // Mostly cache lines and log records, occasionally bigger.
            let bytes = match r % 10 {
                0..=5 => 64,
                6..=7 => 24 + (r >> 8) % 48,
                8 => 8,
                _ => 512 + (r >> 8) % 4096,
            };
            // Bursts (same cycle), short gaps, and occasional long idles
            // that let the channel drain back to an integral cursor.
            now += match (r >> 32) % 8 {
                0..=3 => 0,
                4..=5 => (r >> 40) % 16,
                6 => (r >> 40) % 512,
                _ => 10_000 + (r >> 40) % 10_000,
            };
            let a = fixed.request(now, bytes);
            let b = reference.request(now, bytes);
            let on_boundary = shadow.request(now, bytes);
            if on_boundary && !binary_exact {
                boundary_ops += 1;
                assert!(
                    a.abs_diff(b) <= 1,
                    "rate {rate}, op {i}: boundary difference exceeds the \
                     one-cycle f64 residue ({a} vs {b})"
                );
            } else {
                assert_eq!(
                    a, b,
                    "rate {rate}, op {i}: fixed-point {a} != f64 reference {b} \
                     away from any integer boundary (now {now}, bytes {bytes})"
                );
            }
        }
        if !binary_exact {
            // The stream must actually have exercised the boundary regime
            // (otherwise the interesting half of the claim went untested),
            // and must not have classified everything as a boundary.
            assert!(
                (1..200_000 / 10).contains(&boundary_ops),
                "rate {rate}: boundary classification degenerated ({boundary_ops} ops)"
            );
        }
    }
}

/// Drift regression: billions of bytes of fractional-rate traffic, cursor
/// still exact. The closed form for a total of `B` back-to-back bytes at
/// rate 53/20 is `ceil(B·20 / 53)`; the channel must hit it exactly at
/// every checkpoint, including after jumbo transfers that push the
/// lifetime byte count past 10^10.
#[test]
fn cursor_is_exact_after_billions_of_bytes() {
    let (num, den): (u128, u128) = (53, 20); // 2.65 B/cycle, exactly

    let mut ch = MemoryChannel::new(2.65);
    let mut total_bytes: u128 = 0;
    // Phase 1: half a million small fractional transfers.
    for _ in 0..500_000 {
        ch.request(0, 64);
    }
    total_bytes += 500_000 * 64;
    assert_eq!(
        u128::from(ch.next_free_cycle()),
        (total_bytes * den).div_ceil(num)
    );
    // Phase 2: jumbo drains — 10 transfers of 1 GB each (the equivalent of
    // hundreds of millions of line transfers) plus a tail of odd sizes.
    for _ in 0..10 {
        ch.request(0, 1_000_000_000);
        total_bytes += 1_000_000_000;
    }
    for odd in 1..=1_000u64 {
        ch.request(0, odd);
        total_bytes += u128::from(odd);
    }
    assert!(total_bytes > 10_000_000_000, "stream reached 10^10 bytes");
    assert_eq!(
        u128::from(ch.next_free_cycle()),
        (total_bytes * den).div_ceil(num),
        "cursor drifted after {total_bytes} bytes"
    );
    assert_eq!(u128::from(ch.total_bytes()), total_bytes);
}

/// An idle gap must snap the cursor to exactly the request cycle, wiping
/// any fractional residue of the previous busy period.
#[test]
fn idle_rebase_is_exact() {
    let mut ch = MemoryChannel::new(2.65);
    ch.request(0, 7); // fractional residue on the cursor
    let done = ch.request(1_000_000, 53);
    // 53 bytes at 53/20 B/cycle is exactly 20 cycles.
    assert_eq!(done, 1_000_020);
    assert_eq!(ch.next_free_cycle(), 1_000_020);
}
