//! The HTM conflict arbiter plugged into the coherence protocol.
//!
//! Conflict detection is eager and piggybacks on coherence (Section II-A):
//! when the directory forwards or invalidates a line held by another core,
//! the holder's transactional state decides whether this is a conflict and
//! the resolution policy decides who aborts. The same arbiter serves every
//! HTM-based design; flags select the design-specific behaviours
//! (sticky-state overflow detection for DHTM, NACKing for LogTM,
//! dependency recording for committed-but-incomplete transactions).

use dhtm_coherence::probe::{ConflictArbiter, ProbeDecision, ProbeInfo};
use dhtm_types::ids::{CoreId, TxId};
use dhtm_types::policy::ConflictPolicy;
use dhtm_types::stats::AbortReason;

use crate::tx_state::{HtmCoreState, TxStatus};

/// Static configuration of the arbiter's behaviour for one design.
#[derive(Debug, Clone, Copy)]
pub struct ArbiterConfig {
    /// The conflict resolution policy.
    pub policy: ConflictPolicy,
    /// NACK the requester instead of aborting either side when the holder is
    /// actively using the line (LogTM-style stalling).
    pub nack_instead_of_abort: bool,
    /// Record a dependency when a probe touches the write set of a
    /// committed-but-incomplete transaction (DHTM writes sentinel log
    /// records from these).
    pub record_dependencies: bool,
}

impl ArbiterConfig {
    /// Configuration for an RTM-like design with the paper's default
    /// first-writer-wins policy.
    pub fn rtm_like(policy: ConflictPolicy) -> Self {
        ArbiterConfig {
            policy,
            nack_instead_of_abort: false,
            record_dependencies: false,
        }
    }

    /// Configuration for the DHTM engine.
    pub fn dhtm(policy: ConflictPolicy) -> Self {
        ArbiterConfig {
            policy,
            nack_instead_of_abort: false,
            record_dependencies: true,
        }
    }

    /// Configuration for a LogTM-style engine.
    pub fn logtm(policy: ConflictPolicy) -> Self {
        ArbiterConfig {
            policy,
            nack_instead_of_abort: true,
            record_dependencies: false,
        }
    }
}

/// A view over the per-core HTM states used while one access is in flight.
///
/// The arbiter only mutates the `doomed` markers of holders that lose a
/// conflict and appends to the dependency list; the engine applies the
/// consequences (aborting doomed transactions, writing sentinels) after the
/// access returns.
#[derive(Debug)]
pub struct HtmArbiter<'a> {
    states: &'a mut [HtmCoreState],
    config: ArbiterConfig,
    /// Whether the requesting core is itself inside a transaction. A
    /// non-transactional requester never aborts; strong isolation dictates
    /// that the transactional holder aborts instead.
    requester_active: bool,
    /// Dependencies discovered during the access: (requesting core, id of the
    /// committed-but-incomplete transaction whose data it consumed).
    dependencies: Vec<(CoreId, TxId)>,
    /// Conflicts in which a holder was doomed.
    holders_doomed: usize,
}

impl<'a> HtmArbiter<'a> {
    /// Creates an arbiter over the design's per-core states.
    pub fn new(
        states: &'a mut [HtmCoreState],
        config: ArbiterConfig,
        requester_active: bool,
    ) -> Self {
        HtmArbiter {
            states,
            config,
            requester_active,
            dependencies: Vec::new(),
            holders_doomed: 0,
        }
    }

    /// Dependencies on committed-but-incomplete transactions discovered
    /// during the access (drained by the engine to emit sentinels).
    pub fn into_dependencies(self) -> Vec<(CoreId, TxId)> {
        self.dependencies
    }

    /// Number of holders doomed during the access.
    pub fn holders_doomed(&self) -> usize {
        self.holders_doomed
    }
}

impl ConflictArbiter for HtmArbiter<'_> {
    fn decide(&mut self, probe: &ProbeInfo) -> ProbeDecision {
        let holder = &mut self.states[probe.holder.get()];

        match holder.status {
            TxStatus::Idle => return ProbeDecision::Proceed,
            TxStatus::Committed => {
                // Section III-B: a line still marked speculative may belong to
                // a committed-but-incomplete transaction; this is not a
                // conflict, but the requester's transaction becomes dependent
                // on the holder's committed updates.
                if self.config.record_dependencies
                    && self.requester_active
                    && holder.in_write_set(probe.line)
                {
                    self.dependencies.push((probe.requester, holder.tx));
                }
                return ProbeDecision::Proceed;
            }
            TxStatus::Active => {}
        }

        // The holder is in an active transaction. Classify the conflict.
        let in_write_set =
            holder.in_write_set(probe.line) || (probe.holder_has_line && probe.holder_write_bit);
        let in_read_set = probe.holder_read_bit || holder.in_read_set(probe.line);

        let write_conflict = in_write_set;
        let read_conflict = probe.kind.is_write_request() && in_read_set;

        if !write_conflict && !read_conflict {
            return ProbeDecision::Proceed;
        }

        // Strong isolation: a non-transactional requester always wins and the
        // transactional holder aborts (Section III-B, "Non-transactional
        // accesses ... aborting an ongoing transaction if it conflicts").
        if !self.requester_active {
            holder.doomed = Some(AbortReason::Conflict);
            self.holders_doomed += 1;
            return ProbeDecision::AbortHolder;
        }

        if self.config.nack_instead_of_abort {
            return ProbeDecision::Nack;
        }

        if write_conflict {
            if self.config.policy.requester_aborts_on_write_conflict() {
                ProbeDecision::AbortRequester
            } else {
                holder.doomed = Some(AbortReason::Conflict);
                self.holders_doomed += 1;
                ProbeDecision::AbortHolder
            }
        } else {
            // Read-write conflict: the writer (requester) wins under both
            // policies; the reading holder aborts.
            if self.config.policy.requester_aborts_on_read_conflict() {
                ProbeDecision::AbortRequester
            } else {
                holder.doomed = Some(AbortReason::Conflict);
                self.holders_doomed += 1;
                ProbeDecision::AbortHolder
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhtm_coherence::probe::ProbeKind;
    use dhtm_types::addr::LineAddr;

    fn probe(holder: usize, kind: ProbeKind, has_line: bool, wbit: bool, rbit: bool) -> ProbeInfo {
        ProbeInfo {
            requester: CoreId::new(0),
            holder: CoreId::new(holder),
            line: LineAddr::new(42),
            kind,
            holder_has_line: has_line,
            holder_write_bit: wbit,
            holder_read_bit: rbit,
            holder_dirty: wbit,
        }
    }

    fn states(n: usize) -> Vec<HtmCoreState> {
        (0..n).map(|_| HtmCoreState::new(256)).collect()
    }

    #[test]
    fn idle_holder_never_conflicts() {
        let mut s = states(2);
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::Proceed);
    }

    #[test]
    fn first_writer_wins_aborts_requester_on_write_conflict() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_store(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::AbortRequester);
        assert!(s[1].doomed.is_none());
    }

    #[test]
    fn requester_wins_dooms_holder_on_write_conflict() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_store(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::RequesterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::AbortHolder);
        assert_eq!(arb.holders_doomed(), 1);
        assert_eq!(s[1].doomed, Some(AbortReason::Conflict));
    }

    #[test]
    fn read_write_conflict_writer_wins_under_both_policies() {
        for policy in [
            ConflictPolicy::FirstWriterWins,
            ConflictPolicy::RequesterWins,
        ] {
            let mut s = states(2);
            s[1].begin(TxId::new(5), 0);
            s[1].record_load(LineAddr::new(42));
            let mut arb = HtmArbiter::new(&mut s, ArbiterConfig::rtm_like(policy), true);
            let d = arb.decide(&probe(1, ProbeKind::Invalidate, true, false, true));
            assert_eq!(d, ProbeDecision::AbortHolder, "policy {policy}");
        }
    }

    #[test]
    fn read_read_sharing_is_not_a_conflict() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_load(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetS, true, false, true));
        assert_eq!(d, ProbeDecision::Proceed);
    }

    #[test]
    fn sticky_absent_line_in_write_set_is_detected() {
        // DHTM overflow: the holder's L1 no longer has the line but the
        // shadow write set (== overflow list) does.
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_store(LineAddr::new(42));
        s[1].overflowed.insert(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::dhtm(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetS, false, false, false));
        assert_eq!(d, ProbeDecision::AbortRequester);
    }

    #[test]
    fn signature_hit_on_absent_line_counts_as_read_set() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].signature.insert(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::Invalidate, false, false, false));
        assert_eq!(d, ProbeDecision::AbortHolder);
    }

    #[test]
    fn non_transactional_requester_always_wins() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_store(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            false,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::AbortHolder);
    }

    #[test]
    fn logtm_nacks_instead_of_aborting() {
        let mut s = states(2);
        s[1].begin(TxId::new(5), 0);
        s[1].record_store(LineAddr::new(42));
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::logtm(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::Nack);
        assert!(s[1].doomed.is_none());
    }

    #[test]
    fn committed_holder_yields_dependency_not_conflict() {
        let mut s = states(2);
        s[1].begin(TxId::new(9), 0);
        s[1].record_store(LineAddr::new(42));
        s[1].status = TxStatus::Committed;
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::dhtm(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::Proceed);
        let deps = arb.into_dependencies();
        assert_eq!(deps, vec![(CoreId::new(0), TxId::new(9))]);
    }

    #[test]
    fn committed_holder_without_dependency_recording_just_proceeds() {
        let mut s = states(2);
        s[1].begin(TxId::new(9), 0);
        s[1].record_store(LineAddr::new(42));
        s[1].status = TxStatus::Committed;
        let mut arb = HtmArbiter::new(
            &mut s,
            ArbiterConfig::rtm_like(ConflictPolicy::FirstWriterWins),
            true,
        );
        let d = arb.decide(&probe(1, ProbeKind::FwdGetM, true, true, false));
        assert_eq!(d, ProbeDecision::Proceed);
        assert!(arb.into_dependencies().is_empty());
    }
}
