#![forbid(unsafe_code)]
//! # dhtm-htm
//!
//! Hardware-transactional-memory machinery shared by every HTM-based design
//! in the workspace (sdTM, LogTM-ATOM, DHTM and the volatile NP baseline):
//!
//! * [`tx_state::TxStatus`] and [`tx_state::HtmCoreState`] — the per-core
//!   transaction status register, read-set overflow signature and shadow
//!   read/write-set bookkeeping.
//! * [`arbiter::HtmArbiter`] — the conflict-resolution logic that every HTM
//!   engine plugs into the coherence protocol's probe callback: it applies
//!   the requester-wins or first-writer-wins policy, treats probes that find
//!   the line absent from the holder's L1 as hits on overflowed state
//!   (DHTM's sticky-state detection), honours strong isolation against
//!   non-transactional accesses, optionally NACKs instead of aborting
//!   (LogTM-style), and records dependencies on committed-but-incomplete
//!   transactions so the DHTM engine can write sentinel log records.
//! * [`rtm::RtmEngine`] — a complete volatile RTM-like best-effort HTM (the
//!   paper's NP design): L1-buffered speculative state, read/write bits,
//!   read-set overflow into the signature, abort on write-set eviction, and
//!   a single-global-lock software fallback after repeated aborts.
//!
//! ## Example
//!
//! ```
//! use dhtm_htm::rtm::RtmEngine;
//! use dhtm_sim::prelude::*;
//!
//! let cfg = SystemConfig::small_test();
//! let mut machine = Machine::new(cfg.clone());
//! let mut engine = RtmEngine::new(&cfg);
//! engine.init(&mut machine);
//! let c0 = CoreId::new(0);
//! assert!(engine.begin(&mut machine, c0, &[], 0).is_done());
//! assert!(engine.write(&mut machine, c0, Address::new(0x400), 7, 10).is_done());
//! assert!(engine.commit(&mut machine, c0, 50).is_done());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod rtm;
pub mod tx_state;

pub use arbiter::{ArbiterConfig, HtmArbiter};
pub use rtm::RtmEngine;
pub use tx_state::{HtmCoreState, TxStatus};
